//! Quickstart: compile a small Nova program all the way to allocated
//! IXP1200 machine code, look at every intermediate artifact, and execute
//! the result on the cycle simulator.
//!
//! Run with `cargo run --release --example quickstart`.

use nova::{simulate, CompileConfig, Compiler, SimMemory};

const PROGRAM: &str = r#"
// Swap two pairs of SRAM words and store their sums.
fun main() {
    let (a, b, c, d) = sram(100);
    sram(200) <- (b, a, d, c);
    sram(300) <- (a + b, c + d);
    0
}
"#;

fn main() {
    // 1. Compile: parse -> typecheck -> CPS -> optimize -> SSU -> select ->
    //    ILP bank assignment + transfer coloring -> A/B coloring. One
    //    builder configures the solver and the simulation shape together.
    let cfg = CompileConfig::builder().contexts(1).build();
    let compiler = Compiler::new(cfg.clone());
    let out = compiler.compile_output(PROGRAM).expect("compiles");

    println!("=== optimized CPS ===");
    println!("{}", nova_cps::ir::pretty(&out.cps));

    println!("=== allocated machine code ===");
    println!("{}", out.prog);

    println!("=== allocator statistics (the paper's Figure-7 row) ===");
    let st = &out.alloc_stats;
    println!(
        "model: {} variables, {} constraints, {} objective terms",
        st.model.variables, st.model.constraints, st.model.objective_terms
    );
    println!(
        "solve: root {:?}, total {:?}, {} nodes",
        st.solve.root_time, st.solve.total_time, st.solve.nodes
    );
    println!(
        "solution: {} inter-bank moves, {} spills",
        st.moves, st.spills
    );

    // 2. Execute on the simulated micro-engine, with the simulation shape
    //    the builder configured.
    let mut mem = SimMemory::with_sizes(512, 64, 64);
    mem.sram[100..104].copy_from_slice(&[10, 20, 30, 40]);
    let res = simulate(&out.prog, &mut mem, &cfg.sim.sim_config()).expect("runs");
    println!("=== execution ===");
    println!("cycles: {}, instructions: {}", res.cycles, res.instructions);
    println!("sram[200..204] = {:?}", &mem.sram[200..204]);
    println!("sram[300..302] = {:?}", &mem.sram[300..302]);
    assert_eq!(&mem.sram[200..204], &[20, 10, 40, 30]);
    assert_eq!(&mem.sram[300..302], &[30, 70]);
    println!("ok!");
}
