//! A crypto gateway: the paper's AES workload end-to-end. Compiles the
//! benchmark Nova program, cross-checks one packet against the FIPS-197
//! validated Rust reference, and sweeps payload sizes the way §11's
//! throughput experiment does — including the latency-hiding effect of
//! the micro-engine's hardware threads.
//!
//! Run with `cargo run --release --example crypto_gateway`.

use ixp_sim::{simulate, SimConfig, SimMemory};
use nova::{CompileConfig, Compiler};
use workloads::{aes, AES_NOVA, HEADER_WORDS};

fn main() {
    let t0 = std::time::Instant::now();
    let compiler = Compiler::new(CompileConfig::default());
    let out = compiler.compile_output(AES_NOVA).expect("compiles");
    println!(
        "AES compiled in {:?}: {} instructions, ILP {} vars / {} rows, {} moves, {} spills",
        t0.elapsed(),
        out.code_size,
        out.alloc_stats.model.variables,
        out.alloc_stats.model.constraints,
        out.alloc_stats.moves,
        out.alloc_stats.spills,
    );

    // Correctness spot check against the FIPS-validated reference.
    let key: [u8; 16] = *b"our 16-byte key!";
    let rk = aes::expand_key(&key);
    let mut mem = SimMemory::with_sizes(4096, 1 << 16, 1024);
    aes::load_sram(&key, |a, v| mem.sram[a as usize] = v);
    let plaintext = [0x00112233u32, 0x44556677, 0x8899aabb, 0xccddeeff];
    for (i, w) in plaintext.iter().enumerate() {
        mem.sdram[HEADER_WORDS as usize + i] = *w;
    }
    mem.rx_queue.push_back((56 + 16, 0));
    simulate(
        &mem_prog(&out),
        &mut mem,
        &SimConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .expect("runs");
    let mut expected = plaintext;
    aes::encrypt_words(&mut expected, &rk);
    let got = &mem.sdram[HEADER_WORDS as usize..HEADER_WORDS as usize + 4];
    assert_eq!(got, &expected, "ciphertext matches the reference");
    println!(
        "ciphertext check: {:08x} {:08x} {:08x} {:08x}  ok",
        got[0], got[1], got[2], got[3]
    );

    // Throughput sweep: payload sizes x hardware contexts.
    println!("\npayload sweep at 233 MHz (paper, real hardware: 270 Mb/s @ 16 B):");
    println!("{:>10} {:>12} {:>12}", "payload", "1 thread", "4 threads");
    for payload in [16u32, 64, 256] {
        let mut row = format!("{payload:>9}B");
        for threads in [1usize, 4] {
            let mut mem = SimMemory::with_sizes(4096, 1 << 18, 1024);
            aes::load_sram(&key, |a, v| mem.sram[a as usize] = v);
            let words = (56 + payload) / 4;
            let stride = (words + 1) & !1;
            for p in 0..32u32 {
                let base = p * stride;
                for w in 0..words {
                    mem.sdram[(base + w) as usize] = p ^ (w << 8);
                }
                mem.rx_queue.push_back((56 + payload, base));
            }
            let res = simulate(
                &out.prog,
                &mut mem,
                &SimConfig {
                    threads,
                    max_cycles: 1 << 32,
                    ..Default::default()
                },
            )
            .expect("runs");
            row.push_str(&format!(" {:>9.1} Mb/s", res.mbps));
        }
        println!("{row}");
    }
    println!("\nshape checks: throughput falls with payload (per-block cost),");
    println!("and extra contexts hide SRAM/SDRAM latency.");
}

fn mem_prog(out: &nova::CompileOutput) -> ixp_machine::Program<ixp_machine::PhysReg> {
    out.prog.clone()
}
