//! A packet classifier on the fast path — the kind of program the paper's
//! introduction motivates. Demonstrates the layout sublanguage (§3.2):
//! overlays for competing header views, `##` concatenation for shifted
//! alignments, exceptions for the slow path, and the hash unit for flow
//! lookup.
//!
//! Run with `cargo run --release --example packet_classifier`.

use ixp_sim::{simulate, SimConfig, SimMemory};
use nova::{CompileConfig, Compiler};

const CLASSIFIER: &str = r#"
const FLOW_TABLE = 0x200;   // SRAM: 64 flow counters

layout ipv6_address = { a1: 32, a2: 32, a3: 32, a4: 32 };
layout ipv6_header = {
    verpri: overlay { whole: 8 | parts: { version: 4, priority: 4 } },
    flow_label: 24,
    payload_length: 16, next_header: 8, hop_limit: 8,
    src: ipv6_address, dst: ipv6_address
};

fun main() {
    let (len, addr) = rx_packet();
    try {
        classify(addr, len, Slow)
    } handle Slow (a, l) {
        // Not fast-path material: punt to the host CPU (modelled as a
        // transmit on the slow queue) and keep going.
        tx_packet(a, l);
        main()
    }
}

fun classify [addr: word, len: word, slow: exn(word, word)] {
    let (w0, w1, w2, w3, w4, w5, w6, w7) = sdram(addr);
    let (w8, w9) = sdram(addr + 8);
    let u = unpack[ipv6_header]((w0, w1, w2, w3, w4, w5, w6, w7, w8, w9));
    // The overlay's cheap whole-byte view gates the fast path...
    if (u.verpri.whole != 0x60) raise slow (addr, len);
    // ...and expired packets leave it too.
    if (u.hop_limit == 0) raise slow (addr, len);
    // Count the flow through the hash unit.
    let h = hash(u.flow_label ^ u.src.a4);
    let slot = FLOW_TABLE + (h & 0x3F);
    let (count) = sram(slot);
    sram(slot) <- (count + 1);
    // Decrement the hop limit in place (only word 1 changes, but the
    // repack keeps the example honest about layout round-trips).
    let (p0, p1, p2, p3, p4, p5, p6, p7, p8, p9) = pack[ipv6_header] [
        verpri = [ whole = u.verpri.whole ],
        flow_label = u.flow_label,
        payload_length = u.payload_length, next_header = u.next_header,
        hop_limit = u.hop_limit - 1,
        src = [a1 = u.src.a1, a2 = u.src.a2, a3 = u.src.a3, a4 = u.src.a4],
        dst = [a1 = u.dst.a1, a2 = u.dst.a2, a3 = u.dst.a3, a4 = u.dst.a4]
    ];
    sdram(addr) <- (p0, p1);
    tx_packet(addr, len);
    main()
}
"#;

fn main() {
    let t0 = std::time::Instant::now();
    let out = Compiler::new(CompileConfig::default())
        .compile_output(CLASSIFIER)
        .expect("compiles");
    println!(
        "compiled {} machine instructions in {:?} ({} moves, {} spills)",
        out.code_size,
        t0.elapsed(),
        out.alloc_stats.moves,
        out.alloc_stats.spills
    );

    let mut mem = SimMemory::with_sizes(1024, 4096, 256);
    // Three packets: two fast-path IPv6, one that trips the slow path.
    let mk = |mem: &mut SimMemory, base: usize, ver: u32, hop: u32, flow: u32| {
        mem.sdram[base] = (ver << 24) | flow;
        mem.sdram[base + 1] = (64 << 16) | (6 << 8) | hop;
        for i in 2..10 {
            mem.sdram[base + i] = 0x2001_0000 + i as u32;
        }
        mem.rx_queue.push_back((40 + 16, base as u32));
    };
    mk(&mut mem, 0, 0x60, 64, 0x111);
    mk(&mut mem, 16, 0x45, 64, 0x222); // IPv4: slow path
    mk(&mut mem, 32, 0x60, 64, 0x111); // same flow as the first

    let res = simulate(
        &out.prog,
        &mut mem,
        &SimConfig {
            threads: 2,
            ..Default::default()
        },
    )
    .expect("runs");
    println!("processed {} packets in {} cycles", res.packets, res.cycles);
    println!(
        "tx log: {:?}",
        mem.tx_log
            .iter()
            .map(|(a, l, _)| (*a, *l))
            .collect::<Vec<_>>()
    );

    // The two fast-path packets hashed to the same flow counter.
    let counted: Vec<(usize, u32)> = mem.sram[0x200..0x240]
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, c)| (i, *c))
        .collect();
    println!("flow counters: {counted:?}");
    assert_eq!(counted.iter().map(|(_, c)| c).sum::<u32>(), 2);
    // The fast-path packets had their hop limit decremented.
    assert_eq!(mem.sdram[1] & 0xFF, 63);
    assert_eq!(mem.sdram[17] & 0xFF, 64, "slow path untouched");
    println!("ok!");
}
