//! A tour of the `ilp` crate on its own: the AMPL-like modeling layer
//! (§5, Figure 2 of the paper) applied to a miniature version of the
//! paper's running example — the "mini-IXP" of §2.1 with a four-register
//! transfer bank, where two values must be evicted to make room for a new
//! aggregate and the solver decides which.
//!
//! Run with `cargo run --release --example ilp_tour`.

use ilp::{BranchConfig, Cmp, Key, LinExpr, Model};

fn main() {
    // Mini-IXP (§2.1): the transfer bank holds four registers. u,v,w,x
    // were loaded as an aggregate (positions 0..4). v and x die. Then an
    // aggregate (y,z) of size two needs two *adjacent* registers: the
    // solver must pick evictions/placements. Costs: evicting u costs 3
    // (it is hot), evicting w costs 1.
    let mut m = Model::minimize();
    let color = m.family("Color");
    let evict = m.family("Evict");

    let regs: [u32; 4] = [0, 1, 2, 3];
    // u,v,w,x hold registers 0..4 after the first read.
    // Survivors u (reg 0) and w (reg 2) may be evicted.
    let eu = m.binary(evict, &[Key::Sym("u")]);
    let ew = m.binary(evict, &[Key::Sym("w")]);

    // y and z each get exactly one register.
    for who in ["y", "z"] {
        let vars: Vec<_> = regs
            .iter()
            .map(|r| m.binary(color, &[Key::Sym(who), Key::Int(*r)]))
            .collect();
        m.constrain("OneReg", LinExpr::sum(vars), Cmp::Eq, 1.0);
    }
    // Adjacency (§9): z sits directly above y.
    for r in regs {
        let y = m.expr(color, &[Key::Sym("y"), Key::Int(r)]);
        let z = if r + 1 < 4 {
            m.expr(color, &[Key::Sym("z"), Key::Int(r + 1)])
        } else {
            LinExpr::new()
        };
        m.constrain("Adjacent", y - z, Cmp::Eq, 0.0);
    }
    // Occupancy: register 0 needs u evicted, register 2 needs w evicted.
    for who in ["y", "z"] {
        let c0 = m.expr(color, &[Key::Sym(who), Key::Int(0)]);
        m.constrain("Occupied", c0 - LinExpr::from(eu), Cmp::Le, 0.0);
        let c2 = m.expr(color, &[Key::Sym(who), Key::Int(2)]);
        m.constrain("Occupied", c2 - LinExpr::from(ew), Cmp::Le, 0.0);
    }
    // Objective: eviction costs.
    m.add_objective(3.0 * eu + 1.0 * ew);

    let stats = m.stats();
    println!(
        "model: {} vars, {} constraints",
        stats.variables, stats.constraints
    );
    let sol = m.solve(&BranchConfig::default()).expect("solvable");
    println!("optimal eviction cost: {}", sol.objective);
    let who_evicted = |name: &'static str| m.value(evict, &[Key::Sym(name)], &sol.values) > 0.5;
    println!(
        "evict u? {}   evict w? {}",
        who_evicted("u"),
        who_evicted("w")
    );
    for who in ["y", "z"] {
        for r in regs {
            if m.value(color, &[Key::Sym(who), Key::Int(r)], &sol.values) > 0.5 {
                println!("{who} -> transfer register {r}");
            }
        }
    }
    // The solver evicts only w (cost 1): y,z land in registers 1,2
    // (register 1 was freed by v dying — no eviction needed there).
    assert_eq!(sol.objective, 1.0);
    assert!(!who_evicted("u"));
    assert!(who_evicted("w"));
    println!("ok!");
}
