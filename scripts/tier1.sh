#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   scripts/tier1.sh                build + full test suite
#   scripts/tier1.sh --lint         also run rustfmt --check and clippy
#                                   with warnings denied (mirrors CI's
#                                   lint job)
#   scripts/tier1.sh --bench        also regenerate BENCH_solver.json
#                                   (release-mode ILP solves; several minutes)
#   scripts/tier1.sh --bench-smoke  also run one small release-mode solve
#                                   and fail if pivots/sec drops below the
#                                   floor (MIN_PPS below; ~a minute)
#   scripts/tier1.sh --chip-smoke   also run a 2-engine NAT chip simulation
#                                   and fail if it loses packets or modeled
#                                   packets/sec drops below the floor
#                                   (MIN_CHIP_PPS below; seconds)
#   scripts/tier1.sh --degrade-smoke  also compile every workload under a
#                                   50 ms solver deadline with the fallback
#                                   ladder and fail on any compile failure
#                                   (the never-fail contract; seconds)
#   scripts/tier1.sh --traffic-smoke  also run a 100k-packet 2-chip traffic
#                                   sweep in fast-path mode, checked against
#                                   the BENCH_traffic.json baseline, with a
#                                   host-side packets/sec floor
#                                   (MIN_TRAFFIC_PPS below; seconds)
#   scripts/tier1.sh --service-smoke  also replay a 60-request rule-update
#                                   stream through the compile service and
#                                   fail on any cache-counter drift, any
#                                   warm/cold artifact mismatch, or a warm
#                                   speedup below 2x (seconds)
#   scripts/tier1.sh --persist-smoke  also exercise the on-disk artifact
#                                   cache: compile, drop the session,
#                                   restart from the cache directory, and
#                                   fail on any disk-counter drift, any
#                                   warm/cold artifact difference, or a
#                                   corrupted entry not degrading to a
#                                   clean miss (seconds)
#   scripts/tier1.sh --rollout-smoke  also run a scaled-down staged-rollout
#                                   fault campaign: healthy commit with
#                                   packet conservation, watchdog rollback
#                                   of a wedged image, checksum rejection
#                                   of a corrupt image, bit-identical
#                                   reports across host threads (seconds)
#
# Flags combine: `scripts/tier1.sh --lint --bench-smoke --chip-smoke`
# runs those extras after the build and test suite.
#
# The test suite runs in the default (debug) profile, where
# benchmark-sized ILP solves are marked #[ignore]; the release build is
# still exercised so optimized-path regressions are caught at compile
# time, and `--bench` runs the heavy solves for real.

set -euo pipefail
cd "$(dirname "$0")/.."

run_lint=0
run_bench=0
run_bench_smoke=0
run_chip_smoke=0
run_degrade_smoke=0
run_traffic_smoke=0
run_service_smoke=0
run_persist_smoke=0
run_rollout_smoke=0
for arg in "$@"; do
    case "$arg" in
        --lint)          run_lint=1 ;;
        --bench)         run_bench=1 ;;
        --bench-smoke)   run_bench_smoke=1 ;;
        --chip-smoke)    run_chip_smoke=1 ;;
        --degrade-smoke) run_degrade_smoke=1 ;;
        --traffic-smoke) run_traffic_smoke=1 ;;
        --service-smoke) run_service_smoke=1 ;;
        --persist-smoke) run_persist_smoke=1 ;;
        --rollout-smoke) run_rollout_smoke=1 ;;
        *)
            echo "unknown flag: $arg" >&2
            echo "usage: scripts/tier1.sh [--lint] [--bench] [--bench-smoke] [--chip-smoke] [--degrade-smoke] [--traffic-smoke] [--service-smoke] [--persist-smoke] [--rollout-smoke]" >&2
            exit 2
            ;;
    esac
done

echo "== cargo build --release =="
cargo build --release

# --workspace: the root manifest is both a package and a workspace, so a
# bare `cargo test` runs only the umbrella package's integration tests
# and silently skips every member crate's own test binaries.
echo "== cargo test -q --workspace =="
cargo test -q --workspace

if [[ "$run_lint" == 1 ]]; then
    echo "== cargo fmt --check =="
    cargo fmt --check
    echo "== cargo clippy (warnings denied) =="
    cargo clippy --workspace --all-targets -- -D warnings
fi

if [[ "$run_bench" == 1 ]]; then
    echo "== perf trajectory (release) =="
    cargo run --release -p bench --bin perf_trajectory -- BENCH_solver.json
fi

# Pivot-throughput floor for the smoke solve (NAT, 1 thread, exact gap).
# The sparse-LU kernel clears this by more than an order of magnitude;
# the floor exists to catch throughput collapse, not host jitter.
MIN_PPS=1500

if [[ "$run_bench_smoke" == 1 ]]; then
    echo "== bench smoke (release, floor ${MIN_PPS} pivots/s) =="
    cargo run --release -p bench --bin bench_smoke -- --min-pps "${MIN_PPS}"
fi

# Modeled packets-per-second floor for the chip smoke (NAT, 2 engines,
# 4 contexts). The measured rate clears this by well over an order of
# magnitude; the floor catches scheduling/arbitration collapse.
MIN_CHIP_PPS=50000

if [[ "$run_chip_smoke" == 1 ]]; then
    echo "== chip smoke (release, 2-engine NAT, floor ${MIN_CHIP_PPS} pkt/s) =="
    cargo run --release -p bench --bin chip_smoke -- --min-pps "${MIN_CHIP_PPS}"
fi

if [[ "$run_degrade_smoke" == 1 ]]; then
    echo "== degrade smoke (release, 50 ms deadline, fallback ladder) =="
    cargo run --release -p bench --bin degrade_smoke
fi

# Host-side delivered-packets-per-second floor for the traffic smoke
# (NAT, 100k packets, 2 chips, fast-path mode). The 1-core CI runner
# clears this by roughly an order of magnitude; the floor catches the
# fast path degenerating to cycle-slice speed, not host jitter.
MIN_TRAFFIC_PPS=20000

if [[ "$run_traffic_smoke" == 1 ]]; then
    echo "== traffic smoke (release, 100k packets x 2 chips, floor ${MIN_TRAFFIC_PPS} pkt/s) =="
    cargo run --release -p bench --bin traffic_smoke -- \
        --min-pps "${MIN_TRAFFIC_PPS}" --baseline BENCH_traffic.json
fi

if [[ "$run_service_smoke" == 1 ]]; then
    echo "== service smoke (release, 60-request stream, exact cache counters) =="
    cargo run --release -p bench --bin service_smoke
fi

if [[ "$run_persist_smoke" == 1 ]]; then
    echo "== persist smoke (release, cold/restart/corrupt, exact disk counters) =="
    cargo run --release -p bench --bin persist_smoke
fi

if [[ "$run_rollout_smoke" == 1 ]]; then
    echo "== rollout smoke (release, staged rollout under injected swap faults) =="
    cargo run --release -p bench --bin rollout_smoke
fi

echo "tier-1 OK"
