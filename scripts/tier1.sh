#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   scripts/tier1.sh            build + full test suite
#   scripts/tier1.sh --bench    also regenerate BENCH_solver.json
#                               (release-mode ILP solves; several minutes)
#
# The test suite runs in the default (debug) profile, where
# benchmark-sized ILP solves are marked #[ignore]; the release build is
# still exercised so optimized-path regressions are caught at compile
# time, and `--bench` runs the heavy solves for real.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

if [[ "${1:-}" == "--bench" ]]; then
    echo "== perf trajectory (release) =="
    cargo run --release -p bench --bin perf_trajectory -- BENCH_solver.json
fi

echo "tier-1 OK"
