#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   scripts/tier1.sh                build + full test suite
#   scripts/tier1.sh --bench        also regenerate BENCH_solver.json
#                                   (release-mode ILP solves; several minutes)
#   scripts/tier1.sh --bench-smoke  also run one small release-mode solve
#                                   and fail if pivots/sec drops below the
#                                   floor (MIN_PPS below; ~a minute)
#   scripts/tier1.sh --chip-smoke   also run a 2-engine NAT chip simulation
#                                   and fail if it loses packets or modeled
#                                   packets/sec drops below the floor
#                                   (MIN_CHIP_PPS below; seconds)
#
# The test suite runs in the default (debug) profile, where
# benchmark-sized ILP solves are marked #[ignore]; the release build is
# still exercised so optimized-path regressions are caught at compile
# time, and `--bench` runs the heavy solves for real.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

if [[ "${1:-}" == "--bench" ]]; then
    echo "== perf trajectory (release) =="
    cargo run --release -p bench --bin perf_trajectory -- BENCH_solver.json
fi

# Pivot-throughput floor for the smoke solve (NAT, 1 thread, exact gap).
# The sparse-LU kernel clears this by more than an order of magnitude;
# the floor exists to catch throughput collapse, not host jitter.
MIN_PPS=1500

if [[ "${1:-}" == "--bench-smoke" ]]; then
    echo "== bench smoke (release, floor ${MIN_PPS} pivots/s) =="
    cargo run --release -p bench --bin bench_smoke -- --min-pps "${MIN_PPS}"
fi

# Modeled packets-per-second floor for the chip smoke (NAT, 2 engines,
# 4 contexts). The measured rate clears this by well over an order of
# magnitude; the floor catches scheduling/arbitration collapse.
MIN_CHIP_PPS=50000

if [[ "${1:-}" == "--chip-smoke" ]]; then
    echo "== chip smoke (release, 2-engine NAT, floor ${MIN_CHIP_PPS} pkt/s) =="
    cargo run --release -p bench --bin chip_smoke -- --min-pps "${MIN_CHIP_PPS}"
fi

echo "tier-1 OK"
