//! End-to-end spill test: a program whose register pressure exceeds the
//! machine (15 A + 16 B usable + 8 L = 39 simultaneous values) forces the
//! ILP to place temporaries in the scratch spill bank `M`, and the
//! extraction phase to materialize the spill stores/reloads through spare
//! S/L registers (§9 "K and Spilling for transfer banks").

use ixp_sim::{simulate, SimConfig, SimMemory};
use nova::{CompileConfig, Compiler};
use nova_cps::eval::{run, Machine};

/// Five 8-word reads, all 40 values live at once, then all consumed.
fn high_pressure_program() -> String {
    let names: Vec<Vec<String>> = (0..5)
        .map(|g| (0..8).map(|i| format!("v{g}_{i}")).collect())
        .collect();
    let mut src = String::from("fun main() {\n");
    for (g, group) in names.iter().enumerate() {
        src.push_str(&format!(
            "    let ({}) = sram({});\n",
            group.join(", "),
            g * 8
        ));
    }
    // Consume everything pairwise so all 40 stay live until here.
    for g in 0..4 {
        let pairs: Vec<String> = (0..8)
            .map(|i| format!("{} + {}", names[g][i], names[g + 1][i]))
            .collect();
        src.push_str(&format!(
            "    sram({}) <- ({});\n",
            100 + g * 8,
            pairs.join(", ")
        ));
    }
    src.push_str("    0\n}\n");
    src
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "ILP solve of the spill model takes minutes unoptimized; run with --release"
)]
fn forced_spills_execute_correctly() {
    let src = high_pressure_program();
    let mut cfg = CompileConfig::default();
    cfg.alloc.solver.time_limit = Some(std::time::Duration::from_secs(240));
    let out = Compiler::new(cfg)
        .compile_output(&src)
        .unwrap_or_else(|e| panic!("{e}\n{src}"));
    assert!(ixp_machine::validate(&out.prog).is_empty());
    assert!(
        out.alloc_stats.spills > 0,
        "40 simultaneous values exceed the 39-register machine: spills required"
    );
    eprintln!(
        "spills: {}, moves: {}, solve: {:?}",
        out.alloc_stats.spills, out.alloc_stats.moves, out.alloc_stats.solve.total_time
    );

    // Differential execution with the spill code in place.
    let mut oracle = Machine::with_sizes(512, 64, 2048);
    for i in 0..40 {
        oracle.sram[i] = (i as u32 + 1) * 17;
    }
    run(&out.cps, &mut oracle, 10_000_000).unwrap();

    let mut sim = SimMemory::with_sizes(512, 64, 2048);
    for i in 0..40 {
        sim.sram[i] = (i as u32 + 1) * 17;
    }
    simulate(
        &out.prog,
        &mut sim,
        &SimConfig {
            threads: 1,
            max_cycles: 1 << 30,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        &oracle.sram[..512],
        &sim.sram[..512],
        "spilled program output diverged"
    );
    // Spot-check one value against arithmetic.
    assert_eq!(sim.sram[100], 17 + 9 * 17);
}

#[test]
fn pressure_below_capacity_never_spills() {
    // The same shape with three groups fits without touching scratch.
    let names: Vec<Vec<String>> = (0..3)
        .map(|g| (0..8).map(|i| format!("v{g}_{i}")).collect())
        .collect();
    let mut src = String::from("fun main() {\n");
    for (g, group) in names.iter().enumerate() {
        src.push_str(&format!(
            "    let ({}) = sram({});\n",
            group.join(", "),
            g * 8
        ));
    }
    for g in 0..2 {
        let pairs: Vec<String> = (0..8)
            .map(|i| format!("{} + {}", names[g][i], names[g + 1][i]))
            .collect();
        src.push_str(&format!(
            "    sram({}) <- ({});\n",
            100 + g * 8,
            pairs.join(", ")
        ));
    }
    src.push_str("    0\n}\n");
    let out = Compiler::new(CompileConfig::default())
        .compile_output(&src)
        .unwrap();
    assert_eq!(out.alloc_stats.spills, 0);
}
