//! Host-parallelism invisibility of the chip-level simulator: for every
//! benchmark workload, running the same compiled program on the same
//! packet stream must produce bit-identical results — cycles, telemetry,
//! memory traffic, and the transmit log — whether the simulation is
//! driven by 1, 2, or 4 host worker threads.
//!
//! This is the property the cycle-slice/arbitration-epoch design buys:
//! intra-slice execution is engine-local, and the barrier arbiter
//! resolves shared-resource requests in a canonical total order, so host
//! scheduling can never leak into the modeled chip.

use bench::{compile, setup_memory, Benchmark};
use ixp_sim::{simulate_chip, ChipConfig};
use nova::CompileConfig;

const PACKETS: usize = 48;
const HOST_THREADS: [usize; 3] = [1, 2, 4];

fn check(b: Benchmark, payload: u32) {
    let cfg = CompileConfig::builder().solver_threads(1).build();
    let out = compile(b, &cfg);
    let mut reference = None;
    for host_threads in HOST_THREADS {
        let mut mem = setup_memory(b, PACKETS, payload);
        let chip = ChipConfig {
            engines: 6,
            contexts: 4,
            host_threads,
            ..ChipConfig::default()
        };
        let res = simulate_chip(&out.prog, &mut mem, &chip)
            .unwrap_or_else(|e| panic!("{}/{host_threads} host threads: {e}", b.name()));
        assert_eq!(
            res.packets,
            PACKETS as u64,
            "{}: every packet processed",
            b.name()
        );
        let fingerprint = (
            res.cycles,
            res.instructions,
            res.packets,
            res.bytes,
            res.mem_refs,
            res.stop,
            res.channels,
            res.engines,
            mem.tx_log,
        );
        match &reference {
            None => reference = Some(fingerprint),
            Some(want) => assert_eq!(
                want,
                &fingerprint,
                "{}: {host_threads} host threads changed the simulation",
                b.name()
            ),
        }
    }
}

#[test]
fn nat_identical_across_host_threads() {
    check(Benchmark::Nat, 64);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn aes_identical_across_host_threads() {
    check(Benchmark::Aes, 16);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn kasumi_identical_across_host_threads() {
    check(Benchmark::Kasumi, 16);
}
