//! Scheduler-mode differential testing on real compiled workloads: for
//! every benchmark, the event-driven fast path must reproduce the
//! cycle-slice oracle bit for bit — result, telemetry, and the full
//! memory image — at every host thread count. Paired with the synthetic
//! and property-based coverage in `crates/ixp-sim/tests/modes.rs`, this
//! is what licenses running every benchmark and the traffic harness in
//! fast-path mode by default.

use bench::{compile, setup_memory, Benchmark};
use ixp_sim::{simulate_chip, ChipConfig, SimMode};
use nova::CompileConfig;

const PACKETS: usize = 48;
const HOST_THREADS: [usize; 3] = [1, 2, 4];

fn check(b: Benchmark, payload: u32) {
    let cfg = CompileConfig::builder().solver_threads(1).build();
    let out = compile(b, &cfg);
    for host_threads in HOST_THREADS {
        let mut fingerprints = Vec::new();
        for mode in [SimMode::CycleSlice, SimMode::FastPath] {
            let mut mem = setup_memory(b, PACKETS, payload);
            let chip = ChipConfig {
                engines: 6,
                contexts: 4,
                host_threads,
                mode,
                ..ChipConfig::default()
            };
            let res = simulate_chip(&out.prog, &mut mem, &chip)
                .unwrap_or_else(|e| panic!("{}/{mode:?}: {e}", b.name()));
            assert_eq!(res.packets, PACKETS as u64, "{}: all packets", b.name());
            fingerprints.push((
                (
                    res.cycles,
                    res.instructions,
                    res.packets,
                    res.bytes,
                    res.mem_refs,
                    res.stop,
                    res.channels,
                    res.engines,
                ),
                (mem.sram, mem.sdram, mem.scratch, mem.csr, mem.tx_log),
            ));
        }
        assert_eq!(
            fingerprints[0],
            fingerprints[1],
            "{}: fast path diverged from the cycle-slice oracle at {host_threads} host threads",
            b.name()
        );
    }
}

#[test]
fn nat_fast_path_matches_oracle() {
    check(Benchmark::Nat, 64);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn aes_fast_path_matches_oracle() {
    check(Benchmark::Aes, 16);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn kasumi_fast_path_matches_oracle() {
    check(Benchmark::Kasumi, 16);
}
