//! Session-cache equivalence under random edit streams.
//!
//! The per-phase invalidation contracts (comment edit → image hit,
//! constant edit → solve-free re-finish, structural edit → cold path)
//! are unit-tested next to the cache in `nova::session`. This file
//! checks the property those contracts exist to guarantee: *whatever*
//! sequence of edits a client replays through one warm [`Compiler`]
//! session, every returned artifact is bit-identical to a cold compile
//! of the same revision. A caching bug that leaks a stale artifact, or
//! a re-finish that diverges from a full solve, fails here with the
//! shrunken edit stream as the counterexample.

use nova::{CompileConfig, Compiler};
use proptest::prelude::*;
use workloads::{classifier_rules, classifier_source, CLASSIFIER_RULES};

/// Seed for the generated rule sets (distinct from the bench stream's).
const STREAM_SEED: u64 = 0x0051_7E55;

/// One solver thread so allocation is bit-deterministic and "identical
/// artifacts" is a meaningful oracle.
fn cfg() -> CompileConfig {
    CompileConfig::builder().solver_threads(1).build()
}

/// A recipe for the next source revision in an edit stream. Each kind
/// lands in a different cache regime once the session has seen its
/// variant before: comments leave the token stream untouched, constant
/// edits keep the immediate-masked structure, rule-count edits change
/// the program shape outright.
#[derive(Debug, Clone)]
enum Edit {
    /// Comment/whitespace decoration of variant `variant`'s source.
    Comment { variant: u8, salt: u8 },
    /// Variant `variant` verbatim: repeats are whole-image hits.
    Constants { variant: u8 },
    /// A classifier with `rules` rules instead of the usual four.
    Structure { variant: u8, rules: u8 },
}

fn source_of(edit: &Edit) -> String {
    match edit {
        Edit::Comment { variant, salt } => {
            let rules = classifier_rules(STREAM_SEED, u64::from(*variant), CLASSIFIER_RULES);
            format!(
                "// revision {salt}\n{}// reviewed: pass {salt}\n",
                classifier_source(&rules)
            )
        }
        Edit::Constants { variant } => classifier_source(&classifier_rules(
            STREAM_SEED,
            u64::from(*variant),
            CLASSIFIER_RULES,
        )),
        Edit::Structure { variant, rules } => classifier_source(&classifier_rules(
            STREAM_SEED,
            u64::from(*variant),
            usize::from(*rules),
        )),
    }
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0u8..3, any::<u8>()).prop_map(|(variant, salt)| Edit::Comment { variant, salt }),
        (0u8..3).prop_map(|variant| Edit::Constants { variant }),
        (0u8..2, 2u8..4).prop_map(|(variant, rules)| Edit::Structure { variant, rules }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every revision in a random edit stream, the warm session's
    /// artifact equals a throwaway cold session's, and the stream never
    /// needs a re-finish fallback.
    #[test]
    fn warm_session_matches_cold_on_any_edit_stream(
        edits in proptest::collection::vec(edit_strategy(), 1..8),
    ) {
        let session = Compiler::new(cfg());
        for edit in &edits {
            let src = source_of(edit);
            let warm = session
                .compile_output(&src)
                .expect("generated classifier sources compile");
            let cold = Compiler::new(cfg())
                .compile_output(&src)
                .expect("generated classifier sources compile");
            prop_assert!(
                warm.artifact_eq(&cold),
                "warm artifact diverged from cold after edit {:?}",
                edit
            );
        }
        let stats = session.cache_stats();
        prop_assert_eq!(
            stats.output_hits + stats.output_misses,
            edits.len() as u64
        );
        prop_assert_eq!(stats.refinish_fallbacks, 0);
    }
}
