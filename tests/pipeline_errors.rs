//! Error-path coverage for the umbrella pipeline: every phase failure is
//! reported as a structured diagnostic — phase, stable code, source span
//! when the phase tracks one, and a rendered position in the message.

use nova::{CompileConfig, Compiler, Phase};

fn err_of(src: &str) -> nova::CompileError {
    Compiler::new(CompileConfig::default())
        .compile_output(src)
        .unwrap_err()
}

#[test]
fn parse_errors_are_tagged() {
    let e = err_of("fun main( { 0 }");
    assert_eq!(e.phase, Phase::Parse);
    assert_eq!(e.code, "E-PARSE");
    assert!(e.span.is_some(), "frontend phases carry a span");
    assert!(e.message.contains("1:"), "position: {}", e.message);
    // Display stitches phase, message, and code together for logs.
    let shown = e.to_string();
    assert!(shown.starts_with("parse: "), "display: {shown}");
    assert!(shown.contains("[E-PARSE]"), "display: {shown}");
}

#[test]
fn type_errors_are_tagged() {
    let e = err_of("fun main() { x + 1 }");
    assert_eq!(e.phase, Phase::Typecheck);
    assert_eq!(e.code, "E-TYPE");
    assert!(e.message.contains("unbound"));

    let e = err_of("fun main() { if (1) 2 else 3 }");
    assert_eq!(e.phase, Phase::Typecheck);

    let e = err_of("fun main() { let (a, b, c) = sdram(0); a }");
    assert_eq!(e.phase, Phase::Typecheck);
    assert!(
        e.message.contains("even"),
        "sdram burst rule: {}",
        e.message
    );
}

#[test]
fn spans_point_into_the_source() {
    let src = "fun main() { x + 1 }";
    let e = err_of(src);
    let span = e.span.expect("typecheck diagnostics carry a span");
    assert!(span.lo < span.hi, "non-empty span");
    assert!(
        (span.hi as usize) <= src.len(),
        "span stays inside the source"
    );
    assert_eq!(&src[span.lo as usize..span.hi as usize], "x");
}

#[test]
fn errors_implement_std_error() {
    let e = err_of("fun main( { 0 }");
    let dynamic: &dyn std::error::Error = &e;
    assert!(!dynamic.to_string().is_empty());
}

#[test]
fn non_tail_recursion_is_rejected() {
    let e = err_of("fun main() { 1 + main() }");
    assert_eq!(e.phase, Phase::Typecheck);
    assert!(e.message.contains("tail position"));
}

#[test]
fn missing_main_is_rejected() {
    let e = err_of("fun helper() { 1 }");
    assert_eq!(e.phase, Phase::Typecheck);
    assert!(e.message.contains("main"));
}

#[test]
fn unknown_layout_is_rejected() {
    let e = err_of("fun main() { let (w) = sram(0); let u = unpack[nosuch]((w)); u }");
    assert_eq!(e.phase, Phase::Typecheck);
    assert!(e.message.contains("unknown layout"));
}

#[test]
fn frequency_weighting_keeps_loop_bodies_clean() {
    // A value used as a store operand inside a hot loop: the weighted
    // objective (§7) moves it into S once, outside the loop, rather than
    // paying a move per iteration. With the optimum at one move total,
    // any per-iteration placement would cost ~10x more.
    let src = r#"fun main() {
        let (x, n) = sram(0);
        let i = 0;
        while (i < n) {
            sram(64 + i) <- (x);
            i = i + 1;
        }
        sram(32) <- (x + n);
        0
    }"#;
    let out = Compiler::new(CompileConfig::default())
        .compile_output(src)
        .unwrap();
    // x needs an S copy (store operand, cloned by SSU) and an ALU copy;
    // the solution stays small and spill-free.
    assert_eq!(out.alloc_stats.spills, 0);
    assert!(
        out.alloc_stats.moves <= 3,
        "loop-invariant placement expected, got {} moves",
        out.alloc_stats.moves
    );
    // And the loop body itself (the block performing the register-indexed
    // store) contains no inter-bank move instructions: the copy into S was
    // hoisted to the preheader.
    let mut checked = false;
    for b in &out.prog.blocks {
        let is_loop_body = b.instrs.iter().any(|i| {
            matches!(
                i,
                ixp_machine::Instr::MemWrite {
                    addr: ixp_machine::Addr::Reg(..),
                    ..
                }
            )
        });
        if is_loop_body {
            checked = true;
            let moves = b
                .instrs
                .iter()
                .filter(|i| matches!(i, ixp_machine::Instr::Move { .. }))
                .count();
            assert_eq!(moves, 0, "no moves inside the loop body\n{}", out.prog);
        }
    }
    assert!(checked, "loop body found");
}
