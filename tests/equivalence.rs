//! The compiler's end-to-end correctness gate: for every program, the
//! allocated machine code executed by the cycle simulator must produce
//! exactly the same architectural state (memories, CSRs, transmit log) as
//! the CPS reference interpreter running the same program.

use ixp_sim::{simulate, SimConfig, SimMemory};
use nova::{CompileConfig, Compiler};
use nova_cps::eval::{run, Machine};

/// Run both execution models and compare final state.
fn check_equivalence(src: &str, setup: impl Fn(&mut Machine)) {
    let out = Compiler::new(CompileConfig::default())
        .compile_output(src)
        .unwrap_or_else(|e| panic!("compile: {e}"));
    assert!(
        ixp_machine::validate(&out.prog).is_empty(),
        "validator must accept the output"
    );

    // Oracle: CPS interpreter.
    let mut oracle = Machine::with_sizes(2048, 8192, 1024);
    setup(&mut oracle);
    let rx: Vec<(u32, u32)> = oracle.rx_queue.iter().copied().collect();
    run(&out.cps, &mut oracle, 50_000_000).unwrap_or_else(|e| panic!("oracle: {e}"));

    // Machine code on the simulator (single-threaded so the rx/processing
    // order matches the oracle exactly).
    let mut sim = SimMemory::with_sizes(2048, 8192, 1024);
    {
        let mut m = Machine::with_sizes(2048, 8192, 1024);
        setup(&mut m);
        sim.sram = m.sram;
        sim.sdram = m.sdram;
        sim.scratch = m.scratch;
        sim.csr = m.csr;
        sim.rx_queue = rx.into_iter().collect();
    }
    let res = simulate(
        &out.prog,
        &mut sim,
        &SimConfig {
            threads: 1,
            max_cycles: 500_000_000,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("simulate: {e}"));
    assert_eq!(
        res.stop,
        ixp_sim::StopReason::AllHalted,
        "simulation must run to completion"
    );

    assert_eq!(oracle.sram, sim.sram, "sram state diverged\n{}", out.prog);
    assert_eq!(
        oracle.sdram, sim.sdram,
        "sdram state diverged\n{}",
        out.prog
    );
    // The allocator may use scratch above the spill base; compare only the
    // program-visible region below it.
    let base = nova_backend::alloc::SPILL_BASE as usize;
    let cut = |v: &Vec<u32>| -> Vec<u32> { v.iter().copied().take(base).collect() };
    assert_eq!(
        cut(&oracle.scratch),
        cut(&sim.scratch),
        "scratch state diverged"
    );
    let sim_tx: Vec<(u32, u32)> = sim.tx_log.iter().map(|(a, l, _)| (*a, *l)).collect();
    assert_eq!(oracle.tx_log, sim_tx, "tx log diverged");
}

#[test]
fn arithmetic_chain() {
    check_equivalence(
        r#"fun main() {
            let (a, b, c) = sram(0);
            let x = (a + b) ^ (c << 3);
            let y = (x | b) - (a >> 1);
            sram(10) <- (x, y, x & y);
            0
        }"#,
        |m| m.sram[0..3].copy_from_slice(&[0x1234, 0x00FF, 7]),
    );
}

#[test]
fn figure3_shape() {
    check_equivalence(
        r#"fun main() {
            let (a, b, c, d) = sram(100);
            let (e, f, g, h, i, j) = sram(200);
            let u = a + c;
            let v = g + h;
            sram(300) <- (b, e, v, u);
            sram(500) <- (f, j, d, i);
            0
        }"#,
        |m| {
            for k in 0..4 {
                m.sram[100 + k] = (k as u32 + 1) * 3;
            }
            for k in 0..6 {
                m.sram[200 + k] = (k as u32 + 1) * 7;
            }
        },
    );
}

#[test]
fn cloned_operands() {
    check_equivalence(
        r#"fun main() {
            let (u, v, x, w) = sram(0);
            sram(100) <- (u, v, x, w);
            sram(200) <- (w, x, u, v);
            sram(300) <- (x + u);
            0
        }"#,
        |m| m.sram[0..4].copy_from_slice(&[11, 22, 33, 44]),
    );
}

#[test]
fn control_flow_and_loops() {
    check_equivalence(
        r#"fun main() {
            let (n) = sram(0);
            let i = 0;
            let acc = 0;
            while (i < n) {
                if (i & 1 == 1) { acc = acc + i; } else { acc = acc + 1; }
                i = i + 1;
            }
            sram(1) <- (acc);
            0
        }"#,
        |m| m.sram[0] = 9,
    );
}

#[test]
fn layouts_and_packing() {
    check_equivalence(
        r#"
        layout hdr = { version: 4, priority: 4, flow: 24, len: 16, proto: 8, ttl: 8 };
        fun main() {
            let p: packed(hdr) = sram(0);
            let u = unpack[hdr](p);
            let q = pack[hdr] [
                version = u.version, priority = u.priority + 1,
                flow = u.flow, len = u.len, proto = u.proto, ttl = u.ttl - 1
            ];
            sram(8) <- q;
            sram(16) <- (u.version, u.flow, u.ttl);
            0
        }"#,
        |m| {
            m.sram[0] = (6 << 28) | (2 << 24) | 0xBEEF5;
            m.sram[1] = (1500 << 16) | (6 << 8) | 64;
        },
    );
}

#[test]
fn tail_recursive_packet_loop() {
    check_equivalence(
        r#"fun main() {
            let (len, addr) = rx_packet();
            let (w0, w1) = sdram(addr);
            sdram(addr) <- (w1 ^ 0xFFFF, w0 + 1);
            tx_packet(addr, len);
            main()
        }"#,
        |m| {
            for i in 0..4u32 {
                m.rx_queue.push_back((8, i * 2));
                m.sdram[(i * 2) as usize] = i * 100;
                m.sdram[(i * 2 + 1) as usize] = i * 100 + 1;
            }
        },
    );
}

#[test]
fn exceptions_and_nested_calls() {
    check_equivalence(
        r#"
        fun checked_div [num: word, den: word, div_zero: exn(word)] {
            if (den == 0) raise div_zero (num) else num
        }
        fun main() {
            let (a, b) = sram(0);
            let r1 = try { checked_div[num = a, den = b, div_zero = Z] }
                     handle Z (n) { n + 9999 };
            let r2 = try { checked_div[num = a, den = 0, div_zero = Z2] }
                     handle Z2 (n) { n + 1111 };
            sram(10) <- (r1, r2);
            0
        }"#,
        |m| m.sram[0..2].copy_from_slice(&[500, 3]),
    );
}

#[test]
fn hash_unit_and_scratch() {
    check_equivalence(
        r#"fun main() {
            let (k) = sram(0);
            let h = hash(k);
            scratch(16) <- (h, h & 0xFF);
            let (x, y) = scratch(16);
            sram(1) <- (x ^ y);
            0
        }"#,
        |m| m.sram[0] = 0xCAFE,
    );
}

#[test]
fn overlays_both_views() {
    check_equivalence(
        r#"
        layout h = { vp: overlay { whole: 8 | parts: { ver: 4, pri: 4 } }, rest: 24 };
        fun main() {
            let p: packed(h) = sram(0);
            let u = unpack[h](p);
            let w1 = pack[h] [ vp = [ whole = u.vp.whole ], rest = u.rest ];
            let w2 = pack[h] [ vp = [ parts = [ ver = u.vp.parts.ver, pri = u.vp.parts.pri ] ], rest = u.rest ];
            sram(4) <- (w1, w2, u.vp.whole, u.vp.parts.ver);
            0
        }"#,
        |m| m.sram[0] = 0x45AB_CDEF,
    );
}

#[test]
fn nested_functions_inline() {
    check_equivalence(
        r#"fun main() {
            let (base) = sram(0);
            fun scale(x) { x + base }
            fun twice(x) { scale(x) + scale(x + 1) }
            sram(1) <- (twice(10));
            0
        }"#,
        |m| m.sram[0] = 1000,
    );
}

#[test]
fn test_and_set_and_csrs() {
    check_equivalence(
        r#"fun main() {
            // Claim two lock words; the second claim of the same word
            // observes the bit already set.
            let old1 = bit_test_set(40, 1);
            let old2 = bit_test_set(40, 2);
            let old3 = bit_test_set(41, 4);
            csr_write(7, old2 | (old3 << 8));
            sram(0) <- (old1, old2, old3, csr_read(7));
            0
        }"#,
        |m| {
            m.sram[40] = 0;
            m.sram[41] = 0x30;
        },
    );
}

#[test]
fn deep_expression_trees() {
    check_equivalence(
        r#"fun main() {
            let (a, b, c, d, e, f, g, h) = sram(0);
            let x = ((a + b) ^ (c | d)) - ((e & f) + (g >> 2) + (h << 1));
            let y = (((x ^ a) + (x ^ b)) | ((x ^ c) & (x ^ d))) + (x >> 5);
            sram(16) <- (x, y);
            0
        }"#,
        |m| {
            for i in 0..8 {
                m.sram[i] = (i as u32 + 3) * 0x01010101;
            }
        },
    );
}

#[test]
fn shifted_layout_alignments() {
    // §3.2's alignment example: the same layout at offsets 0, 16 and 24
    // within three packed words, selected at run time.
    check_equivalence(
        r#"
        layout lyt = { x: 16, y: 32, z: 8 };
        fun main() {
            let (sel) = sram(0);
            let (p0, p1, p2) = sram(1);
            let v = {
                if (sel == 0) {
                    let u = unpack[lyt ## {40}]((p0, p1, p2));
                    u.x + u.z
                } else if (sel == 1) {
                    let u = unpack[{16} ## lyt ## {24}]((p0, p1, p2));
                    u.x + u.z
                } else {
                    let u = unpack[{24} ## lyt ## {16}]((p0, p1, p2));
                    u.x + u.z
                }
            };
            sram(10) <- (v);
            0
        }"#,
        |m| {
            m.sram[0] = 1; // middle alignment
            m.sram[1] = 0xAAAA_1234;
            m.sram[2] = 0x5678_9ABC;
            m.sram[3] = 0xDEF0_5555;
        },
    );
}
