//! Differential tests across compiler configurations: every knob must
//! preserve semantics, including the unoptimized path (which exercises
//! instruction selection's safety nets directly).

use ixp_sim::{simulate, SimConfig, SimMemory};
use nova::{CompileConfig, Compiler};
use nova_cps::eval::{run, Machine};

const PROGRAM: &str = r#"
layout h = { ver: 4, pri: 4, label: 24 };
fun scale(x, k) { (x << 1) ^ k }
fun main() {
    let (w, k) = sram(0);
    let u = unpack[h]((w));
    let a = scale(u.label, k);
    let b = a + a;
    if (u.ver == 4) { sram(8) <- (b, a, u.pri); } else { sram(8) <- (a, b, u.ver); }
    let i = 0;
    let acc = 0;
    while (i < u.pri) { acc = acc + b; i = i + 1; }
    sram(16) <- (acc);
    0
}
"#;

fn run_config(cfg: &CompileConfig, seed: [u32; 2]) -> (Vec<u32>, Vec<u32>) {
    let out = Compiler::new(cfg.clone())
        .compile_output(PROGRAM)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(ixp_machine::validate(&out.prog).is_empty());
    let mut oracle = Machine::with_sizes(256, 64, 64);
    oracle.sram[0..2].copy_from_slice(&seed);
    run(&out.cps, &mut oracle, 10_000_000).unwrap();
    let mut sim = SimMemory::with_sizes(256, 64, 64);
    sim.sram[0..2].copy_from_slice(&seed);
    simulate(
        &out.prog,
        &mut sim,
        &SimConfig {
            threads: 1,
            max_cycles: 1 << 30,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(oracle.sram, sim.sram, "oracle vs sim under {cfg:?}");
    (oracle.sram.clone(), sim.sram)
}

#[test]
fn all_configurations_agree() {
    let seed = [(4 << 28) | (5 << 24) | 0xBEEF, 0x1357];
    let baseline = run_config(&CompileConfig::default(), seed).0;

    let unopt = CompileConfig {
        skip_opt: true,
        ..Default::default()
    };
    assert_eq!(run_config(&unopt, seed).0, baseline, "skip_opt");

    let mut no_cuts = CompileConfig::default();
    no_cuts.alloc.redundant_cuts = false;
    assert_eq!(run_config(&no_cuts, seed).0, baseline, "no redundant cuts");

    let mut no_bias = CompileConfig::default();
    no_bias.alloc.bias = 1.0;
    assert_eq!(run_config(&no_bias, seed).0, baseline, "no bias");

    let mut full_spill = CompileConfig::default();
    full_spill.alloc.spill_auto = false;
    assert_eq!(
        run_config(&full_spill, seed).0,
        baseline,
        "full spill model"
    );

    let mut unpruned = CompileConfig::default();
    unpruned.alloc.prune = false;
    assert_eq!(
        run_config(&unpruned, seed).0,
        baseline,
        "unpruned candidates"
    );
}

#[test]
fn spill_disabled_without_auto_errors_under_pressure() {
    // 20 simultaneously-live values exceed nothing here (fits in A+B), so
    // allocation succeeds even with spilling hard-disabled; the point is
    // that the configuration is honored end to end.
    let mut cfg = CompileConfig::default();
    cfg.alloc.allow_spill = false;
    cfg.alloc.spill_auto = false;
    let out = Compiler::new(cfg).compile_output(PROGRAM).unwrap();
    assert_eq!(out.alloc_stats.spills, 0);
}

#[test]
fn validator_rejects_corrupted_output() {
    // Failure injection: break an allocated program in characteristic ways
    // and confirm the validator catches each.
    use ixp_machine::{AluSrc, Bank, Instr, PhysReg};
    let out = Compiler::new(CompileConfig::default())
        .compile_output(PROGRAM)
        .unwrap();
    assert!(ixp_machine::validate(&out.prog).is_empty());

    // (a) Swap an ALU destination into a load transfer bank.
    let mut broken = out.prog.clone();
    'outer: for b in &mut broken.blocks {
        for ins in &mut b.instrs {
            if let Instr::Alu { dst, .. } = ins {
                *dst = PhysReg::new(Bank::L, 0);
                break 'outer;
            }
        }
    }
    assert!(
        !ixp_machine::validate(&broken).is_empty(),
        "L-dest ALU must be rejected"
    );

    // (b) Force both ALU operands into the same bank.
    let mut broken = out.prog.clone();
    'outer2: for b in &mut broken.blocks {
        for ins in &mut b.instrs {
            if let Instr::Alu {
                a,
                b: AluSrc::Reg(rb),
                ..
            } = ins
            {
                *rb = PhysReg::new(a.bank, (a.num + 1) % 8);
                break 'outer2;
            }
        }
    }
    assert!(
        !ixp_machine::validate(&broken).is_empty(),
        "same-bank operands rejected"
    );

    // (c) Make an aggregate non-consecutive.
    let mut broken = out.prog.clone();
    let mut did = false;
    for b in &mut broken.blocks {
        for ins in &mut b.instrs {
            if let Instr::MemWrite { src, .. } = ins {
                if src.len() >= 2 {
                    let bank = src[0].bank;
                    src[1] = PhysReg::new(bank, (src[0].num + 3) % 8);
                    did = true;
                }
            }
        }
    }
    if did {
        assert!(
            !ixp_machine::validate(&broken).is_empty(),
            "gap in aggregate rejected"
        );
    }
}
