//! Cross-thread-count determinism of the parallel ILP solver at
//! application scale: compiling each benchmark program with 1, 2, and 4
//! solver threads must produce the same allocation quality — identical
//! objective, inter-bank move count, and spill count. Run with an exact
//! gap so the optimum is unique (the default 0.01% gap permits distinct
//! near-optimal incumbents, which would make this test meaningless).
//!
//! Objectives are compared to within twice the default fathoming margin
//! (`BranchConfig::fathom_abs`, see its docs): incumbents whose
//! objectives differ by less than the margin are indistinguishable ties
//! to the search, so different thread schedules may legitimately settle
//! on different tie members. Any real allocation difference (an extra
//! move or spill) changes the objective by ≥ 1e-2 and is still caught,
//! and the move/spill counts themselves are compared exactly.

use nova::{CompileConfig, CompileOutput, Compiler};
use workloads::{AES_NOVA, KASUMI_NOVA, NAT_NOVA};

fn compile_with_threads(name: &str, src: &str, threads: usize) -> CompileOutput {
    let cfg = CompileConfig::builder()
        .solver_threads(threads)
        .solver_gap(0.0)
        .build();
    let t0 = std::time::Instant::now();
    let out = Compiler::new(cfg)
        .compile_output(src)
        .unwrap_or_else(|e| panic!("{name}/{threads}t: {e}"));
    eprintln!(
        "{name}: {threads} threads -> objective {:.3}, {} moves, {} spills, \
         {} nodes, {:.0}% warm hits, in {:?}",
        out.alloc_stats.objective,
        out.alloc_stats.moves,
        out.alloc_stats.spills,
        out.alloc_stats.solve.nodes,
        100.0 * out.alloc_stats.solve.warm_hit_rate(),
        t0.elapsed(),
    );
    out
}

fn check(name: &str, src: &str) {
    let reference = compile_with_threads(name, src, 1);
    assert_eq!(
        reference.alloc_stats.spills, 0,
        "{name}: paper reports zero spills"
    );
    for threads in [2usize, 4] {
        let got = compile_with_threads(name, src, threads);
        assert!(
            (got.alloc_stats.objective - reference.alloc_stats.objective).abs() < 5e-5,
            "{name}: {threads} threads changed the objective: {} vs {}",
            got.alloc_stats.objective,
            reference.alloc_stats.objective,
        );
        assert_eq!(
            got.alloc_stats.moves, reference.alloc_stats.moves,
            "{name}: {threads} threads changed the move count"
        );
        assert_eq!(
            got.alloc_stats.spills, reference.alloc_stats.spills,
            "{name}: {threads} threads changed the spill count"
        );
        assert_eq!(
            got.alloc_stats.solve.threads, threads,
            "{name}: thread count recorded"
        );
        assert_eq!(
            got.alloc_stats.solve.per_thread_nodes.len(),
            threads,
            "{name}: per-thread node counts recorded"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn aes_deterministic_across_thread_counts() {
    check("AES", AES_NOVA);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn kasumi_deterministic_across_thread_counts() {
    check("Kasumi", KASUMI_NOVA);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn nat_deterministic_across_thread_counts() {
    check("NAT", NAT_NOVA);
}
