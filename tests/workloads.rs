//! Application-level correctness: the three benchmark programs compiled by
//! our compiler must produce, on both execution models, exactly the packet
//! transformations computed by the trusted Rust reference implementations.

use ixp_sim::{simulate, SimConfig, SimMemory};
use nova::{CompileConfig, CompileOutput, Compiler};
use nova_cps::eval::{run, Machine};
use workloads::{aes, kasumi, nat, AES_NOVA, KASUMI_NOVA, NAT_NOVA};

const HDR_WORDS: usize = 14;

fn compile(name: &str, src: &str) -> CompileOutput {
    let t0 = std::time::Instant::now();
    let out = Compiler::new(CompileConfig::default())
        .compile_output(src)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    eprintln!(
        "{name}: compiled in {:?} (model: {} vars, {} rows; solve: {:?}, {} nodes; moves {}, spills {}; {} instrs)",
        t0.elapsed(),
        out.alloc_stats.model.variables,
        out.alloc_stats.model.constraints,
        out.alloc_stats.solve.total_time,
        out.alloc_stats.solve.nodes,
        out.alloc_stats.moves,
        out.alloc_stats.spills,
        out.code_size,
    );
    out
}

/// Build a packet buffer: 14 header words + payload words.
fn packet(payload: &[u32]) -> Vec<u32> {
    let mut words = vec![0u32; HDR_WORDS];
    // Valid fast-path header: IPv4, TCP, TTL 64.
    let total = (HDR_WORDS + payload.len()) as u32 * 4;
    words[0] = (4 << 28) | (5 << 24) | (total & 0xFFFF);
    words[1] = (64 << 24) | (6 << 16) | 0x1234;
    for (i, w) in words.iter_mut().enumerate().skip(2) {
        *w = 0xE000_0000 | i as u32; // synthetic header filler
    }
    words.extend_from_slice(payload);
    words
}

/// Run a compiled program on the simulator over the given SDRAM packets.
fn run_sim(
    out: &CompileOutput,
    sram: &[(u32, u32)],
    scratch: &[(u32, u32)],
    packets: &[Vec<u32>],
) -> SimMemory {
    let mut mem = SimMemory::with_sizes(4096, 1 << 16, 2048);
    for &(a, v) in sram {
        mem.sram[a as usize] = v;
    }
    for &(a, v) in scratch {
        mem.scratch[a as usize] = v;
    }
    let mut base = 0u32;
    for p in packets {
        for (i, w) in p.iter().enumerate() {
            mem.sdram[(base as usize) + i] = *w;
        }
        mem.rx_queue.push_back(((p.len() * 4) as u32, base));
        base += ((p.len() as u32) + 2) & !1;
    }
    let res = simulate(
        &out.prog,
        &mut mem,
        &SimConfig {
            threads: 1,
            max_cycles: 2_000_000_000,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(res.stop, ixp_sim::StopReason::AllHalted);
    assert_eq!(
        res.packets as usize,
        packets.len(),
        "all packets transmitted"
    );
    mem
}

/// Run the CPS oracle over the same state and return its memory.
fn run_oracle(
    out: &CompileOutput,
    sram: &[(u32, u32)],
    scratch: &[(u32, u32)],
    packets: &[Vec<u32>],
) -> Machine {
    let mut m = Machine::with_sizes(4096, 1 << 16, 2048);
    for &(a, v) in sram {
        m.sram[a as usize] = v;
    }
    for &(a, v) in scratch {
        m.scratch[a as usize] = v;
    }
    let mut base = 0u32;
    for p in packets {
        for (i, w) in p.iter().enumerate() {
            m.sdram[(base as usize) + i] = *w;
        }
        m.rx_queue.push_back(((p.len() * 4) as u32, base));
        base += ((p.len() as u32) + 2) & !1;
    }
    run(&out.cps, &mut m, 2_000_000_000).unwrap();
    m
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn aes_matches_reference_everywhere() {
    let out = compile("aes", AES_NOVA);
    assert_eq!(out.alloc_stats.spills, 0, "paper: zero spills");

    let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(7).wrapping_add(1));
    let mut sram = Vec::new();
    aes::load_sram(&key, |a, v| sram.push((a, v)));

    // Two packets: one 16-byte and one 48-byte payload.
    let p1 = packet(&[0x00112233, 0x44556677, 0x8899aabb, 0xccddeeff]);
    let p2 = packet(
        &(0..12)
            .map(|i| 0x0101_0101u32.wrapping_mul(i + 1))
            .collect::<Vec<_>>(),
    );
    let packets = vec![p1.clone(), p2.clone()];

    let sim = run_sim(&out, &sram, &[], &packets);
    let oracle = run_oracle(&out, &sram, &[], &packets);
    assert_eq!(sim.sdram, oracle.sdram, "simulator and CPS oracle agree");

    // Reference encryption of each payload.
    let rk = aes::expand_key(&key);
    let mut ref1 = p1[HDR_WORDS..].to_vec();
    aes::encrypt_words(&mut ref1, &rk);
    assert_eq!(
        &sim.sdram[HDR_WORDS..HDR_WORDS + 4],
        &ref1[..],
        "packet 1 ciphertext"
    );
    let base2 = (p1.len() + 2) & !1;
    let mut ref2 = p2[HDR_WORDS..].to_vec();
    aes::encrypt_words(&mut ref2, &rk);
    assert_eq!(
        &sim.sdram[base2 + HDR_WORDS..base2 + HDR_WORDS + 12],
        &ref2[..],
        "packet 2 ciphertext"
    );
    // The checksum field (header word 13) was maintained.
    let csum = {
        let mut s: u32 = ref1.iter().map(|w| (w >> 16) + (w & 0xFFFF)).sum();
        s = (s & 0xFFFF) + (s >> 16);
        (s & 0xFFFF) + (s >> 16)
    };
    assert_eq!(sim.sdram[13], csum, "TCP-style checksum maintained");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "benchmark-sized ILP solves are slow unoptimized; run with --release"
)]
fn kasumi_matches_reference_everywhere() {
    let out = compile("kasumi", KASUMI_NOVA);
    assert_eq!(out.alloc_stats.spills, 0, "paper: zero spills");

    let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(31).wrapping_add(5));
    let mut sram = Vec::new();
    let mut scratch = Vec::new();
    kasumi::load_memory(&key, |a, v| sram.push((a, v)), |a, v| scratch.push((a, v)));

    let p1 = packet(&[0x01234567, 0x89ABCDEF]);
    let p2 = packet(&(0..8).map(|i| 0xDEAD_0000u32 + i).collect::<Vec<_>>());
    let packets = vec![p1.clone(), p2.clone()];

    let sim = run_sim(&out, &sram, &scratch, &packets);
    let oracle = run_oracle(&out, &sram, &scratch, &packets);
    assert_eq!(sim.sdram, oracle.sdram);

    let sk = kasumi::key_schedule(&key);
    let (s7, s9) = (kasumi::s7_table(), kasumi::s9_table());
    let mut ref1 = p1[HDR_WORDS..].to_vec();
    kasumi::encrypt_words(&mut ref1, &sk, &s7, &s9);
    assert_eq!(
        &sim.sdram[HDR_WORDS..HDR_WORDS + 2],
        &ref1[..],
        "packet 1 ciphertext"
    );
    let base2 = (p1.len() + 2) & !1;
    let mut ref2 = p2[HDR_WORDS..].to_vec();
    kasumi::encrypt_words(&mut ref2, &sk, &s7, &s9);
    assert_eq!(
        &sim.sdram[base2 + HDR_WORDS..base2 + HDR_WORDS + 8],
        &ref2[..],
        "packet 2 ciphertext"
    );
}

#[test]
fn nat_matches_reference_everywhere() {
    let out = compile("nat", NAT_NOVA);
    assert_eq!(out.alloc_stats.spills, 0, "paper: zero spills");

    // An IPv6 TCP packet (translated) and a non-TCP one (slow path).
    let v6 = nat::Ipv6Header {
        version: 6,
        traffic_class: 0x2E,
        flow: 0xBEEF5,
        payload_len: 24,
        next_header: 6,
        hop_limit: 63,
        src: [0x2001_0DB8, 0, 0, 0xC0A8_0101],
        dst: [0x2001_0DB8, 0, 1, 0x0A00_0002],
    };
    let mut p1: Vec<u32> = v6.pack().to_vec();
    p1.extend((0..6).map(|i| 0xFACE_0000u32 + i)); // 24-byte payload
    let mut v6b = v6;
    v6b.next_header = 17; // UDP: slow path
    let mut p2: Vec<u32> = v6b.pack().to_vec();
    p2.extend((0..6).map(|i| 0xBEAD_0000u32 + i));
    let packets = vec![p1.clone(), p2.clone()];

    let sim = run_sim(&out, &[], &[], &packets);
    let oracle = run_oracle(&out, &[], &[], &packets);
    assert_eq!(sim.sdram, oracle.sdram);

    // Reference translation of packet 1 (the MAP table is all zeros, so
    // the mapped address equals the low source word).
    let mut refbuf = p1.clone();
    let (start, newlen) = nat::translate_packet(&mut refbuf, (p1.len() * 4) as u32);
    assert_eq!(&sim.sdram[5..10], &refbuf[5..10], "IPv4 header");
    // Transmit log: packet 1 translated (start advanced), packet 2 as-is.
    let tx: Vec<(u32, u32)> = sim.tx_log.iter().map(|(a, l, _)| (*a, *l)).collect();
    let base2 = ((p1.len() + 2) & !1) as u32;
    assert_eq!(
        tx,
        vec![(start as u32, newlen), (base2, (p2.len() * 4) as u32)]
    );
}
