//! On-disk artifact-cache contracts across process "crashes".
//!
//! The disk cache exists to warm a restarted server, so its contracts
//! are phrased around restarts: a fresh [`Compiler`] over a populated
//! directory replaces every MILP solve with a disk load, a corrupted or
//! truncated entry is a clean miss (never a failure), and — the
//! property everything else serves — artifacts after *any* crash/restart
//! point in an edit stream are bit-identical to an uninterrupted cold
//! run. Corruption may cost time, never correctness.

use nova::{CompileConfig, Compiler};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use workloads::{classifier_rules, classifier_source, CLASSIFIER_RULES};

/// Seed for the generated rule sets (distinct from the bench streams').
const STREAM_SEED: u64 = 0x0D15_C0DE;

/// A fresh scratch directory per call; callers leak nothing because the
/// whole tree lives under the system temp dir and is removed up front on
/// name reuse.
fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nova-persist-test-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One solver thread so "bit-identical" is a meaningful oracle.
fn cfg(persist: Option<&Path>) -> CompileConfig {
    let b = CompileConfig::builder().solver_threads(1);
    match persist {
        Some(dir) => b.persist_dir(dir).build(),
        None => b.build(),
    }
}

/// Classifier source with `rules` rules of variant `variant`.
fn classifier(variant: u64, rules: usize) -> String {
    classifier_source(&classifier_rules(STREAM_SEED, variant, rules))
}

/// The cache files currently on disk, in sorted (deterministic) order.
fn cache_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read cache dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    files.sort();
    files
}

#[test]
fn restart_replays_a_structural_stream_from_disk() {
    let dir = scratch_dir("restart");
    let sources: Vec<String> = (2..=4).map(|n| classifier(0, n)).collect();

    let first = Compiler::new(cfg(Some(&dir)));
    let cold: Vec<_> = sources
        .iter()
        .map(|s| first.compile_output(s).expect("compiles"))
        .collect();
    let s = first.cache_stats();
    assert_eq!(s.disk_misses, 3, "every structure misses an empty cache");
    assert_eq!(s.disk_hits, 0);
    assert_eq!(cache_files(&dir).len(), 3, "one entry per structure");
    drop(first); // the crash: only the directory survives

    let second = Compiler::new(cfg(Some(&dir)));
    let warm: Vec<_> = sources
        .iter()
        .map(|s| second.compile_output(s).expect("compiles"))
        .collect();
    let s = second.cache_stats();
    assert_eq!(s.disk_hits, 3, "every solve replaced by a disk load");
    assert_eq!(s.alloc_misses, 0, "no MILP ran on the warm side");
    assert_eq!(s.disk_rejects, 0);
    for (w, c) in warm.iter().zip(&cold) {
        assert!(w.artifact_eq(c), "disk-loaded artifact diverged");
    }
}

#[test]
fn truncated_cache_file_is_a_clean_miss() {
    let dir = scratch_dir("truncate");
    let src = classifier(0, CLASSIFIER_RULES);
    let cold = Compiler::new(cfg(Some(&dir)))
        .compile_output(&src)
        .expect("compiles");

    let files = cache_files(&dir);
    assert_eq!(files.len(), 1);
    let bytes = std::fs::read(&files[0]).expect("read entry");
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).expect("truncate entry");

    let session = Compiler::new(cfg(Some(&dir)));
    let rebuilt = session
        .compile_output(&src)
        .expect("compiles despite corruption");
    let s = session.cache_stats();
    assert_eq!(s.disk_rejects, 1, "the torn entry is a reject, not a hit");
    assert_eq!(s.disk_hits, 0);
    assert_eq!(s.alloc_misses, 1, "a clean full solve recovered");
    assert!(rebuilt.artifact_eq(&cold));
}

#[test]
fn bit_flipped_cache_file_is_a_clean_miss() {
    let dir = scratch_dir("bitflip");
    let src = classifier(1, CLASSIFIER_RULES);
    let cold = Compiler::new(cfg(Some(&dir)))
        .compile_output(&src)
        .expect("compiles");

    let files = cache_files(&dir);
    let mut bytes = std::fs::read(&files[0]).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&files[0], &bytes).expect("rewrite entry");

    let session = Compiler::new(cfg(Some(&dir)));
    let rebuilt = session
        .compile_output(&src)
        .expect("compiles despite corruption");
    let s = session.cache_stats();
    assert_eq!(s.disk_rejects, 1);
    assert_eq!(s.disk_hits, 0);
    assert!(rebuilt.artifact_eq(&cold));
}

#[test]
fn garbage_cache_file_is_a_clean_miss() {
    let dir = scratch_dir("garbage");
    let src = classifier(2, CLASSIFIER_RULES);
    let cold = Compiler::new(cfg(Some(&dir)))
        .compile_output(&src)
        .expect("compiles");

    let files = cache_files(&dir);
    std::fs::write(&files[0], b"definitely not a cache entry").expect("overwrite entry");

    let session = Compiler::new(cfg(Some(&dir)));
    let rebuilt = session
        .compile_output(&src)
        .expect("compiles despite corruption");
    assert_eq!(session.cache_stats().disk_rejects, 1);
    assert!(rebuilt.artifact_eq(&cold));
}

#[test]
fn server_restart_warms_from_disk() {
    use nova_server::{CompileRequest, Server, ServerConfig};
    let dir = scratch_dir("server");
    let requests = || -> Vec<CompileRequest> {
        (0..3)
            .map(|i| CompileRequest::new(i as u64, classifier(0, 2 + i)))
            .collect()
    };
    let server = |workers: usize| {
        Server::new(ServerConfig {
            workers,
            compile: cfg(Some(&dir)),
            ..ServerConfig::default()
        })
    };

    let first = server(1);
    let cold = first.submit_batch(requests());
    drop(first);

    // The replacement may even be wider: disk entries are shared state,
    // not per-worker, and the batch still warms entirely from disk.
    let second = server(2);
    let warm = second.submit_batch(requests());
    let s = second.cache_stats();
    assert_eq!(s.disk_hits, 3);
    assert_eq!(s.alloc_misses, 0);
    for (w, c) in warm.iter().zip(&cold) {
        let (w, c) = (w.result.as_ref().unwrap(), c.result.as_ref().unwrap());
        assert!(w.artifact_eq(c));
    }
}

/// A recipe for the next source revision in an edit stream (the
/// session-cache proptest's shape, minus comment edits, which never
/// reach the allocator or the disk).
#[derive(Debug, Clone)]
enum Edit {
    /// Variant `variant` of the canonical four-rule classifier.
    Constants { variant: u8 },
    /// A classifier with `rules` rules instead of the usual four.
    Structure { variant: u8, rules: u8 },
}

fn source_of(edit: &Edit) -> String {
    match edit {
        Edit::Constants { variant } => classifier(u64::from(*variant), CLASSIFIER_RULES),
        Edit::Structure { variant, rules } => classifier(u64::from(*variant), usize::from(*rules)),
    }
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0u8..3).prop_map(|variant| Edit::Constants { variant }),
        (0u8..2, 2u8..4).prop_map(|(variant, rules)| Edit::Structure { variant, rules }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash-restart equivalence: compile a random prefix of a random
    /// edit stream into a persistence directory, "crash" (drop the
    /// session), optionally tear one cache file in half (a mid-write
    /// crash), restart a fresh session over the directory, and replay
    /// the whole stream. Every artifact must be bit-identical to a cold
    /// compile of the same revision, and corruption must surface as
    /// rejects, never as failures or stale artifacts.
    #[test]
    fn restart_after_any_crash_prefix_matches_uninterrupted(
        edits in proptest::collection::vec(edit_strategy(), 1..6),
        cut in 0usize..6,
        tear in any::<bool>(),
    ) {
        let dir = scratch_dir("proptest");
        let cut = cut % (edits.len() + 1);

        let first = Compiler::new(cfg(Some(&dir)));
        for edit in &edits[..cut] {
            first.compile_output(&source_of(edit)).expect("compiles");
        }
        drop(first);

        let files = cache_files(&dir);
        if tear {
            if let Some(path) = files.first() {
                let bytes = std::fs::read(path).expect("read entry");
                std::fs::write(path, &bytes[..bytes.len() / 2]).expect("tear entry");
            }
        }

        let restarted = Compiler::new(cfg(Some(&dir)));
        for edit in &edits {
            let src = source_of(edit);
            let warm = restarted
                .compile_output(&src)
                .expect("restart compiles every revision");
            let cold = Compiler::new(cfg(None))
                .compile_output(&src)
                .expect("cold compiles");
            prop_assert!(
                warm.artifact_eq(&cold),
                "restart artifact diverged from cold after {:?} (cut {}, tear {})",
                edit, cut, tear
            );
        }
        let s = restarted.cache_stats();
        prop_assert_eq!(s.refinish_fallbacks, 0);
        // Every disk consultation resolved one way; a torn file may only
        // ever show up in the reject column.
        if !tear {
            prop_assert_eq!(s.disk_rejects, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
