//! Bounded-cache contracts: eviction changes *retention*, never
//! *content*. A session squeezed to a one-entry budget recompiles
//! evicted revisions from scratch and lands bit-identical artifacts; the
//! evict counters move deterministically and stay at exactly zero for
//! the unbounded default.

use nova::{CacheBudget, CacheStats, CompileConfig, Compiler};
use workloads::{classifier_rules, classifier_source, CLASSIFIER_RULES};

/// Seed for the generated rule sets.
const STREAM_SEED: u64 = 0x0E51_C7ED;

fn classifier(variant: u64, rules: usize) -> String {
    classifier_source(&classifier_rules(STREAM_SEED, variant, rules))
}

fn cfg(budget: Option<CacheBudget>) -> CompileConfig {
    let b = CompileConfig::builder().solver_threads(1);
    match budget {
        Some(budget) => b.cache_budget(budget).build(),
        None => b.build(),
    }
}

/// Compile `sources` through one session; return its artifacts + stats.
fn run_stream(
    config: &CompileConfig,
    sources: &[String],
) -> (Vec<nova::CompileOutput>, CacheStats) {
    let session = Compiler::new(config.clone());
    let outs = sources
        .iter()
        .map(|s| session.compile_output(s).expect("compiles"))
        .collect();
    (outs, session.cache_stats())
}

#[test]
fn unbounded_default_never_evicts() {
    let stream: Vec<String> = (2..=5).map(|n| classifier(0, n)).collect();
    let (_, s) = run_stream(&cfg(None), &stream);
    assert_eq!(s.evict_count, 0);
    assert_eq!(s.evict_bytes, 0);
}

#[test]
fn one_entry_budget_recompiles_evicted_revisions_bit_identically() {
    // A, B, A with structurally distinct A and B: the second A finds
    // every one of its entries evicted and walks the full cold path
    // again — and must land exactly the first A's artifact.
    let a = classifier(0, CLASSIFIER_RULES);
    let b = classifier(0, 2);
    let stream = [a.clone(), b, a];

    let (unbounded, su) = run_stream(&cfg(None), &stream);
    assert_eq!(su.alloc_misses, 2, "unbounded: A's repeat is an image hit");
    assert_eq!(su.output_hits, 1);

    let (bounded, sb) = run_stream(&cfg(Some(CacheBudget::entries(1))), &stream);
    assert_eq!(sb.alloc_misses, 3, "bounded: A was evicted, solved again");
    assert_eq!(sb.alloc_hits, 0);
    assert_eq!(sb.output_hits, 0);
    assert_eq!(sb.output_misses, 3);
    assert!(sb.evict_count > 0);
    assert!(sb.evict_bytes > 0);
    for (e, u) in bounded.iter().zip(&unbounded) {
        assert!(e.artifact_eq(u), "eviction changed an artifact");
    }
}

#[test]
fn evict_counter_algebra_is_exact_and_deterministic() {
    // At a one-entry budget every cold structural compile after the
    // first re-inserts the same set of phase entries, evicting its
    // predecessor's: the A,B,A stream evicts exactly twice what the A,B
    // prefix does, and identical runs agree on every counter.
    let a = classifier(0, CLASSIFIER_RULES);
    let b = classifier(0, 2);
    let budget = cfg(Some(CacheBudget::entries(1)));

    let (_, ab) = run_stream(&budget, &[a.clone(), b.clone()]);
    let (_, aba) = run_stream(&budget, &[a.clone(), b.clone(), a.clone()]);
    assert!(ab.evict_count > 0);
    assert_eq!(aba.evict_count, 2 * ab.evict_count);

    let (_, again) = run_stream(&budget, &[a, b.clone(), b]);
    // The verbatim B repeat is an eviction-free no-op even when bounded:
    // nothing is recomputed, so nothing is inserted or displaced.
    assert_eq!(again.evict_count, ab.evict_count);
    assert_eq!(again.output_hits, 1);

    let (_, rerun) = run_stream(
        &budget,
        &[classifier(0, CLASSIFIER_RULES), classifier(0, 2)],
    );
    assert_eq!(rerun, ab, "identical bounded runs agree on every counter");
}

#[test]
fn eviction_in_other_phases_keeps_constant_variant_solve_free() {
    // v0 and v1 share the immediate-masked allocation key. A one-entry
    // budget churns the frontend/CPS/isel caches between them, but the
    // allocation entry is only displaced by another *allocation* insert
    // — so v1 still refinishes without a solve.
    let stream = [
        classifier(0, CLASSIFIER_RULES),
        classifier(1, CLASSIFIER_RULES),
    ];
    let (outs, s) = run_stream(&cfg(Some(CacheBudget::entries(1))), &stream);
    assert_eq!(s.alloc_misses, 1);
    assert_eq!(s.alloc_hits, 1, "constant edit stayed solve-free");
    assert_eq!(s.refinish_fallbacks, 0);
    let cold = Compiler::new(cfg(None))
        .compile_output(&stream[1])
        .expect("compiles");
    assert!(outs[1].artifact_eq(&cold));
}

#[test]
fn byte_budget_bounds_like_entry_budget() {
    // One byte of budget can hold nothing — but the insert-exempt rule
    // means every fresh entry still lands, displacing the rest. The
    // stream behaves exactly like the one-entry budget.
    let a = classifier(0, CLASSIFIER_RULES);
    let b = classifier(0, 3);
    let stream = [a.clone(), b, a];
    let (bounded, s) = run_stream(&cfg(Some(CacheBudget::bytes(1))), &stream);
    assert_eq!(s.alloc_misses, 3);
    assert!(s.evict_count > 0);
    let (unbounded, _) = run_stream(&cfg(None), &stream);
    for (e, u) in bounded.iter().zip(&unbounded) {
        assert!(e.artifact_eq(u));
    }
}
