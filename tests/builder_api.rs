//! The `CompileConfig::builder()` surface: solver and simulation knobs
//! land where the pipeline reads them, and environment overrides resolve
//! exactly once at `build()`.

use nova::{CompileConfig, KernelKind};
use std::time::Duration;

#[test]
fn builder_sets_solver_and_sim_knobs() {
    let cfg = CompileConfig::builder()
        .solver_threads(3)
        .solver_kernel(KernelKind::Dense)
        .solver_deadline(Some(Duration::from_secs(7)))
        .solver_gap(0.25)
        .engines(2)
        .contexts(8)
        .max_cycles(12_345)
        .skip_opt(true)
        .build();
    assert_eq!(cfg.alloc.solver.threads, 3);
    assert_eq!(cfg.alloc.solver.kernel, Some(KernelKind::Dense));
    assert_eq!(cfg.alloc.solver.time_limit, Some(Duration::from_secs(7)));
    assert_eq!(cfg.alloc.solver.relative_gap, 0.25);
    assert!(cfg.skip_opt);
    assert_eq!(cfg.sim.engines, 2);
    assert_eq!(cfg.sim.contexts, 8);
    assert_eq!(cfg.sim.max_cycles, 12_345);

    let sim = cfg.sim.sim_config();
    assert_eq!(sim.threads, 8);
    assert_eq!(sim.max_cycles, 12_345);
    let chip = cfg.sim.chip_config();
    assert_eq!(chip.engines, 2);
    assert_eq!(chip.contexts, 8);
    assert_eq!(chip.max_cycles, 12_345);
}

#[test]
fn build_resolves_every_automatic_knob() {
    // After build() nothing is left "ask the environment later": the
    // kernel is always pinned to a concrete value, and the solver's own
    // effective_* accessors (which no longer read the environment) agree
    // with what the builder resolved.
    let cfg = CompileConfig::builder().build();
    assert!(
        cfg.alloc.solver.kernel.is_some(),
        "kernel pinned at build time"
    );
    assert_eq!(
        cfg.alloc.solver.effective_kernel(),
        cfg.alloc.solver.kernel.unwrap(),
    );
    assert_eq!(cfg.sim.engines, 6, "IXP1200 chip shape");
    assert_eq!(cfg.sim.contexts, 4);
}

#[test]
fn env_overrides_resolve_once_at_build_time() {
    // Sequential set/build/remove inside one test: the other tests in
    // this binary never rely on these variables being unset.
    std::env::set_var("NOVA_ILP_THREADS", "2");
    std::env::set_var("NOVA_ILP_KERNEL", "dense");
    let cfg = CompileConfig::builder().build();
    std::env::remove_var("NOVA_ILP_THREADS");
    std::env::remove_var("NOVA_ILP_KERNEL");
    assert_eq!(cfg.alloc.solver.threads, 2, "NOVA_ILP_THREADS honored");
    assert_eq!(
        cfg.alloc.solver.kernel,
        Some(KernelKind::Dense),
        "NOVA_ILP_KERNEL honored"
    );
    // The environment is gone, but the resolved config still carries the
    // values: a later solve cannot observe the change.
    assert_eq!(cfg.alloc.solver.effective_threads(), 2);
    assert_eq!(cfg.alloc.solver.effective_kernel(), KernelKind::Dense);

    // Explicit builder calls beat the environment.
    std::env::set_var("NOVA_ILP_THREADS", "2");
    let cfg = CompileConfig::builder()
        .solver_threads(5)
        .solver_kernel(KernelKind::Sparse)
        .build();
    std::env::remove_var("NOVA_ILP_THREADS");
    assert_eq!(cfg.alloc.solver.threads, 5);
    assert_eq!(cfg.alloc.solver.kernel, Some(KernelKind::Sparse));
}

#[test]
fn compile_works_through_builder_config() {
    let cfg = CompileConfig::builder().solver_threads(1).build();
    let out = nova::compile(
        "fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a); 0 }",
        &cfg,
    )
    .expect("compiles")
    .artifact;
    assert!(ixp_machine::validate(&out.prog).is_empty());
}
