//! Property-based tests across the stack.
//!
//! The heavyweight one is the differential compiler test: random Nova
//! programs (arithmetic, aggregates, branches, loops, layouts) are
//! compiled to machine code and executed on the cycle simulator; the
//! architectural result must equal the CPS reference interpreter's on the
//! same initial memory. Every shrunken counterexample here is a real
//! compiler bug.

use ixp_sim::{simulate, SimConfig, SimMemory};
use nova::{CompileConfig, Compiler};
use nova_cps::eval::{run, Machine};
use proptest::prelude::*;

// ---------- layout extract/deposit ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn layout_extract_deposit_roundtrip(
        offset in 0u32..96,
        width in 1u32..=32,
        value in any::<u32>(),
        backing in any::<[u32; 4]>(),
    ) {
        use nova_frontend::layout::{deposit, extract, mask};
        let mut words = backing.to_vec();
        let v = value & mask(width);
        deposit(&mut words, offset, width, v);
        prop_assert_eq!(extract(&words, offset, width), v);
        // Bits outside the field are untouched.
        let mut reference = backing.to_vec();
        deposit(&mut reference, offset, width, v);
        for bit in 0..128u32 {
            let w = (bit / 32) as usize;
            let b = 31 - (bit % 32);
            let inside = bit >= offset && bit < offset + width;
            if !inside {
                prop_assert_eq!(
                    (words[w] >> b) & 1,
                    (backing[w] >> b) & 1,
                    "bit {} changed", bit
                );
            }
        }
    }
}

// ---------- random straight-line program compilation ----------

/// A tiny generator of well-formed Nova statement sequences over a fixed
/// set of variables seeded from SRAM.
#[derive(Debug, Clone)]
enum Op {
    Arith(u8, u8, u8, u8), // dst, op, a, b
    Store2(u8, u8, u16),   // two vars to sram base
    Load(u8, u16),         // var <- sram[base]
    IfSwap(u8, u8, u8),    // if (a > b) x = a; else x = b;
}

fn program_of(ops: &[Op]) -> String {
    let mut body = String::new();
    body.push_str("fun main() {\n");
    body.push_str("    let (v0, v1, v2, v3) = sram(0);\n");
    for op in ops {
        match op {
            Op::Arith(d, o, a, b) => {
                let sym = ["+", "-", "^", "&", "|"][(*o % 5) as usize];
                body.push_str(&format!(
                    "    v{} = v{} {} v{};\n",
                    d % 4,
                    a % 4,
                    sym,
                    b % 4
                ));
            }
            Op::Store2(a, b, base) => {
                body.push_str(&format!(
                    "    sram({}) <- (v{}, v{});\n",
                    64 + (base % 128),
                    a % 4,
                    b % 4
                ));
            }
            Op::Load(d, base) => {
                body.push_str(&format!(
                    "    let (t{}_{}) = sram({});\n    v{} = t{}_{};\n",
                    d % 4,
                    base,
                    8 + base % 16,
                    d % 4,
                    d % 4,
                    base
                ));
            }
            Op::IfSwap(x, a, b) => {
                body.push_str(&format!(
                    "    if (v{} > v{}) {{ v{} = v{}; }} else {{ v{} = v{}; }}\n",
                    a % 4,
                    b % 4,
                    x % 4,
                    a % 4,
                    x % 4,
                    b % 4
                ));
            }
        }
    }
    body.push_str("    sram(48) <- (v0, v1, v2, v3);\n    0\n}\n");
    body
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(d, o, a, b)| Op::Arith(d, o, a, b)),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(a, b, s)| Op::Store2(a, b, s)),
        (any::<u8>(), any::<u16>()).prop_map(|(d, s)| Op::Load(d, s % 16)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(x, a, b)| Op::IfSwap(x, a, b)),
    ]
}

proptest! {
    // Each case compiles a program through the full pipeline (including
    // the ILP solve), so keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    #[cfg_attr(debug_assertions, ignore = "compiles 48 programs through the ILP; run with --release")]
    fn compiled_code_matches_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..10),
        seed in any::<[u32; 4]>(),
    ) {
        let src = program_of(&ops);
        let mut cfg = CompileConfig::default();
        cfg.alloc.solver.time_limit = Some(std::time::Duration::from_secs(30));
        let out = Compiler::new(cfg)
            .compile_output(&src)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        prop_assert!(ixp_machine::validate(&out.prog).is_empty());

        let mut oracle = Machine::with_sizes(512, 64, 64);
        oracle.sram[0..4].copy_from_slice(&seed);
        run(&out.cps, &mut oracle, 10_000_000).expect("oracle runs");

        let mut sim = SimMemory::with_sizes(512, 64, 64);
        sim.sram[0..4].copy_from_slice(&seed);
        let res = simulate(
            &out.prog,
            &mut sim,
            &SimConfig { threads: 1, max_cycles: 100_000_000, ..Default::default() },
        )
        .expect("sim runs");
        prop_assert_eq!(res.stop, ixp_sim::StopReason::AllHalted);
        prop_assert_eq!(&oracle.sram, &sim.sram, "program:\n{}\ncode:\n{}", src, out.prog);
    }
}

// ---------- optimizer behaviour preservation on random programs ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_oracle_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..14),
        seed in any::<[u32; 4]>(),
    ) {
        let src = program_of(&ops);
        let program = nova_frontend::parse(&src).unwrap();
        let info = nova_frontend::check(&program).unwrap();
        let unopt = nova_cps::convert(&program, &info).unwrap();
        let mut opt = nova_cps::convert(&program, &info).unwrap();
        nova_cps::optimize(&mut opt, &Default::default());

        let mut m1 = Machine::with_sizes(512, 64, 64);
        m1.sram[0..4].copy_from_slice(&seed);
        run(&unopt, &mut m1, 10_000_000).unwrap();
        let mut m2 = Machine::with_sizes(512, 64, 64);
        m2.sram[0..4].copy_from_slice(&seed);
        run(&opt, &mut m2, 10_000_000).unwrap();
        prop_assert_eq!(&m1.sram, &m2.sram, "program:\n{}", src);
    }
}

// ---------- simulator determinism across thread counts ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn threaded_simulation_is_architecturally_deterministic(
        payload_words in 2u32..8,
        count in 1usize..6,
    ) {
        // A per-packet transformation is order-independent across packets:
        // any thread count must produce the same final SDRAM.
        let src = r#"fun main() {
            let (len, addr) = rx_packet();
            let (a, b) = sdram(addr);
            sdram(addr) <- (a ^ 0xAAAA, b + 1);
            tx_packet(addr, len);
            main()
        }"#;
        let out = Compiler::new(CompileConfig::default())
            .compile_output(src)
            .unwrap();
        let build = || {
            let mut mem = SimMemory::with_sizes(64, 4096, 64);
            for p in 0..count as u32 {
                let base = p * (payload_words + 2);
                for w in 0..payload_words {
                    mem.sdram[(base + w) as usize] = p * 1000 + w;
                }
                mem.rx_queue.push_back((payload_words * 4, base));
            }
            mem
        };
        let mut one = build();
        simulate(&out.prog, &mut one, &SimConfig { threads: 1, max_cycles: 1 << 30, ..Default::default() }).unwrap();
        let mut four = build();
        simulate(&out.prog, &mut four, &SimConfig { threads: 4, max_cycles: 1 << 30, ..Default::default() }).unwrap();
        prop_assert_eq!(&one.sdram, &four.sdram);
        prop_assert_eq!(one.tx_log.len(), four.tx_log.len());
    }
}
