//! Property-based contracts of the staged-rollout controller.
//!
//! The controller's promise is that live updates are *safe to automate*:
//! whatever swap-path faults fire, a rollout always converges to a
//! definite verdict (committed everywhere, or halted at one stage with
//! the rack back on the old image), never loses a packet from its
//! accounting, stays identical to an undisturbed rack when the update
//! never fires, and reports bit-identical results at any host thread
//! count. Each property here drives random fault schedules and swap
//! points through the real multi-chip simulation.

use bench::{traffic_spec, traffic_topology, write_nat_packet};
use ixp_machine::{PhysReg, Program};
use ixp_sim::{
    shard_of, simulate_topology, staged_rollout, FlowPacket, RollbackReason, RolloutConfig,
    RolloutFaults, RolloutOutcome, RolloutReport, SimMode, StageOutcome,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Chips in the property rack: the smallest topology where "one stage
/// at a time" and "halt at stage k" are distinguishable.
const CHIPS: usize = 2;
/// Packets in the shared trace (small enough for many cases).
const PACKETS: usize = 3_000;

/// The old/new classifier images, compiled once for every case.
fn images() -> &'static (Program<PhysReg>, Program<PhysReg>) {
    static IMAGES: OnceLock<(Program<PhysReg>, Program<PhysReg>)> = OnceLock::new();
    IMAGES.get_or_init(|| {
        let (old, new, _, _) = bench::rollout::classifier_images();
        (old.prog, new.prog)
    })
}

/// The shared traffic trace, generated once.
fn trace() -> &'static [FlowPacket] {
    static TRACE: OnceLock<Vec<FlowPacket>> = OnceLock::new();
    TRACE.get_or_init(|| traffic_spec(PACKETS).generate())
}

fn config(swap_after: u64, observe: u64, faults: RolloutFaults) -> RolloutConfig {
    RolloutConfig {
        topology: traffic_topology(CHIPS, SimMode::FastPath),
        swap_after,
        observe_packets: observe,
        faults,
        ..RolloutConfig::default()
    }
}

fn run(cfg: &RolloutConfig) -> RolloutReport {
    let (old, new) = images();
    staged_rollout(old, new, cfg, trace(), write_nat_packet).expect("rollout simulation runs")
}

/// A random fault schedule over the rack's stages.
fn faults_strategy() -> impl Strategy<Value = RolloutFaults> {
    let stage_set = proptest::collection::vec(0usize..CHIPS, 0..=CHIPS);
    (stage_set.clone(), stage_set).prop_map(|(corrupt, wedge)| RolloutFaults {
        corrupt_stages: corrupt,
        wedge_stages: wedge,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any fault schedule × any swap point converges to a definite
    /// verdict with coherent accounting: committed rollouts ran every
    /// stage, halted rollouts stopped exactly at the failed stage, and
    /// every stage conserves packets (`offered = delivered + dropped +
    /// aborted_in_flight`).
    #[test]
    fn any_fault_schedule_converges_with_conservation(
        faults in faults_strategy(),
        swap_after in prop_oneof![Just(200u64), Just(700), Just(1100)],
        observe in prop_oneof![Just(300u64), Just(800)],
    ) {
        let report = run(&config(swap_after, observe, faults.clone()));
        match report.outcome {
            RolloutOutcome::Committed => {
                prop_assert_eq!(report.stages.len(), CHIPS);
                for s in &report.stages {
                    prop_assert_eq!(s.outcome, StageOutcome::Committed);
                }
            }
            RolloutOutcome::RolledBack { stage, reason } => {
                prop_assert!(stage < CHIPS);
                prop_assert_eq!(report.stages.len(), stage + 1);
                let last = report.stages.last().unwrap();
                prop_assert_eq!(last.outcome, StageOutcome::RolledBack(reason));
                // A checksum rejection never applies the image, so the
                // swap must not have fired; a watchdog revert must have.
                match reason {
                    RollbackReason::ChecksumRejected => {
                        prop_assert!(last.swap.swap_cycle.is_none());
                        prop_assert_eq!(last.rollback_cycles, Some(0));
                    }
                    RollbackReason::WatchdogFired => {
                        prop_assert!(last.swap.swap_cycle.is_some());
                    }
                    _ => {}
                }
            }
        }
        for s in &report.stages {
            let d = &s.disruption;
            prop_assert_eq!(
                d.offered,
                d.delivered + d.dropped + d.aborted_in_flight,
                "stage {} leaks packets from its accounting", s.chip
            );
            prop_assert!(s.chip < CHIPS);
        }
        // An injected fault on a reached stage can never commit rack-wide.
        let reached = |stage: usize| {
            report.stages.get(stage).is_some_and(|s| {
                s.swap.swap_cycle.is_some()
                    || matches!(
                        s.outcome,
                        StageOutcome::RolledBack(RollbackReason::ChecksumRejected)
                    )
            })
        };
        let faulted = (0..CHIPS).any(|c| {
            (faults.corrupt_stages.contains(&c) || faults.wedge_stages.contains(&c)) && reached(c)
        });
        if faulted {
            prop_assert!(matches!(report.outcome, RolloutOutcome::RolledBack { .. }));
        }
    }

    /// A rollout whose swap threshold lies beyond the trace changes
    /// nothing: every stage commits trivially and each chip's traffic is
    /// identical to an undisturbed `simulate_topology` run of the old
    /// image — the controller adds zero disturbance of its own.
    #[test]
    fn unreached_swap_is_traffic_identical_to_no_rollout(observe in prop_oneof![Just(100u64), Just(500)]) {
        let cfg = config(u64::MAX, observe, RolloutFaults::default());
        let report = run(&cfg);
        prop_assert_eq!(report.outcome, RolloutOutcome::Committed);
        prop_assert_eq!(report.min_healthy_chips, CHIPS);

        let (old, _) = images();
        let plain = simulate_topology(old, &cfg.topology, trace(), write_nat_packet)
            .expect("plain topology runs");
        for s in &report.stages {
            let shard = &plain.chips[s.chip];
            prop_assert!(s.swap.swap_cycle.is_none());
            prop_assert_eq!(s.disruption.offered, shard.offered);
            prop_assert_eq!(s.disruption.delivered, shard.delivered);
            prop_assert_eq!(s.disruption.dropped, shard.dropped);
            prop_assert_eq!(s.disruption.aborted_in_flight, 0);
            prop_assert_eq!(s.disruption.disrupted_flows, 0);
        }
    }

    /// Rollout reports are a pure function of (images, config, trace):
    /// the host thread count must never leak into a single bit.
    #[test]
    fn reports_are_bit_identical_across_host_threads(
        faults in faults_strategy(),
        swap_after in prop_oneof![Just(400u64), Just(900)],
    ) {
        let base = config(swap_after, 500, faults);
        let reference = run(&base);
        for threads in [2usize, 4] {
            let mut cfg = base.clone();
            cfg.topology.chip.host_threads = threads;
            prop_assert_eq!(
                &run(&cfg), &reference,
                "report diverged at {} host threads", threads
            );
        }
    }
}

/// The flow-hash balancer and the controller agree on stage ownership:
/// every packet a stage accounts for belongs to that stage's shard.
#[test]
fn stage_accounting_matches_the_balancer_shards() {
    let report = run(&config(500, 500, RolloutFaults::default()));
    for s in &report.stages {
        let expected: u64 = trace()
            .iter()
            .filter(|p| shard_of(p.flow, CHIPS) == s.chip)
            .count() as u64;
        assert_eq!(
            s.disruption.offered, expected,
            "stage {} accounts for packets outside its shard",
            s.chip
        );
    }
}
