//! Graceful degradation through the full `nova` pipeline: with the
//! fallback ladder, compilation terminates with a verifier-clean,
//! validated allocation at *any* deadline — including zero — for every
//! checked-in workload; the strict `Fail` policy reproduces the
//! historical budget-exhaustion error; and the default (generous-budget)
//! configuration still reports an exact, stage-0 allocation.

use nova::{CompileConfig, CompileError, Compiler, FallbackPolicy, Phase};
use proptest::prelude::*;
use std::time::Duration;
use workloads::{AES_NOVA, KASUMI_NOVA, NAT_NOVA};

const WORKLOADS: [(&str, &str); 3] = [
    ("aes", AES_NOVA),
    ("kasumi", KASUMI_NOVA),
    ("nat", NAT_NOVA),
];

/// Small programs that exercise distinct allocation shapes (aggregates,
/// reuse across stores, a loop) without benchmark-sized solve times —
/// the proptest sweep compiles each many times.
const SAMPLES: [&str; 3] = [
    "fun main() { let (x, y) = sram(0); sram(10) <- (x + y); 0 }",
    r#"fun main() {
        let (u, v, x, w) = sram(0);
        sram(100) <- (u, v, x, w);
        sram(200) <- (w, x, u, v);
        0
    }"#,
    r#"fun main() {
        let i = 0;
        let acc = 0;
        while (i < 10) { acc = acc + i; i = i + 1; }
        sram(0) <- (acc);
        0
    }"#,
];

fn config(deadline: Duration, policy: FallbackPolicy) -> CompileConfig {
    CompileConfig::builder()
        .solver_deadline(Some(deadline))
        .fallback_policy(policy)
        .build()
}

#[test]
fn every_workload_compiles_at_zero_deadline_under_ladder() {
    for (name, src) in WORKLOADS {
        let out = Compiler::new(config(Duration::ZERO, FallbackPolicy::Ladder))
            .compile_output(src)
            .unwrap_or_else(|e| panic!("{name}: ladder must not fail: {e}"));
        // In debug builds (this test) the backend verifier has already
        // checked the allocation; the machine validator must agree too.
        assert!(
            ixp_machine::validate(&out.prog).is_empty(),
            "{name}: degraded code must validate"
        );
        assert!(
            out.alloc_quality.stage >= 1,
            "{name}: a zero budget cannot prove stage 0"
        );
        assert!(out.alloc_quality.stage <= 4, "{name}");
        assert!(!out.prog.blocks.is_empty(), "{name}: runnable code");
    }
}

#[test]
fn default_config_reports_exact_stage_zero() {
    // Generous budget: the ladder never engages, and the report says so.
    let out = Compiler::new(CompileConfig::default())
        .compile_output(SAMPLES[1])
        .expect("compiles");
    assert_eq!(out.alloc_quality.stage, 0);
    assert!(out.alloc_quality.proven_optimal);
    assert_eq!(out.alloc_quality.gap, 0.0);
    assert_eq!(out.alloc_quality.spills, out.alloc_stats.spills);
}

#[test]
fn fail_policy_reproduces_the_budget_error_bit_for_bit() {
    let strict = || -> CompileError {
        let Err(e) =
            Compiler::new(config(Duration::ZERO, FallbackPolicy::Fail)).compile_output(SAMPLES[0])
        else {
            panic!("zero budget must fail under Fail")
        };
        e
    };
    let e = strict();
    assert_eq!(e.phase, Phase::Alloc);
    assert_eq!(e.code, "E-ALLOC");
    assert!(e.span.is_none(), "backend phases carry no span");
    assert!(
        e.message
            .contains("budget exhausted before an integer solution was found"),
        "message: {}",
        e.message
    );
    // Bit-for-bit: the strict error is deterministic across runs.
    let again = strict();
    assert_eq!(e.phase, again.phase);
    assert_eq!(e.code, again.code);
    assert_eq!(e.message, again.message);
}

/// Degraded (greedy) code must be functionally equivalent to exact code
/// even when many hardware contexts run the same image: spill slots are
/// addressed per-context (a `CSR_CTX`-scaled base computed in the entry
/// prologue), so contexts must not clobber each other's scratch regions.
/// Guards the historical bug where absolute spill addresses livelocked
/// multi-context runs.
#[test]
fn degraded_code_is_context_safe() {
    use bench::Benchmark;
    use ixp_sim::{simulate_chip, ChipConfig};

    let b = Benchmark::Nat;
    let exact = bench::compile(b, &CompileConfig::default());
    let greedy = bench::compile(b, &config(Duration::ZERO, FallbackPolicy::Greedy));
    assert_eq!(greedy.alloc_quality.stage, 4);
    assert!(greedy.alloc_quality.spills > 0, "greedy NAT must spill");

    let mut sdrams = Vec::new();
    for out in [&exact, &greedy] {
        for (engines, contexts) in [(1, 1), (1, 4), (2, 4)] {
            let mut mem = bench::setup_memory(b, 4, 16);
            let cfg = ChipConfig {
                engines,
                contexts,
                max_cycles: 50_000_000,
                ..ChipConfig::default()
            };
            let res = simulate_chip(&out.prog, &mut mem, &cfg).expect("chip sim");
            assert_eq!(
                res.stop,
                ixp_sim::StopReason::AllHalted,
                "{engines}e x {contexts}c must complete"
            );
            assert_eq!(
                res.packets, 4,
                "{engines}e x {contexts}c must tx all packets"
            );
            sdrams.push(mem.sdram);
        }
    }
    for (i, s) in sdrams.iter().enumerate().skip(1) {
        assert_eq!(s, &sdrams[0], "run {i} diverged from exact 1e x 1c sdram");
    }
}

proptest! {
    // Each case is a full debug-mode compile; keep the sweep small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The never-fail contract: any near-zero deadline with `Ladder`
    /// yields a validated allocation (debug builds also run the backend
    /// verifier inside the compile pipeline).
    #[test]
    fn ladder_always_yields_a_verified_allocation(
        deadline_us in 0u64..2_000,
        which in 0usize..SAMPLES.len(),
    ) {
        let cfg = config(Duration::from_micros(deadline_us), FallbackPolicy::Ladder);
        let out = Compiler::new(cfg)
            .compile_output(SAMPLES[which])
            .map_err(|e| TestCaseError::fail(format!("ladder failed: {e}")))?;
        prop_assert!(ixp_machine::validate(&out.prog).is_empty());
        prop_assert!(out.alloc_quality.stage <= 4);
    }
}
