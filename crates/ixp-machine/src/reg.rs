//! Physical and virtual register names.

use crate::bank::Bank;
use std::fmt;

/// A physical register: a bank plus a register number within the bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg {
    /// The bank this register belongs to.
    pub bank: Bank,
    /// Register number within the bank (`0..bank.capacity()`).
    pub num: u8,
}

impl PhysReg {
    /// Construct a physical register.
    ///
    /// # Panics
    ///
    /// Panics if `num` exceeds the bank capacity.
    pub fn new(bank: Bank, num: u8) -> Self {
        assert!(
            (num as usize) < bank.capacity(),
            "register {bank}{num} out of range (capacity {})",
            bank.capacity()
        );
        PhysReg { bank, num }
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.bank, self.num)
    }
}

/// A virtual register (temporary), used before allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Temp(pub u32);

impl Temp {
    /// The temporary's numeric id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PhysReg::new(Bank::A, 3).to_string(), "a3");
        assert_eq!(PhysReg::new(Bank::Ld, 7).to_string(), "ld7");
        assert_eq!(Temp(42).to_string(), "t42");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        PhysReg::new(Bank::L, 8);
    }
}
