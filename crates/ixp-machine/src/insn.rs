//! The IXP1200 micro-engine instruction set, generic over the register type.
//!
//! The same [`Instr`] enum serves two phases: the back end builds flowgraphs
//! of `Instr<Temp>` (virtual registers) and the allocator rewrites them to
//! `Instr<PhysReg>` which the validator ([`crate::program`]) and simulator
//! consume. Only the opcodes the Nova compiler needs are modeled; they cover
//! the ALU, immediates, aggregate memory transactions against SRAM, SDRAM
//! and scratch, the hash unit, atomic test-and-set, CSR access, and the
//! packet-I/O intrinsics that the paper's receive/transmit scheduler
//! synchronization boils down to.

use std::fmt;

/// ALU operations (two-operand; the IXP `alu` and `alu_shf` forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `dst = a + b`
    Add,
    /// `dst = a - b`
    Sub,
    /// `dst = a & b`
    And,
    /// `dst = a & !b` (the IXP's `~AND`)
    AndNot,
    /// `dst = a | b`
    Or,
    /// `dst = a ^ b`
    Xor,
    /// `dst = a << b` (b from register or 5-bit immediate)
    Shl,
    /// `dst = a >> b` (logical)
    Shr,
    /// `dst = b` (pass-through; used for moves and zero-extension tricks)
    B,
}

impl AluOp {
    /// Evaluate the operation on 32-bit words (the simulator's semantics).
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::AndNot => a & !b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => {
                if b >= 32 {
                    0
                } else {
                    a << b
                }
            }
            AluOp::Shr => {
                if b >= 32 {
                    0
                } else {
                    a >> b
                }
            }
            AluOp::B => b,
        }
    }

    /// Mnemonic used in listings.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::AndNot => "andn",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::B => "b",
        }
    }
}

/// The second ALU operand: a register, or a shift-amount immediate (the
/// only immediate form the `alu_shf` encoding supports directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluSrc<R> {
    /// Register operand.
    Reg(R),
    /// Small immediate (shift amounts; validated `< 32`).
    Imm(u32),
}

impl<R: fmt::Display> fmt::Display for AluSrc<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AluSrc::Reg(r) => write!(f, "{r}"),
            AluSrc::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// External memory spaces reachable from a micro-engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// External SRAM: word (4-byte) addressed, via the `L`/`S` banks.
    Sram,
    /// External SDRAM: quad-word (8-byte) aligned bursts, via `LD`/`SD`.
    Sdram,
    /// On-chip scratch: word addressed, via `L`/`S`, lower latency than SRAM.
    Scratch,
}

impl MemSpace {
    /// Lower-case name used in listings ("sram", "sdram", "scratch").
    pub fn name(self) -> &'static str {
        match self {
            MemSpace::Sram => "sram",
            MemSpace::Sdram => "sdram",
            MemSpace::Scratch => "scratch",
        }
    }

    /// Legal aggregate sizes (register counts) for one transaction.
    pub fn burst_ok(self, n: usize) -> bool {
        match self {
            // SRAM and scratch move 1..=8 words per instruction.
            MemSpace::Sram | MemSpace::Scratch => (1..=8).contains(&n),
            // SDRAM transactions are an even number of words (quad-words).
            MemSpace::Sdram => matches!(n, 2 | 4 | 6 | 8),
        }
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The context-number CSR: reading it yields the executing hardware
/// context's chip-global index (`engine * contexts_per_engine + context`;
/// the thread index on the single-engine simulator). It is context-local
/// state — reads resolve in one cycle without touching the shared CSR
/// bus — and writes to it are ignored. The register allocator's spill
/// code reads it to address a per-context spill region in scratch, so
/// the same program image runs on any number of contexts without the
/// contexts clobbering each other's slots.
pub const CSR_CTX: u32 = 0xFF;

/// Addressing: a base register plus a constant word offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Addr<R> {
    /// Absolute constant address (words).
    Imm(u32),
    /// Register plus constant offset (words).
    Reg(R, u32),
}

impl<R: fmt::Display> fmt::Display for Addr<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Imm(a) => write!(f, "[{a}]"),
            Addr::Reg(r, 0) => write!(f, "[{r}]"),
            Addr::Reg(r, o) => write!(f, "[{r}+{o}]"),
        }
    }
}

impl<R> Addr<R> {
    /// The base register, if any.
    pub fn base(&self) -> Option<&R> {
        match self {
            Addr::Imm(_) => None,
            Addr::Reg(r, _) => Some(r),
        }
    }

    /// Map the register type.
    pub fn map<S>(self, f: &mut impl FnMut(R) -> S) -> Addr<S> {
        match self {
            Addr::Imm(a) => Addr::Imm(a),
            Addr::Reg(r, o) => Addr::Reg(f(r), o),
        }
    }
}

/// One micro-engine instruction, generic over the register name type `R`
/// ([`crate::Temp`] before allocation, [`crate::PhysReg`] after).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr<R> {
    /// `dst = a op b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: R,
        /// First operand.
        a: R,
        /// Second operand (register or shift immediate).
        b: AluSrc<R>,
    },
    /// Load a 32-bit constant (`immed`; costs 2 cycles if the value needs
    /// both halves).
    Imm {
        /// Destination register.
        dst: R,
        /// Constant value.
        val: u32,
    },
    /// Register-to-register move (an `alu b` in disguise, but kept distinct
    /// because the allocator inserts and counts these).
    Move {
        /// Destination register.
        dst: R,
        /// Source register.
        src: R,
    },
    /// The SSU `clone` pseudo-instruction (§4.5/§10): semantically a copy,
    /// but clones may share a register. Virtual code only; the allocator
    /// either erases it (same register) or materializes a `Move`.
    Clone {
        /// Clone destination.
        dst: R,
        /// Clone source.
        src: R,
    },
    /// Aggregate memory read: `dst[0..n] = mem[addr..addr+n]`. Destinations
    /// must be consecutive registers of the load transfer bank (`L` for
    /// SRAM/scratch, `LD` for SDRAM).
    MemRead {
        /// Which memory.
        space: MemSpace,
        /// Word address of the first element.
        addr: Addr<R>,
        /// Destination registers, ascending.
        dst: Vec<R>,
    },
    /// Aggregate memory write from consecutive store-transfer registers.
    MemWrite {
        /// Which memory.
        space: MemSpace,
        /// Word address of the first element.
        addr: Addr<R>,
        /// Source registers, ascending.
        src: Vec<R>,
    },
    /// Hardware hash unit: `dst = hash(src)`. `dst` lives in `L`, `src` in
    /// `S`, and both must carry the *same register number* (the paper's
    /// `SameReg` constraint).
    Hash {
        /// Result (in `L`).
        dst: R,
        /// Input (in `S`).
        src: R,
    },
    /// Atomic SRAM bit-test-and-set: old word returned in `dst` (in `L`),
    /// modifier taken from `src` (in `S`), same register number.
    TestAndSet {
        /// Old value destination (in `L`).
        dst: R,
        /// Modifier source (in `S`).
        src: R,
        /// Word address.
        addr: Addr<R>,
    },
    /// Read a control/status register into a GP register.
    CsrRead {
        /// Destination.
        dst: R,
        /// CSR number.
        csr: u32,
    },
    /// Write a control/status register.
    CsrWrite {
        /// Source register.
        src: R,
        /// CSR number.
        csr: u32,
    },
    /// Receive-scheduler synchronization: block until a packet has been
    /// DMA'd into SDRAM; yields its byte length and SDRAM word address.
    RxPacket {
        /// Receives the packet length in bytes.
        len_dst: R,
        /// Receives the SDRAM word address of the packet start.
        addr_dst: R,
    },
    /// Transmit-scheduler synchronization: hand a packet (SDRAM address +
    /// byte length) to the transmit FIFO.
    TxPacket {
        /// SDRAM word address of the packet.
        addr: R,
        /// Length in bytes.
        len: R,
    },
    /// Voluntary context swap (`ctx_arb`): lets another thread run.
    CtxSwap,
}

impl<R> Instr<R> {
    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<&R> {
        let mut v = Vec::new();
        match self {
            Instr::Alu { a, b, .. } => {
                v.push(a);
                if let AluSrc::Reg(r) = b {
                    v.push(r);
                }
            }
            Instr::Imm { .. } => {}
            Instr::Move { src, .. } | Instr::Clone { src, .. } => v.push(src),
            Instr::MemRead { addr, .. } => v.extend(addr.base()),
            Instr::MemWrite { addr, src, .. } => {
                v.extend(addr.base());
                v.extend(src.iter());
            }
            Instr::Hash { src, .. } => v.push(src),
            Instr::TestAndSet { src, addr, .. } => {
                v.push(src);
                v.extend(addr.base());
            }
            Instr::CsrRead { .. } => {}
            Instr::CsrWrite { src, .. } => v.push(src),
            Instr::RxPacket { .. } => {}
            Instr::TxPacket { addr, len } => {
                v.push(addr);
                v.push(len);
            }
            Instr::CtxSwap => {}
        }
        v
    }

    /// Registers written by this instruction.
    pub fn defs(&self) -> Vec<&R> {
        let mut v = Vec::new();
        match self {
            Instr::Alu { dst, .. }
            | Instr::Imm { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::Clone { dst, .. }
            | Instr::Hash { dst, .. }
            | Instr::TestAndSet { dst, .. }
            | Instr::CsrRead { dst, .. } => v.push(dst),
            Instr::MemRead { dst, .. } => v.extend(dst.iter()),
            Instr::RxPacket { len_dst, addr_dst } => {
                v.push(len_dst);
                v.push(addr_dst);
            }
            _ => {}
        }
        v
    }

    /// Map the register type (used by the allocator to substitute physical
    /// registers for temporaries).
    pub fn map<S>(self, f: &mut impl FnMut(R) -> S) -> Instr<S> {
        match self {
            Instr::Alu { op, dst, a, b } => Instr::Alu {
                op,
                dst: f(dst),
                a: f(a),
                b: match b {
                    AluSrc::Reg(r) => AluSrc::Reg(f(r)),
                    AluSrc::Imm(v) => AluSrc::Imm(v),
                },
            },
            Instr::Imm { dst, val } => Instr::Imm { dst: f(dst), val },
            Instr::Move { dst, src } => Instr::Move {
                dst: f(dst),
                src: f(src),
            },
            Instr::Clone { dst, src } => Instr::Clone {
                dst: f(dst),
                src: f(src),
            },
            Instr::MemRead { space, addr, dst } => Instr::MemRead {
                space,
                addr: addr.map(f),
                dst: dst.into_iter().map(&mut *f).collect(),
            },
            Instr::MemWrite { space, addr, src } => Instr::MemWrite {
                space,
                addr: addr.map(f),
                src: src.into_iter().map(&mut *f).collect(),
            },
            Instr::Hash { dst, src } => Instr::Hash {
                dst: f(dst),
                src: f(src),
            },
            Instr::TestAndSet { dst, src, addr } => Instr::TestAndSet {
                dst: f(dst),
                src: f(src),
                addr: addr.map(f),
            },
            Instr::CsrRead { dst, csr } => Instr::CsrRead { dst: f(dst), csr },
            Instr::CsrWrite { src, csr } => Instr::CsrWrite { src: f(src), csr },
            Instr::RxPacket { len_dst, addr_dst } => Instr::RxPacket {
                len_dst: f(len_dst),
                addr_dst: f(addr_dst),
            },
            Instr::TxPacket { addr, len } => Instr::TxPacket {
                addr: f(addr),
                len: f(len),
            },
            Instr::CtxSwap => Instr::CtxSwap,
        }
    }

    /// Does this instruction reference external memory (and hence trigger a
    /// context swap in the threaded execution model)?
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::MemRead { .. }
                | Instr::MemWrite { .. }
                | Instr::Hash { .. }
                | Instr::TestAndSet { .. }
        )
    }
}

impl<R: fmt::Display> fmt::Display for Instr<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => write!(f, "{} {dst}, {a}, {b}", op.mnemonic()),
            Instr::Imm { dst, val } => write!(f, "immed {dst}, {val:#x}"),
            Instr::Move { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Clone { dst, src } => write!(f, "clone {dst}, {src}"),
            Instr::MemRead { space, addr, dst } => {
                write!(f, "{space}.read {addr} ->")?;
                for d in dst {
                    write!(f, " {d}")?;
                }
                Ok(())
            }
            Instr::MemWrite { space, addr, src } => {
                write!(f, "{space}.write {addr} <-")?;
                for s in src {
                    write!(f, " {s}")?;
                }
                Ok(())
            }
            Instr::Hash { dst, src } => write!(f, "hash {dst}, {src}"),
            Instr::TestAndSet { dst, src, addr } => write!(f, "tstset {dst}, {src}, {addr}"),
            Instr::CsrRead { dst, csr } => write!(f, "csr_rd {dst}, {csr}"),
            Instr::CsrWrite { src, csr } => write!(f, "csr_wr {src}, {csr}"),
            Instr::RxPacket { len_dst, addr_dst } => write!(f, "rx_packet {len_dst}, {addr_dst}"),
            Instr::TxPacket { addr, len } => write!(f, "tx_packet {addr}, {len}"),
            Instr::CtxSwap => write!(f, "ctx_arb"),
        }
    }
}

/// Branch conditions for block terminators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (unsigned)
    Lt,
    /// `a <= b` (unsigned)
    Le,
    /// `a > b` (unsigned)
    Gt,
    /// `a >= b` (unsigned)
    Ge,
}

impl Cond {
    /// Evaluate on 32-bit unsigned words.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition with operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
        }
    }

    /// The negated condition (`!(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Mnemonic ("eq", "ne", ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(AluOp::AndNot.eval(0b1111, 0b0101), 0b1010);
        assert_eq!(AluOp::Shl.eval(1, 31), 1 << 31);
        assert_eq!(AluOp::Shl.eval(1, 32), 0);
        assert_eq!(AluOp::Shr.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::B.eval(7, 9), 9);
    }

    #[test]
    fn cond_laws() {
        let pairs = [(3u32, 5u32), (5, 3), (4, 4), (0, u32::MAX)];
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            for (a, b) in pairs {
                assert_eq!(c.eval(a, b), c.swap().eval(b, a), "{c:?} swap");
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c:?} negate");
            }
        }
    }

    #[test]
    fn uses_and_defs() {
        use crate::reg::Temp;
        let i: Instr<Temp> = Instr::MemWrite {
            space: MemSpace::Sram,
            addr: Addr::Reg(Temp(9), 2),
            src: vec![Temp(1), Temp(2)],
        };
        let uses: Vec<u32> = i.uses().into_iter().map(|t| t.0).collect();
        assert_eq!(uses, vec![9, 1, 2]);
        assert!(i.defs().is_empty());

        let r: Instr<Temp> = Instr::MemRead {
            space: MemSpace::Sdram,
            addr: Addr::Imm(0),
            dst: vec![Temp(3), Temp(4)],
        };
        let defs: Vec<u32> = r.defs().into_iter().map(|t| t.0).collect();
        assert_eq!(defs, vec![3, 4]);
    }

    #[test]
    fn burst_rules() {
        assert!(MemSpace::Sram.burst_ok(1));
        assert!(MemSpace::Sram.burst_ok(8));
        assert!(!MemSpace::Sram.burst_ok(0));
        assert!(!MemSpace::Sram.burst_ok(9));
        assert!(MemSpace::Sdram.burst_ok(2));
        assert!(!MemSpace::Sdram.burst_ok(3));
        assert!(!MemSpace::Sdram.burst_ok(1));
    }

    #[test]
    fn map_replaces_registers() {
        use crate::reg::Temp;
        let i: Instr<Temp> = Instr::Alu {
            op: AluOp::Xor,
            dst: Temp(0),
            a: Temp(1),
            b: AluSrc::Reg(Temp(2)),
        };
        let j = i.map(&mut |t: Temp| t.0 * 10);
        match j {
            Instr::Alu {
                dst,
                a,
                b: AluSrc::Reg(b),
                ..
            } => {
                assert_eq!((dst, a, b), (0, 10, 20));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
