//! Models of the IXP's special-purpose hardware units shared by the CPS
//! reference interpreter and the cycle simulator (they must agree bit for
//! bit so compiled code can be validated against the oracle).

/// The hardware hash unit's function. The real IXP1200 implements a
/// 48-bit polynomial hash; we model a well-mixed 32-bit avalanche hash
/// (the exact polynomial is irrelevant to the compiler — only that both
/// execution models agree).
pub fn hash_unit(x: u32) -> u32 {
    let mut h = x.wrapping_mul(0x9E37_79B9);
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^ (h >> 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_mixing() {
        assert_eq!(hash_unit(0), hash_unit(0));
        assert_ne!(hash_unit(0), hash_unit(1));
        assert_ne!(hash_unit(1), hash_unit(2));
    }
}
