//! Cycle-cost model of the IXP1200 used by the simulator and by the
//! allocator's spill-cost parameters.
//!
//! The numbers are the documented approximate latencies of the 233 MHz
//! IXP1200 (C-step): single-cycle ALU/shift/branch issue, ~16–20 cycle SRAM
//! reads, ~33–40 cycle SDRAM reads, ~12–16 cycle scratch accesses. The
//! paper's objective function charges `mvC = 1` for a register move and
//! `ldC = stC = 200` for spill memory traffic (§7) — deliberately far above
//! raw latency, because a blocked thread costs the whole pipeline; those
//! objective weights live in the allocator, while these structural numbers
//! drive the cycle-approximate simulation.

use crate::insn::{Instr, MemSpace};

/// Clock frequency of the modeled part, in Hz (233 MHz IXP1200).
pub const CLOCK_HZ: u64 = 233_000_000;

/// Issue cost of a non-memory instruction, in cycles.
pub const ISSUE_CYCLES: u64 = 1;

/// Extra cycles when a branch is taken (pipeline refill).
pub const BRANCH_TAKEN_PENALTY: u64 = 2;

/// Cycles for an `immed` whose value does not fit in one halfword load.
pub const IMM_WIDE_EXTRA: u64 = 1;

/// Unloaded round-trip latency of a memory read, in cycles.
pub fn read_latency(space: MemSpace) -> u64 {
    match space {
        MemSpace::Sram => 18,
        MemSpace::Sdram => 36,
        MemSpace::Scratch => 14,
    }
}

/// Unloaded completion latency of a memory write, in cycles. Writes retire
/// from the store transfer registers asynchronously; the issuing thread
/// only blocks when it explicitly waits, but the simulator charges the bus
/// occupancy to the memory channel.
pub fn write_latency(space: MemSpace) -> u64 {
    match space {
        MemSpace::Sram => 16,
        MemSpace::Sdram => 30,
        MemSpace::Scratch => 12,
    }
}

/// Additional per-word cycles of a burst beyond the first word.
pub fn burst_extra(space: MemSpace) -> u64 {
    match space {
        MemSpace::Sram | MemSpace::Scratch => 2,
        MemSpace::Sdram => 1,
    }
}

/// Latency of the hardware hash unit.
pub const HASH_CYCLES: u64 = 18;

/// Does a constant fit the single-cycle `immed` encoding? The IXP loads a
/// 16-bit immediate (optionally shifted) in one instruction; anything else
/// takes two.
pub fn imm_is_cheap(val: u32) -> bool {
    val & 0xFFFF_0000 == 0 || val & 0x0000_FFFF == 0
}

/// Issue cost of one instruction (not counting memory stall time).
pub fn issue_cycles<R>(ins: &Instr<R>) -> u64 {
    match ins {
        Instr::Imm { val, .. } => {
            if imm_is_cheap(*val) {
                ISSUE_CYCLES
            } else {
                ISSUE_CYCLES + IMM_WIDE_EXTRA
            }
        }
        _ => ISSUE_CYCLES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Temp;

    #[test]
    fn imm_cost_model() {
        assert!(imm_is_cheap(0x0000_1234));
        assert!(imm_is_cheap(0x1234_0000));
        assert!(!imm_is_cheap(0x1234_5678));
        let cheap: Instr<Temp> = Instr::Imm {
            dst: Temp(0),
            val: 7,
        };
        let wide: Instr<Temp> = Instr::Imm {
            dst: Temp(0),
            val: 0xDEAD_BEEF,
        };
        assert_eq!(issue_cycles(&cheap), 1);
        assert_eq!(issue_cycles(&wide), 2);
    }

    #[test]
    fn memory_orders() {
        // Scratch is faster than SRAM which is faster than SDRAM.
        assert!(read_latency(MemSpace::Scratch) < read_latency(MemSpace::Sram));
        assert!(read_latency(MemSpace::Sram) < read_latency(MemSpace::Sdram));
    }
}
