//! Register banks of the IXP1200 micro-engine.
//!
//! Figure 1 of the paper: a micro-engine thread sees six register banks —
//! two general-purpose banks **A** and **B**, the SRAM transfer banks **L**
//! (load side, destination of SRAM/scratch reads) and **S** (store side,
//! source of SRAM/scratch writes), and the SDRAM transfer banks **LD** and
//! **SD**. ALU inputs come from `{A, B, L, LD}` with each of `A`, `B` and
//! `L ∪ LD` supplying at most one operand; ALU results go to `{A, B, S,
//! SD}`. There is no path between two registers of the same transfer bank,
//! and the store-side banks cannot be read except by the memory units.

use std::fmt;

/// One of the six physical register banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bank {
    /// General-purpose bank A (ALU source and destination).
    A,
    /// General-purpose bank B (ALU source and destination).
    B,
    /// SRAM/scratch *load* transfer bank (memory reads land here).
    L,
    /// SRAM/scratch *store* transfer bank (memory writes read from here).
    S,
    /// SDRAM load transfer bank.
    Ld,
    /// SDRAM store transfer bank.
    Sd,
}

impl Bank {
    /// All six banks, in a canonical order.
    pub const ALL: [Bank; 6] = [Bank::A, Bank::B, Bank::L, Bank::S, Bank::Ld, Bank::Sd];

    /// The four transfer banks (the paper's `XBank`).
    pub const TRANSFER: [Bank; 4] = [Bank::L, Bank::S, Bank::Ld, Bank::Sd];

    /// Registers per thread in this bank.
    ///
    /// The IXP1200 exposes 16 A and 16 B general-purpose registers per
    /// context and 8 registers in each transfer bank per context.
    pub fn capacity(self) -> usize {
        match self {
            Bank::A | Bank::B => 16,
            _ => 8,
        }
    }

    /// Is this one of the four transfer banks?
    pub fn is_transfer(self) -> bool {
        !matches!(self, Bank::A | Bank::B)
    }

    /// Can the ALU read an operand from this bank?
    pub fn alu_readable(self) -> bool {
        matches!(self, Bank::A | Bank::B | Bank::L | Bank::Ld)
    }

    /// Can the ALU (or an immediate load) write a result to this bank?
    pub fn alu_writable(self) -> bool {
        matches!(self, Bank::A | Bank::B | Bank::S | Bank::Sd)
    }

    /// Short name used in assembly listings ("a", "b", "l", "s", "ld", "sd").
    pub fn name(self) -> &'static str {
        match self {
            Bank::A => "a",
            Bank::B => "b",
            Bank::L => "l",
            Bank::S => "s",
            Bank::Ld => "ld",
            Bank::Sd => "sd",
        }
    }
}

impl fmt::Display for Bank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Check the ALU two-operand rule: operands must come from ALU-readable
/// banks, and each of `A`, `B`, and `L ∪ LD` supplies at most one operand.
pub fn alu_operands_ok(a: Bank, b: Bank) -> bool {
    if !a.alu_readable() || !b.alu_readable() {
        return false;
    }
    let xfer = |bk: Bank| matches!(bk, Bank::L | Bank::Ld);
    if xfer(a) && xfer(b) {
        return false; // L ∪ LD supplies at most one operand
    }
    if a == b && !xfer(a) {
        return false; // A and B each supply at most one operand
    }
    true
}

/// Check that a register-register move is implementable by one instruction.
///
/// A move reads its source like an ALU operand and writes its destination
/// like an ALU result, so `src ∈ {A, B, L, LD}` and `dst ∈ {A, B, S, SD}`.
/// In particular there is no move out of `S`/`SD` (store-side values can
/// only reach memory) and no move within a transfer bank.
pub fn move_ok(src: Bank, dst: Bank) -> bool {
    src.alu_readable() && dst.alu_writable()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_hardware() {
        assert_eq!(Bank::A.capacity(), 16);
        assert_eq!(Bank::B.capacity(), 16);
        for b in Bank::TRANSFER {
            assert_eq!(b.capacity(), 8);
        }
    }

    #[test]
    fn alu_operand_rules() {
        use Bank::*;
        assert!(alu_operands_ok(A, B));
        assert!(alu_operands_ok(A, L));
        assert!(alu_operands_ok(B, Ld));
        assert!(alu_operands_ok(L, A));
        // both operands from the transfer side is illegal
        assert!(!alu_operands_ok(L, Ld));
        assert!(!alu_operands_ok(Ld, L));
        assert!(!alu_operands_ok(L, L));
        // two operands from the same GP bank is illegal
        assert!(!alu_operands_ok(A, A));
        assert!(!alu_operands_ok(B, B));
        // store-side banks are not readable
        assert!(!alu_operands_ok(S, A));
        assert!(!alu_operands_ok(A, Sd));
    }

    #[test]
    fn move_rules() {
        use Bank::*;
        assert!(move_ok(A, B));
        assert!(move_ok(L, S)); // read side to store side: fine
        assert!(move_ok(Ld, A));
        assert!(move_ok(A, Sd));
        // no moves out of the store side
        assert!(!move_ok(S, A));
        assert!(!move_ok(Sd, Sd));
        // no path into the load side except memory
        assert!(!move_ok(A, L));
        assert!(!move_ok(A, Ld));
    }

    #[test]
    fn transfer_classification() {
        assert!(!Bank::A.is_transfer());
        assert!(!Bank::B.is_transfer());
        for b in Bank::TRANSFER {
            assert!(b.is_transfer());
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn bank_strategy() -> impl Strategy<Value = Bank> {
        prop_oneof![
            Just(Bank::A),
            Just(Bank::B),
            Just(Bank::L),
            Just(Bank::S),
            Just(Bank::Ld),
            Just(Bank::Sd),
        ]
    }

    proptest! {
        #[test]
        fn operand_rule_invariants(a in bank_strategy(), b in bank_strategy()) {
            // A legal operand pair never reads the store side...
            if alu_operands_ok(a, b) {
                prop_assert!(a.alu_readable());
                prop_assert!(b.alu_readable());
                // ...never takes both operands from the transfer side...
                prop_assert!(!(a.is_transfer() && b.is_transfer()));
                // ...and never reads one GP bank twice.
                prop_assert!(a != b || a.is_transfer());
            }
            // The relation is symmetric.
            prop_assert_eq!(alu_operands_ok(a, b), alu_operands_ok(b, a));
        }

        #[test]
        fn move_rule_invariants(src in bank_strategy(), dst in bank_strategy()) {
            if move_ok(src, dst) {
                prop_assert!(src.alu_readable());
                prop_assert!(dst.alu_writable());
            }
            // The load side is only reachable through memory.
            if dst == Bank::L || dst == Bank::Ld {
                prop_assert!(!move_ok(src, dst));
            }
            // The store side is opaque.
            if src == Bank::S || src == Bank::Sd {
                prop_assert!(!move_ok(src, dst));
            }
        }
    }
}
