//! Flowgraphs of micro-engine code and the machine-code validator.
//!
//! A [`Program`] is a list of basic blocks with explicit terminators,
//! generic over the register type. After allocation the program is
//! `Program<PhysReg>`; [`validate`] then checks every hardware rule the ILP
//! model is supposed to enforce — ALU operand bank legality, move data
//! paths, transfer-bank adjacency of aggregates, burst sizes, and the
//! same-register constraint of `hash`/`test-and-set`. The validator is the
//! oracle used by the allocator's test suite: a solution that passes it is
//! executable hardware code.

use crate::bank::{alu_operands_ok, move_ok, Bank};
use crate::insn::{AluSrc, Cond, Instr, MemSpace};
use crate::reg::PhysReg;
use std::fmt;

/// Identifier of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into [`Program::blocks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator<R> {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch comparing `a` against `b`.
    Branch {
        /// Condition code.
        cond: Cond,
        /// Left comparand.
        a: R,
        /// Right comparand (register or immediate — the IXP compares
        /// against zero for free and small immediates via `alu`).
        b: AluSrc<R>,
        /// Target when the condition holds.
        if_true: BlockId,
        /// Target when it does not.
        if_false: BlockId,
    },
    /// End of the program (packet processed; return to the dispatch loop).
    Halt,
}

impl<R> Terminator<R> {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Halt => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<&R> {
        match self {
            Terminator::Branch { a, b, .. } => {
                let mut v = vec![a];
                if let AluSrc::Reg(r) = b {
                    v.push(r);
                }
                v
            }
            _ => vec![],
        }
    }

    /// Map the register type.
    pub fn map<S>(self, f: &mut impl FnMut(R) -> S) -> Terminator<S> {
        match self {
            Terminator::Jump(t) => Terminator::Jump(t),
            Terminator::Branch {
                cond,
                a,
                b,
                if_true,
                if_false,
            } => Terminator::Branch {
                cond,
                a: f(a),
                b: match b {
                    AluSrc::Reg(r) => AluSrc::Reg(f(r)),
                    AluSrc::Imm(v) => AluSrc::Imm(v),
                },
                if_true,
                if_false,
            },
            Terminator::Halt => Terminator::Halt,
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Block<R> {
    /// Instructions in execution order.
    pub instrs: Vec<Instr<R>>,
    /// Control transfer out of the block.
    pub term: Terminator<R>,
}

/// A whole micro-engine program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program<R> {
    /// Basic blocks; `BlockId(i)` names `blocks[i]`.
    pub blocks: Vec<Block<R>>,
    /// Entry block.
    pub entry: BlockId,
}

impl<R> Program<R> {
    /// Total instruction count (terminators included, each counting 1).
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }

    /// True if the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Map the register type over the whole program.
    pub fn map<S>(self, f: &mut impl FnMut(R) -> S) -> Program<S> {
        Program {
            blocks: self
                .blocks
                .into_iter()
                .map(|b| Block {
                    instrs: b.instrs.into_iter().map(|i| i.map(f)).collect(),
                    term: b.term.map(f),
                })
                .collect(),
            entry: self.entry,
        }
    }
}

impl<R: fmt::Display> fmt::Display for Program<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "entry {}", self.entry)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "L{i}:")?;
            for ins in &b.instrs {
                writeln!(f, "    {ins}")?;
            }
            match &b.term {
                Terminator::Jump(t) => writeln!(f, "    br {t}")?,
                Terminator::Branch {
                    cond,
                    a,
                    b,
                    if_true,
                    if_false,
                } => writeln!(
                    f,
                    "    br.{} {a}, {b} -> {if_true} else {if_false}",
                    cond.mnemonic()
                )?,
                Terminator::Halt => writeln!(f, "    halt")?,
            }
        }
        Ok(())
    }
}

/// A violation of the machine's rules found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Block where the violation occurred.
    pub block: BlockId,
    /// Instruction index within the block (`instrs.len()` = terminator).
    pub index: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.block, self.index, self.message)
    }
}

/// Check a physical-register program against every hardware rule. Returns
/// all violations (empty = valid machine code).
pub fn validate(prog: &Program<PhysReg>) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |block: usize, index: usize, message: String| {
        out.push(Violation {
            block: BlockId(block as u32),
            index,
            message,
        });
    };
    for (bi, block) in prog.blocks.iter().enumerate() {
        for (ii, ins) in block.instrs.iter().enumerate() {
            match ins {
                Instr::Alu { dst, a, b, .. } => {
                    match b {
                        AluSrc::Reg(rb) => {
                            if !alu_operands_ok(a.bank, rb.bank) {
                                push(bi, ii, format!("illegal ALU operand banks {a}, {rb}"));
                            }
                        }
                        AluSrc::Imm(v) => {
                            if *v >= 32 {
                                push(bi, ii, format!("ALU immediate {v} out of range"));
                            }
                            if !a.bank.alu_readable() {
                                push(bi, ii, format!("ALU operand {a} not readable"));
                            }
                        }
                    }
                    if !dst.bank.alu_writable() {
                        push(bi, ii, format!("ALU destination {dst} not writable"));
                    }
                }
                Instr::Imm { dst, .. } => {
                    if !dst.bank.alu_writable() {
                        push(bi, ii, format!("immed destination {dst} not writable"));
                    }
                }
                Instr::Move { dst, src } => {
                    if !move_ok(src.bank, dst.bank) {
                        push(bi, ii, format!("illegal move {src} -> {dst}"));
                    }
                }
                Instr::Clone { .. } => {
                    push(
                        bi,
                        ii,
                        "clone pseudo-instruction survived allocation".into(),
                    );
                }
                Instr::MemRead { space, dst, addr } => {
                    let want = read_bank(*space);
                    check_aggregate(&mut push, bi, ii, dst, want, *space);
                    check_addr_bank(&mut push, bi, ii, addr);
                }
                Instr::MemWrite { space, src, addr } => {
                    let want = write_bank(*space);
                    check_aggregate(&mut push, bi, ii, src, want, *space);
                    check_addr_bank(&mut push, bi, ii, addr);
                }
                Instr::Hash { dst, src } | Instr::TestAndSet { dst, src, .. } => {
                    if dst.bank != Bank::L {
                        push(bi, ii, format!("unit result {dst} must be in L"));
                    }
                    if src.bank != Bank::S {
                        push(bi, ii, format!("unit operand {src} must be in S"));
                    }
                    if dst.num != src.num {
                        push(
                            bi,
                            ii,
                            format!("same-register constraint violated: {dst} vs {src}"),
                        );
                    }
                    if let Instr::TestAndSet { addr, .. } = ins {
                        check_addr_bank(&mut push, bi, ii, addr);
                    }
                }
                Instr::CsrRead { dst, .. } => {
                    if !dst.bank.alu_writable() {
                        push(bi, ii, format!("csr_rd destination {dst} not writable"));
                    }
                }
                Instr::CsrWrite { src, .. } => {
                    if !src.bank.alu_readable() {
                        push(bi, ii, format!("csr_wr source {src} not readable"));
                    }
                }
                Instr::RxPacket { len_dst, addr_dst } => {
                    for r in [len_dst, addr_dst] {
                        if !r.bank.alu_writable() {
                            push(bi, ii, format!("rx_packet destination {r} not writable"));
                        }
                    }
                }
                Instr::TxPacket { addr, len } => {
                    for r in [addr, len] {
                        if !r.bank.alu_readable() {
                            push(bi, ii, format!("tx_packet operand {r} not readable"));
                        }
                    }
                }
                Instr::CtxSwap => {}
            }
        }
        // Terminator checks.
        let ti = block.instrs.len();
        match &block.term {
            Terminator::Branch {
                a,
                b,
                if_true,
                if_false,
                ..
            } => {
                match b {
                    AluSrc::Reg(rb) => {
                        if !alu_operands_ok(a.bank, rb.bank) {
                            push(bi, ti, format!("illegal branch operand banks {a}, {rb}"));
                        }
                    }
                    AluSrc::Imm(_) => {
                        if !a.bank.alu_readable() {
                            push(bi, ti, format!("branch operand {a} not readable"));
                        }
                    }
                }
                for t in [if_true, if_false] {
                    if t.index() >= prog.blocks.len() {
                        push(bi, ti, format!("branch target {t} out of range"));
                    }
                }
            }
            Terminator::Jump(t) => {
                if t.index() >= prog.blocks.len() {
                    push(bi, ti, format!("jump target {t} out of range"));
                }
            }
            Terminator::Halt => {}
        }
    }
    out
}

/// Load-side transfer bank of a memory space.
pub fn read_bank(space: MemSpace) -> Bank {
    match space {
        MemSpace::Sram | MemSpace::Scratch => Bank::L,
        MemSpace::Sdram => Bank::Ld,
    }
}

/// Store-side transfer bank of a memory space.
pub fn write_bank(space: MemSpace) -> Bank {
    match space {
        MemSpace::Sram | MemSpace::Scratch => Bank::S,
        MemSpace::Sdram => Bank::Sd,
    }
}

fn check_aggregate(
    push: &mut impl FnMut(usize, usize, String),
    bi: usize,
    ii: usize,
    regs: &[PhysReg],
    want: Bank,
    space: MemSpace,
) {
    if !space.burst_ok(regs.len()) {
        push(
            bi,
            ii,
            format!("{space} burst of {} registers is illegal", regs.len()),
        );
    }
    for (k, r) in regs.iter().enumerate() {
        if r.bank != want {
            push(bi, ii, format!("aggregate register {r} must be in {want}"));
        }
        if k > 0 && regs[k].num != regs[k - 1].num.wrapping_add(1) {
            push(
                bi,
                ii,
                format!(
                    "aggregate registers not consecutive: {} then {}",
                    regs[k - 1],
                    regs[k]
                ),
            );
        }
    }
}

fn check_addr_bank(
    push: &mut impl FnMut(usize, usize, String),
    bi: usize,
    ii: usize,
    addr: &crate::insn::Addr<PhysReg>,
) {
    if let Some(base) = addr.base() {
        if !base.bank.alu_readable() {
            push(bi, ii, format!("address base {base} not readable"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Addr, AluOp};

    fn pr(bank: Bank, num: u8) -> PhysReg {
        PhysReg::new(bank, num)
    }

    fn prog(instrs: Vec<Instr<PhysReg>>) -> Program<PhysReg> {
        Program {
            blocks: vec![Block {
                instrs,
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn valid_alu_passes() {
        let p = prog(vec![Instr::Alu {
            op: AluOp::Add,
            dst: pr(Bank::A, 0),
            a: pr(Bank::A, 1),
            b: AluSrc::Reg(pr(Bank::B, 0)),
        }]);
        assert!(validate(&p).is_empty());
    }

    #[test]
    fn two_transfer_operands_rejected() {
        let p = prog(vec![Instr::Alu {
            op: AluOp::Add,
            dst: pr(Bank::A, 0),
            a: pr(Bank::L, 0),
            b: AluSrc::Reg(pr(Bank::Ld, 0)),
        }]);
        let v = validate(&p);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("illegal ALU operand banks"));
    }

    #[test]
    fn alu_dest_must_be_writable() {
        let p = prog(vec![Instr::Alu {
            op: AluOp::Add,
            dst: pr(Bank::L, 0),
            a: pr(Bank::A, 1),
            b: AluSrc::Reg(pr(Bank::B, 0)),
        }]);
        assert!(!validate(&p).is_empty());
    }

    #[test]
    fn aggregate_adjacency_enforced() {
        let p = prog(vec![Instr::MemRead {
            space: MemSpace::Sram,
            addr: Addr::Imm(0),
            dst: vec![pr(Bank::L, 2), pr(Bank::L, 4)],
        }]);
        let v = validate(&p);
        assert!(v.iter().any(|x| x.message.contains("not consecutive")));
    }

    #[test]
    fn aggregate_bank_enforced() {
        let p = prog(vec![Instr::MemWrite {
            space: MemSpace::Sdram,
            addr: Addr::Imm(0),
            src: vec![pr(Bank::S, 0), pr(Bank::S, 1)],
        }]);
        let v = validate(&p);
        assert!(v.iter().any(|x| x.message.contains("must be in sd")));
    }

    #[test]
    fn sdram_odd_burst_rejected() {
        let p = prog(vec![Instr::MemRead {
            space: MemSpace::Sdram,
            addr: Addr::Imm(0),
            dst: vec![pr(Bank::Ld, 0), pr(Bank::Ld, 1), pr(Bank::Ld, 2)],
        }]);
        let v = validate(&p);
        assert!(v.iter().any(|x| x.message.contains("burst of 3")));
    }

    #[test]
    fn hash_same_register() {
        let ok = prog(vec![Instr::Hash {
            dst: pr(Bank::L, 3),
            src: pr(Bank::S, 3),
        }]);
        assert!(validate(&ok).is_empty());
        let bad = prog(vec![Instr::Hash {
            dst: pr(Bank::L, 3),
            src: pr(Bank::S, 4),
        }]);
        assert!(validate(&bad)
            .iter()
            .any(|v| v.message.contains("same-register")));
    }

    #[test]
    fn clone_must_not_survive() {
        let p = prog(vec![Instr::Clone {
            dst: pr(Bank::A, 0),
            src: pr(Bank::A, 1),
        }]);
        assert!(validate(&p).iter().any(|v| v.message.contains("clone")));
    }

    #[test]
    fn branch_targets_checked() {
        let p = Program {
            blocks: vec![Block {
                instrs: vec![],
                term: Terminator::Jump(BlockId(7)),
            }],
            entry: BlockId(0),
        };
        assert!(validate(&p)
            .iter()
            .any(|v| v.message.contains("out of range")));
    }

    #[test]
    fn display_roundtrips_shape() {
        let p = prog(vec![Instr::Imm {
            dst: pr(Bank::A, 0),
            val: 0x42,
        }]);
        let s = p.to_string();
        assert!(s.contains("immed a0, 0x42"));
        assert!(s.contains("halt"));
    }
}
