//! Memory-channel and bus-arbitration model.
//!
//! Each external memory space of the IXP1200 (SRAM, SDRAM, scratch) sits
//! behind one shared command bus: the push/pull engines accept one
//! reference at a time and occupy the bus for the burst length of the
//! transfer. Six micro-engines contend for these channels, which is
//! exactly the saturation effect the paper's latency-hiding design is
//! built around (§11): adding contexts or engines helps only until a
//! channel's occupancy reaches 1.0.
//!
//! [`Channel`] models one such bus as a FIFO server with a single
//! `free_at` horizon and the burst/latency costs from [`crate::timing`].
//! The single-engine simulator drives it directly per reference; the
//! chip-level simulator replays batched requests through it in canonical
//! order at every arbitration epoch. Both paths produce identical service
//! times for the same request sequence, because the service discipline is
//! a pure fold over `(issue_cycle, words)` pairs.

use crate::insn::MemSpace;
use crate::timing::{burst_extra, read_latency, write_latency};

/// Deterministic fault-injection knobs for a memory channel.
///
/// Faults fire on *reference counts*, never on wall time or randomness,
/// so an injected run is exactly reproducible and two simulators driving
/// the same request sequence observe the same perturbations. A zero
/// period disables that fault class; [`ChannelFaults::default`] injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelFaults {
    /// Every `stall_every`-th accepted reference finds the bus held by an
    /// external agent (PCI unit, refresh) and waits `stall_cycles` extra
    /// cycles before the grant. `0` disables stalls.
    pub stall_every: u64,
    /// Extra pre-grant cycles per injected stall.
    pub stall_cycles: u64,
    /// Every `drop_every`-th accepted reference is dropped by the push/
    /// pull engine and retried immediately, paying the service cost
    /// twice. `0` disables drops.
    pub drop_every: u64,
}

impl ChannelFaults {
    /// Does any fault class fire?
    pub fn enabled(&self) -> bool {
        (self.stall_every > 0 && self.stall_cycles > 0) || self.drop_every > 0
    }
}

/// Occupancy and queueing telemetry of one memory channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Which memory space this channel serves.
    pub space: MemSpace,
    /// Read references accepted.
    pub reads: u64,
    /// Write references accepted.
    pub writes: u64,
    /// Cycles the channel's bus was occupied by transfers.
    pub busy_cycles: u64,
    /// Total cycles requests spent waiting for the bus (queueing delay
    /// beyond the unloaded latency).
    pub wait_cycles: u64,
    /// Largest number of requests resolved in a single arbitration epoch
    /// (chip-level simulation; stays 0 when driven per-reference).
    pub max_queue_depth: usize,
    /// References that hit an injected pre-grant stall.
    pub stalled: u64,
    /// References dropped and retried by fault injection.
    pub dropped: u64,
}

impl ChannelStats {
    fn new(space: MemSpace) -> Self {
        ChannelStats {
            space,
            reads: 0,
            writes: 0,
            busy_cycles: 0,
            wait_cycles: 0,
            max_queue_depth: 0,
            stalled: 0,
            dropped: 0,
        }
    }

    /// Fraction of `total_cycles` the channel's bus was occupied;
    /// approaches 1.0 when the channel saturates.
    pub fn occupancy(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / total_cycles as f64
    }
}

/// One memory channel: a FIFO bus server with burst timing.
#[derive(Debug, Clone)]
pub struct Channel {
    /// First cycle at which the bus can accept the next reference.
    free_at: u64,
    /// Fault-injection knobs (all zero = no faults).
    faults: ChannelFaults,
    /// References accepted so far (drives the fault counters).
    seen: u64,
    /// Telemetry.
    pub stats: ChannelStats,
}

impl Channel {
    /// An idle channel for `space`.
    pub fn new(space: MemSpace) -> Self {
        Channel::with_faults(space, ChannelFaults::default())
    }

    /// An idle channel for `space` with fault injection armed.
    pub fn with_faults(space: MemSpace, faults: ChannelFaults) -> Self {
        Channel {
            free_at: 0,
            faults,
            seen: 0,
            stats: ChannelStats::new(space),
        }
    }

    /// One channel per memory space, indexable by [`MemSpace`] order
    /// (SRAM, SDRAM, scratch).
    pub fn per_space() -> [Channel; 3] {
        Channel::per_space_with(ChannelFaults::default())
    }

    /// [`Channel::per_space`] with the same fault knobs on every channel.
    pub fn per_space_with(faults: ChannelFaults) -> [Channel; 3] {
        [
            Channel::with_faults(MemSpace::Sram, faults),
            Channel::with_faults(MemSpace::Sdram, faults),
            Channel::with_faults(MemSpace::Scratch, faults),
        ]
    }

    /// Count one accepted reference against the fault knobs; returns the
    /// injected pre-grant stall and whether this reference is dropped
    /// (serviced twice).
    fn inject(&mut self) -> (u64, bool) {
        self.seen += 1;
        let mut stall = 0;
        if self.faults.stall_every > 0 && self.seen.is_multiple_of(self.faults.stall_every) {
            stall = self.faults.stall_cycles;
            if stall > 0 {
                self.stats.stalled += 1;
            }
        }
        let dropped =
            self.faults.drop_every > 0 && self.seen.is_multiple_of(self.faults.drop_every);
        if dropped {
            self.stats.dropped += 1;
        }
        (stall, dropped)
    }

    /// Index of `space` into the [`Channel::per_space`] array.
    pub fn index(space: MemSpace) -> usize {
        match space {
            MemSpace::Sram => 0,
            MemSpace::Sdram => 1,
            MemSpace::Scratch => 2,
        }
    }

    /// First cycle at which the bus can accept the next reference.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Accept a `words`-long read issued at `issue`; returns
    /// `(start, done)`: the cycle the bus granted the request and the
    /// cycle the data arrives (when the issuing context can resume).
    pub fn service_read(&mut self, issue: u64, words: usize) -> (u64, u64) {
        let space = self.stats.space;
        let (stall, dropped) = self.inject();
        let tries = if dropped { 2 } else { 1 };
        let start = self.free_at.max(issue) + stall;
        let busy = burst_extra(space) * words as u64;
        let done = start + (read_latency(space) + busy) * tries;
        self.free_at = start + (busy + 1) * tries;
        self.stats.reads += 1;
        self.stats.wait_cycles += start - issue;
        self.stats.busy_cycles += (busy + 1) * tries;
        (start, done)
    }

    /// Accept a `words`-long write issued at `issue`; returns the cycle
    /// the bus granted the request. Writes retire from the store transfer
    /// registers asynchronously, so the issuing context only stalls until
    /// the grant, but the bus stays occupied for the burst plus a quarter
    /// of the write completion latency (posting overhead).
    pub fn service_write(&mut self, issue: u64, words: usize) -> u64 {
        let space = self.stats.space;
        let (stall, dropped) = self.inject();
        let tries = if dropped { 2 } else { 1 };
        let start = self.free_at.max(issue) + stall;
        let busy = burst_extra(space) * words as u64;
        let hold = (busy + write_latency(space) / 4) * tries;
        self.free_at = start + hold;
        self.stats.writes += 1;
        self.stats.wait_cycles += start - issue;
        self.stats.busy_cycles += hold;
        start
    }

    /// Record that `depth` requests contended in one arbitration epoch.
    pub fn note_queue_depth(&mut self, depth: usize) {
        if depth > self.stats.max_queue_depth {
            self.stats.max_queue_depth = depth;
        }
    }

    /// The next cycle after `now` at which this channel's state machine
    /// changes on its own: the bus-free horizon, or `None` when the bus
    /// is already free.
    ///
    /// This is the channel's *complete* event set, which is what makes an
    /// event-driven skip over idle arbitration epochs exact: a channel
    /// never spontaneously wakes a context. Completion times are folded
    /// into the context's own wake-up (`Blocked(done)`) at service time,
    /// and a still-busy bus at some future cycle only delays *future*
    /// references through the `free_at.max(issue)` fold — priced
    /// identically whether or not the idle cycles in between were
    /// simulated. So a simulator that knows every context's wake-up may
    /// jump straight to the earliest one; [`Channel::next_event`] exists
    /// so that skip logic can assert the invariant instead of assuming it.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        (self.free_at > now).then_some(self.free_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_read_pays_unloaded_latency() {
        let mut c = Channel::new(MemSpace::Sram);
        let (start, done) = c.service_read(100, 1);
        assert_eq!(start, 100);
        assert_eq!(
            done,
            100 + read_latency(MemSpace::Sram) + burst_extra(MemSpace::Sram)
        );
        assert_eq!(c.stats.wait_cycles, 0);
    }

    #[test]
    fn back_to_back_reads_serialize_on_the_bus() {
        let mut c = Channel::new(MemSpace::Sdram);
        let (_, _) = c.service_read(0, 8);
        let free = c.free_at();
        // A second request issued while the bus is busy waits for it.
        let (start, _) = c.service_read(1, 8);
        assert_eq!(start, free);
        assert_eq!(c.stats.wait_cycles, free - 1);
        assert_eq!(c.stats.reads, 2);
    }

    #[test]
    fn writes_hold_the_bus_but_grant_immediately_when_idle() {
        let mut c = Channel::new(MemSpace::Scratch);
        let start = c.service_write(10, 2);
        assert_eq!(start, 10);
        assert!(c.free_at() > 10);
        assert_eq!(c.stats.writes, 1);
    }

    #[test]
    fn injected_stalls_are_periodic_and_deterministic() {
        let faults = ChannelFaults {
            stall_every: 2,
            stall_cycles: 7,
            drop_every: 0,
        };
        let run = || {
            let mut c = Channel::with_faults(MemSpace::Sram, faults);
            let a = c.service_read(0, 1).0;
            let issue = c.free_at() + 5;
            let b = c.service_read(issue, 1).0;
            (a, b, issue, c.stats.clone())
        };
        let (a, b, issue, stats) = run();
        assert_eq!(a, 0, "first reference is clean");
        assert_eq!(b, issue + 7, "second reference eats the stall");
        assert_eq!(stats.stalled, 1);
        // Counter-based injection replays identically.
        assert_eq!((a, b, issue, stats), run());
    }

    #[test]
    fn dropped_references_pay_the_service_cost_twice() {
        let mut clean = Channel::new(MemSpace::Scratch);
        let mut faulty = Channel::with_faults(
            MemSpace::Scratch,
            ChannelFaults {
                stall_every: 0,
                stall_cycles: 0,
                drop_every: 1,
            },
        );
        let (_, done_clean) = clean.service_read(0, 1);
        let (_, done_faulty) = faulty.service_read(0, 1);
        assert_eq!(done_faulty, done_clean * 2, "retry doubles the latency");
        assert_eq!(faulty.stats.dropped, 1);
        assert_eq!(faulty.stats.busy_cycles, clean.stats.busy_cycles * 2);
    }

    #[test]
    fn zero_periods_inject_nothing() {
        let mut a = Channel::new(MemSpace::Sdram);
        let mut b = Channel::with_faults(MemSpace::Sdram, ChannelFaults::default());
        assert!(!ChannelFaults::default().enabled());
        for i in 0..10 {
            assert_eq!(a.service_read(i * 3, 2), b.service_read(i * 3, 2));
        }
        assert_eq!(a.stats, b.stats);
        assert_eq!(b.stats.stalled, 0);
        assert_eq!(b.stats.dropped, 0);
    }

    #[test]
    fn next_event_is_the_bus_free_horizon_and_nothing_else() {
        let mut c = Channel::new(MemSpace::Sram);
        // Idle channel: no event, ever.
        assert_eq!(c.next_event(0), None);
        assert_eq!(c.next_event(1 << 40), None);
        let (_, done) = c.service_read(100, 4);
        let free = c.free_at();
        // Busy channel: the only future event is the bus freeing.
        assert_eq!(c.next_event(100), Some(free));
        assert_eq!(c.next_event(free - 1), Some(free));
        // At or past the horizon the channel is inert again.
        assert_eq!(c.next_event(free), None);
        // The blocking completion is the *context's* event, not the
        // channel's: it was handed out at service time.
        assert!(done >= free || c.next_event(done).is_none());
    }

    #[test]
    fn skipping_past_the_horizon_cannot_change_service_times() {
        // The exactness argument behind event-driven simulation: a
        // request issued after the bus-free horizon is priced by
        // `free_at.max(issue)`, which no longer depends on `free_at` —
        // so nothing observable happens between the last wake-up and the
        // next issue, simulated or skipped.
        let mut ground = Channel::new(MemSpace::Sdram);
        let mut skipped = Channel::new(MemSpace::Sdram);
        ground.service_read(0, 8);
        skipped.service_read(0, 8);
        let horizon = ground.next_event(0).unwrap();
        assert_eq!(ground.service_read(horizon + 500, 2), {
            // An identical channel that "skipped" the idle span sees the
            // same grant and completion.
            skipped.service_read(horizon + 500, 2)
        });
        assert_eq!(ground.stats, skipped.stats);
    }

    #[test]
    fn occupancy_is_busy_over_total() {
        let mut c = Channel::new(MemSpace::Sram);
        c.service_read(0, 1);
        let busy = c.stats.busy_cycles;
        assert!(c.stats.occupancy(busy * 2) > 0.49);
        assert!(c.stats.occupancy(busy * 2) < 0.51);
    }
}
