//! Memory-channel and bus-arbitration model.
//!
//! Each external memory space of the IXP1200 (SRAM, SDRAM, scratch) sits
//! behind one shared command bus: the push/pull engines accept one
//! reference at a time and occupy the bus for the burst length of the
//! transfer. Six micro-engines contend for these channels, which is
//! exactly the saturation effect the paper's latency-hiding design is
//! built around (§11): adding contexts or engines helps only until a
//! channel's occupancy reaches 1.0.
//!
//! [`Channel`] models one such bus as a FIFO server with a single
//! `free_at` horizon and the burst/latency costs from [`crate::timing`].
//! The single-engine simulator drives it directly per reference; the
//! chip-level simulator replays batched requests through it in canonical
//! order at every arbitration epoch. Both paths produce identical service
//! times for the same request sequence, because the service discipline is
//! a pure fold over `(issue_cycle, words)` pairs.

use crate::insn::MemSpace;
use crate::timing::{burst_extra, read_latency, write_latency};

/// Occupancy and queueing telemetry of one memory channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Which memory space this channel serves.
    pub space: MemSpace,
    /// Read references accepted.
    pub reads: u64,
    /// Write references accepted.
    pub writes: u64,
    /// Cycles the channel's bus was occupied by transfers.
    pub busy_cycles: u64,
    /// Total cycles requests spent waiting for the bus (queueing delay
    /// beyond the unloaded latency).
    pub wait_cycles: u64,
    /// Largest number of requests resolved in a single arbitration epoch
    /// (chip-level simulation; stays 0 when driven per-reference).
    pub max_queue_depth: usize,
}

impl ChannelStats {
    fn new(space: MemSpace) -> Self {
        ChannelStats {
            space,
            reads: 0,
            writes: 0,
            busy_cycles: 0,
            wait_cycles: 0,
            max_queue_depth: 0,
        }
    }

    /// Fraction of `total_cycles` the channel's bus was occupied;
    /// approaches 1.0 when the channel saturates.
    pub fn occupancy(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / total_cycles as f64
    }
}

/// One memory channel: a FIFO bus server with burst timing.
#[derive(Debug, Clone)]
pub struct Channel {
    /// First cycle at which the bus can accept the next reference.
    free_at: u64,
    /// Telemetry.
    pub stats: ChannelStats,
}

impl Channel {
    /// An idle channel for `space`.
    pub fn new(space: MemSpace) -> Self {
        Channel {
            free_at: 0,
            stats: ChannelStats::new(space),
        }
    }

    /// One channel per memory space, indexable by [`MemSpace`] order
    /// (SRAM, SDRAM, scratch).
    pub fn per_space() -> [Channel; 3] {
        [
            Channel::new(MemSpace::Sram),
            Channel::new(MemSpace::Sdram),
            Channel::new(MemSpace::Scratch),
        ]
    }

    /// Index of `space` into the [`Channel::per_space`] array.
    pub fn index(space: MemSpace) -> usize {
        match space {
            MemSpace::Sram => 0,
            MemSpace::Sdram => 1,
            MemSpace::Scratch => 2,
        }
    }

    /// First cycle at which the bus can accept the next reference.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Accept a `words`-long read issued at `issue`; returns
    /// `(start, done)`: the cycle the bus granted the request and the
    /// cycle the data arrives (when the issuing context can resume).
    pub fn service_read(&mut self, issue: u64, words: usize) -> (u64, u64) {
        let space = self.stats.space;
        let start = self.free_at.max(issue);
        let busy = burst_extra(space) * words as u64;
        let done = start + read_latency(space) + busy;
        self.free_at = start + busy + 1;
        self.stats.reads += 1;
        self.stats.wait_cycles += start - issue;
        self.stats.busy_cycles += busy + 1;
        (start, done)
    }

    /// Accept a `words`-long write issued at `issue`; returns the cycle
    /// the bus granted the request. Writes retire from the store transfer
    /// registers asynchronously, so the issuing context only stalls until
    /// the grant, but the bus stays occupied for the burst plus a quarter
    /// of the write completion latency (posting overhead).
    pub fn service_write(&mut self, issue: u64, words: usize) -> u64 {
        let space = self.stats.space;
        let start = self.free_at.max(issue);
        let busy = burst_extra(space) * words as u64;
        let hold = busy + write_latency(space) / 4;
        self.free_at = start + hold;
        self.stats.writes += 1;
        self.stats.wait_cycles += start - issue;
        self.stats.busy_cycles += hold;
        start
    }

    /// Record that `depth` requests contended in one arbitration epoch.
    pub fn note_queue_depth(&mut self, depth: usize) {
        if depth > self.stats.max_queue_depth {
            self.stats.max_queue_depth = depth;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_read_pays_unloaded_latency() {
        let mut c = Channel::new(MemSpace::Sram);
        let (start, done) = c.service_read(100, 1);
        assert_eq!(start, 100);
        assert_eq!(
            done,
            100 + read_latency(MemSpace::Sram) + burst_extra(MemSpace::Sram)
        );
        assert_eq!(c.stats.wait_cycles, 0);
    }

    #[test]
    fn back_to_back_reads_serialize_on_the_bus() {
        let mut c = Channel::new(MemSpace::Sdram);
        let (_, _) = c.service_read(0, 8);
        let free = c.free_at();
        // A second request issued while the bus is busy waits for it.
        let (start, _) = c.service_read(1, 8);
        assert_eq!(start, free);
        assert_eq!(c.stats.wait_cycles, free - 1);
        assert_eq!(c.stats.reads, 2);
    }

    #[test]
    fn writes_hold_the_bus_but_grant_immediately_when_idle() {
        let mut c = Channel::new(MemSpace::Scratch);
        let start = c.service_write(10, 2);
        assert_eq!(start, 10);
        assert!(c.free_at() > 10);
        assert_eq!(c.stats.writes, 1);
    }

    #[test]
    fn occupancy_is_busy_over_total() {
        let mut c = Channel::new(MemSpace::Sram);
        c.service_read(0, 1);
        let busy = c.stats.busy_cycles;
        assert!(c.stats.occupancy(busy * 2) > 0.49);
        assert!(c.stats.occupancy(busy * 2) < 0.51);
    }
}
