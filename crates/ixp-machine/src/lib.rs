//! Machine model of the Intel IXP1200 micro-engine, as presented in
//! "Taming the IXP Network Processor" (PLDI 2003), Figure 1.
//!
//! The model covers what the compiler and simulator need:
//!
//! * [`Bank`] — the six register banks (`A`, `B`, `L`, `S`, `LD`, `SD`)
//!   with their capacities and the data-path legality rules (ALU operand
//!   combinations, move paths, store-side opacity);
//! * [`Instr`] — the instruction set, generic over the register type so
//!   the same flowgraph carries virtual temporaries before allocation and
//!   [`PhysReg`]s after;
//! * [`Program`]/[`validate`] — basic-block flowgraphs plus a validator
//!   that checks every hardware rule (the test oracle for the ILP
//!   allocator);
//! * [`timing`] — the cycle-cost model behind the throughput experiments;
//! * [`channel`] — the shared memory-channel/bus-arbitration model the
//!   simulators charge contention against.
//!
//! # Example
//!
//! ```
//! use ixp_machine::{Bank, PhysReg, Instr, AluOp, AluSrc, Program, Block, BlockId, Terminator, validate};
//! let a0 = PhysReg::new(Bank::A, 0);
//! let b0 = PhysReg::new(Bank::B, 0);
//! let prog = Program {
//!     blocks: vec![Block {
//!         instrs: vec![Instr::Alu { op: AluOp::Add, dst: a0, a: a0, b: AluSrc::Reg(b0) }],
//!         term: Terminator::Halt,
//!     }],
//!     entry: BlockId(0),
//! };
//! assert!(validate(&prog).is_empty());
//! ```

#![warn(missing_docs)]

mod bank;
pub mod channel;
mod insn;
mod program;
mod reg;
pub mod timing;
pub mod units;

pub use bank::{alu_operands_ok, move_ok, Bank};
pub use channel::{Channel, ChannelFaults, ChannelStats};
pub use insn::{Addr, AluOp, AluSrc, Cond, Instr, MemSpace, CSR_CTX};
pub use program::{
    read_bank, validate, write_bank, Block, BlockId, Program, Terminator, Violation,
};
pub use reg::{PhysReg, Temp};
