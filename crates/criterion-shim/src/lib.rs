//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of criterion's API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is simple wall-clock sampling
//! (mean / min / max over `sample_size` runs) printed to stdout — no
//! statistics, plots, or baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, re-exported for convenience.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _c: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named group with shared sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (upstream default is 100; this
    /// shim defaults to 10 to keep bench runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement wall-clock per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
        if samples.is_empty() {
            println!("bench {label}: no samples");
            return self;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        println!(
            "bench {label}: mean {:?}  min {:?}  max {:?}  ({} samples)",
            mean,
            min,
            max,
            samples.len()
        );
        self
    }

    /// Finish the group (formatting no-op, kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the closure given to `bench_function`; times the iteration
/// body.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Run and time `f` once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t = Instant::now();
        black_box(f());
        self.elapsed += t.elapsed();
        self.iters += 1;
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.finish();
        c.bench_function("lone", |b| b.iter(|| 2u64 * 2));
    }

    criterion_group!(benches, trivial);

    #[test]
    fn runs() {
        benches();
    }
}
