//! Problem representation: variables with bounds, linear constraints, and a
//! linear objective.
//!
//! A [`Problem`] is the solver-facing form of an optimization task. The
//! higher-level [`crate::Model`] builds a `Problem` underneath; code that
//! wants full control can construct one directly.
//!
//! # Storage
//!
//! Constraints live in one shared CSR (compressed sparse row) triple —
//! `row_starts` / `row_cols` / `row_vals` — instead of a per-constraint
//! `Vec<(Var, f64)>`. Rows are appended through a [`RowBuilder`], which
//! merges duplicate variables *eagerly* with a sort-free mark/generation
//! scratch, so a finished row is always normalized (sorted-by-insertion,
//! deduplicated, zero coefficients dropped) without ever materializing an
//! intermediate expression. The classic [`LinExpr`]-based
//! [`Problem::add_constraint`] API is kept as a thin compatibility layer
//! that streams the expression's terms through the same builder.
//!
//! Row names are not stored as strings: each row records an interned group
//! id plus an ordinal, and [`Problem::row_name`] formats `group#ordinal`
//! on demand. This removes one `String` allocation per constraint from the
//! model-build hot path.

use crate::expr::{LinExpr, Var};
use std::collections::HashMap;
use std::fmt;

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
        })
    }
}

/// Kind of a variable's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous within its bounds.
    Continuous,
    /// Integer within its bounds (binaries are `Integer` with bounds `[0,1]`).
    Integer,
}

/// Per-variable data.
#[derive(Debug, Clone)]
pub struct VarData {
    /// Human-readable name, used in diagnostics and model dumps.
    pub name: String,
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
    /// Continuous or integer.
    pub kind: VarKind,
}

/// An interned constraint-group name (see [`Problem::group`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupId(pub(crate) u32);

/// Sentinel ordinal for rows named by a bare group string (compat path).
const NO_ORDINAL: u32 = u32::MAX;

/// Per-row metadata (the coefficients live in the shared CSR arrays).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowMeta {
    pub(crate) cmp: Cmp,
    pub(crate) rhs: f64,
    pub(crate) lazy: bool,
    pub(crate) group: u32,
    pub(crate) ordinal: u32,
}

/// Borrowed view of one constraint row: parallel `cols`/`vals` slices into
/// the problem's shared CSR arrays plus the comparison metadata.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    /// Column (variable) indices, strictly increasing in insertion order of
    /// first occurrence; never contains duplicates.
    pub cols: &'a [u32],
    /// Coefficients parallel to `cols`; never zero.
    pub vals: &'a [f64],
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side (any expression constant already folded in).
    pub rhs: f64,
    /// Lazy constraints start outside the working LP and are activated by
    /// the solver only when a candidate solution violates them (typical
    /// for the allocator's interference rows, which are almost all slack).
    pub lazy: bool,
}

impl Row<'_> {
    /// Evaluate the row's left-hand side at assignment `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.cols
            .iter()
            .zip(self.vals)
            .map(|(&c, &a)| a * x[c as usize])
            .sum()
    }

    /// Violation of the row at `x` (0 when satisfied).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let lhs = self.eval(x);
        match self.cmp {
            Cmp::Le => (lhs - self.rhs).max(0.0),
            Cmp::Ge => (self.rhs - lhs).max(0.0),
            Cmp::Eq => (lhs - self.rhs).abs(),
        }
    }

    /// Number of nonzero terms.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the row has no terms.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// A linear (mixed-integer) optimization problem.
///
/// # Examples
///
/// Solve `min x + y  s.t.  x + 2y ≥ 3, 0 ≤ x,y ≤ 2`:
///
/// ```
/// use ilp::{Problem, LinExpr, Cmp};
/// let mut p = Problem::minimize();
/// let x = p.add_var("x", 0.0, 2.0);
/// let y = p.add_var("y", 0.0, 2.0);
/// p.add_constraint("c", LinExpr::from(x) + 2.0 * y, Cmp::Ge, 3.0);
/// p.set_objective(LinExpr::from(x) + y);
/// let sol = p.solve_lp().unwrap();
/// assert!((sol.objective - 1.5).abs() < 1e-6);
/// ```
///
/// The allocation-free path streams terms through a [`RowBuilder`]:
///
/// ```
/// use ilp::{Problem, Cmp};
/// let mut p = Problem::minimize();
/// let x = p.add_binary("x");
/// let y = p.add_binary("y");
/// let g = p.group("excl");
/// p.row(g).term(x, 1.0).term(y, 1.0).finish(Cmp::Le, 1.0);
/// assert_eq!(p.num_constraints(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarData>,
    pub(crate) objective: LinExpr,
    // Shared CSR storage for all constraint rows.
    pub(crate) row_starts: Vec<u32>,
    pub(crate) row_cols: Vec<u32>,
    pub(crate) row_vals: Vec<f64>,
    pub(crate) rows: Vec<RowMeta>,
    // Interned group names and per-group ordinal counters.
    groups: Vec<String>,
    group_next: Vec<u32>,
    group_lookup: HashMap<String, u32>,
    // RowBuilder dedup scratch: `pos[v]` is valid when `mark[v] == gen`.
    mark: Vec<u32>,
    pos: Vec<u32>,
    gen: u32,
}

impl Problem {
    /// Create an empty minimization problem.
    pub fn minimize() -> Self {
        Problem {
            sense: Sense::Minimize,
            vars: Vec::new(),
            objective: LinExpr::new(),
            row_starts: vec![0],
            row_cols: Vec::new(),
            row_vals: Vec::new(),
            rows: Vec::new(),
            groups: Vec::new(),
            group_next: Vec::new(),
            group_lookup: HashMap::new(),
            mark: Vec::new(),
            pos: Vec::new(),
            gen: 0,
        }
    }

    /// Create an empty maximization problem.
    pub fn maximize() -> Self {
        Problem {
            sense: Sense::Maximize,
            ..Problem::minimize()
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with the given bounds.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.push_var(name.into(), lower, upper, VarKind::Continuous)
    }

    /// Add an integer variable with the given bounds.
    pub fn add_int_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.push_var(name.into(), lower, upper, VarKind::Integer)
    }

    /// Add a 0-1 variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.push_var(name.into(), 0.0, 1.0, VarKind::Integer)
    }

    fn push_var(&mut self, name: String, lower: f64, upper: f64, kind: VarKind) -> Var {
        assert!(
            lower <= upper,
            "variable {name}: lower bound {lower} > upper bound {upper}"
        );
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarData {
            name,
            lower,
            upper,
            kind,
        });
        v
    }

    /// Intern a constraint-group name. Rows added under the returned id are
    /// named `group#ordinal` with a per-group running ordinal.
    pub fn group(&mut self, name: &str) -> GroupId {
        if let Some(&g) = self.group_lookup.get(name) {
            return GroupId(g);
        }
        let g = self.groups.len() as u32;
        self.groups.push(name.to_string());
        self.group_next.push(0);
        self.group_lookup.insert(name.to_string(), g);
        GroupId(g)
    }

    /// Number of rows added so far under group `g`.
    pub fn group_count(&self, g: GroupId) -> usize {
        self.group_next[g.0 as usize] as usize
    }

    /// Interned group names with their row counts, in interning order.
    pub fn group_counts(&self) -> impl Iterator<Item = (&str, usize)> {
        self.groups
            .iter()
            .zip(&self.group_next)
            .map(|(n, &c)| (n.as_str(), c as usize))
    }

    /// Start streaming a new constraint row under group `g`. Terms are
    /// merged eagerly; call [`RowBuilder::finish`] (or
    /// [`RowBuilder::finish_lazy`]) to commit the row. Dropping the builder
    /// without finishing rolls the row back.
    pub fn row(&mut self, g: GroupId) -> RowBuilder<'_> {
        let ordinal = self.group_next[g.0 as usize];
        self.group_next[g.0 as usize] += 1;
        self.begin_row(g.0, ordinal)
    }

    fn begin_row(&mut self, group: u32, ordinal: u32) -> RowBuilder<'_> {
        if self.mark.len() < self.vars.len() {
            self.mark.resize(self.vars.len(), 0);
            self.pos.resize(self.vars.len(), 0);
        }
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                self.mark.iter_mut().for_each(|m| *m = 0);
                1
            }
        };
        RowBuilder {
            start: self.row_cols.len(),
            constant: 0.0,
            group,
            ordinal,
            done: false,
            p: self,
        }
    }

    /// Add a linear constraint `expr cmp rhs`. The expression's constant is
    /// folded into the right-hand side. Compatibility layer over the
    /// [`RowBuilder`] streaming path; the expression need not be normalized.
    pub fn add_constraint(&mut self, name: impl Into<String>, expr: LinExpr, cmp: Cmp, rhs: f64) {
        self.add_named(name.into(), expr, cmp, rhs, false);
    }

    /// Add a constraint the solver only activates once violated (see
    /// [`Row::lazy`]). Semantically identical to [`Problem::add_constraint`].
    pub fn add_lazy_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
    ) {
        self.add_named(name.into(), expr, cmp, rhs, true);
    }

    fn add_named(&mut self, name: String, expr: LinExpr, cmp: Cmp, rhs: f64, lazy: bool) {
        let g = self.group(&name);
        // Bare-name rows keep the historical display (no `#n` suffix) but
        // still count toward the group.
        self.group_next[g.0 as usize] += 1;
        let mut b = self.begin_row(g.0, NO_ORDINAL);
        for &(v, c) in &expr.terms {
            b.term(v, c);
        }
        b.constant(expr.constant);
        if lazy {
            b.finish_lazy(cmp, rhs);
        } else {
            b.finish(cmp, rhs);
        }
    }

    /// Borrowed view of constraint row `i`.
    pub fn row_view(&self, i: usize) -> Row<'_> {
        let m = &self.rows[i];
        let s = self.row_starts[i] as usize;
        let e = self.row_starts[i + 1] as usize;
        Row {
            cols: &self.row_cols[s..e],
            vals: &self.row_vals[s..e],
            cmp: m.cmp,
            rhs: m.rhs,
            lazy: m.lazy,
        }
    }

    /// Iterate over all constraint rows.
    pub fn row_views(&self) -> impl Iterator<Item = Row<'_>> {
        (0..self.rows.len()).map(|i| self.row_view(i))
    }

    /// Display handle for the name of row `i` (`group#ordinal`, formatted on
    /// demand — names are not stored per row).
    pub fn row_name(&self, i: usize) -> impl fmt::Display + '_ {
        let m = &self.rows[i];
        RowNameDisplay {
            group: &self.groups[m.group as usize],
            ordinal: m.ordinal,
        }
    }

    /// Evaluate constraint row `i` at `x` and report the violation amount
    /// (0 when satisfied).
    pub fn violation(&self, i: usize, x: &[f64]) -> f64 {
        self.row_view(i).violation(x)
    }

    /// Set the objective expression (replaces any previous one).
    pub fn set_objective(&mut self, mut obj: LinExpr) {
        obj.normalize();
        self.objective = obj;
    }

    /// The current objective.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Total number of nonzero coefficients across all constraint rows.
    pub fn num_nonzeros(&self) -> usize {
        self.row_cols.len()
    }

    /// Number of nonzero terms in the objective.
    pub fn num_objective_terms(&self) -> usize {
        self.objective.len()
    }

    /// Data for variable `v`.
    pub fn var_data(&self, v: Var) -> &VarData {
        &self.vars[v.index()]
    }

    /// Data for every variable, in column order (differential harnesses
    /// rebuild a structurally identical problem from this).
    pub fn var_datas(&self) -> &[VarData] {
        &self.vars
    }

    /// Tighten the bounds of `v` (used by branch & bound).
    pub fn set_bounds(&mut self, v: Var, lower: f64, upper: f64) {
        let d = &mut self.vars[v.index()];
        d.lower = lower;
        d.upper = upper;
    }

    /// Metadata of row `i` (used by presolve to carry names across the
    /// reduction).
    pub(crate) fn row_meta(&self, i: usize) -> RowMeta {
        self.rows[i]
    }

    /// Copy of this problem with the same variables, objective, and interned
    /// group names but no constraint rows (presolve materializes the reduced
    /// row set into it).
    pub(crate) fn clone_shell(&self) -> Problem {
        Problem {
            sense: self.sense,
            vars: self.vars.clone(),
            objective: self.objective.clone(),
            row_starts: vec![0],
            row_cols: Vec::new(),
            row_vals: Vec::new(),
            rows: Vec::new(),
            groups: self.groups.clone(),
            group_next: self.group_next.clone(),
            group_lookup: self.group_lookup.clone(),
            mark: Vec::new(),
            pos: Vec::new(),
            gen: 0,
        }
    }

    /// Append a row whose terms are already deduplicated (presolve streams
    /// surviving rows of an existing problem, which the `RowBuilder`
    /// normalized on first construction).
    pub(crate) fn push_row_raw(&mut self, meta: RowMeta, terms: impl Iterator<Item = (u32, f64)>) {
        for (c, a) in terms {
            self.row_cols.push(c);
            self.row_vals.push(a);
        }
        self.row_starts.push(self.row_cols.len() as u32);
        self.rows.push(meta);
    }

    /// Check whether a full assignment satisfies every constraint and bound
    /// within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (i, d) in self.vars.iter().enumerate() {
            if x[i] < d.lower - tol || x[i] > d.upper + tol {
                return false;
            }
            if d.kind == VarKind::Integer && (x[i] - x[i].round()).abs() > tol {
                return false;
            }
        }
        for r in self.row_views() {
            let lhs = r.eval(x);
            let ok = match r.cmp {
                Cmp::Le => lhs <= r.rhs + tol,
                Cmp::Eq => (lhs - r.rhs).abs() <= tol,
                Cmp::Ge => lhs >= r.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Evaluate the objective at assignment `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.eval(|v| x[v.index()])
    }

    /// Solve the continuous (LP) relaxation of this problem with the
    /// built-in simplex engine; integrality restrictions are ignored.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::LpError`] from the simplex.
    pub fn solve_lp(&self) -> Result<crate::LpSolution, crate::LpError> {
        crate::Simplex::new(self).solve()
    }

    /// Render the problem in an LP-format-like text dump (for debugging and
    /// golden tests).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let sense = match self.sense {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        let _ = writeln!(s, "{sense} {}", self.objective);
        let _ = writeln!(s, "subject to");
        for i in 0..self.rows.len() {
            let r = self.row_view(i);
            let _ = write!(s, "  {}:", self.row_name(i));
            for (k, (&c, &a)) in r.cols.iter().zip(r.vals).enumerate() {
                if k == 0 {
                    let _ = write!(s, " {a}*{}", Var(c));
                } else if a < 0.0 {
                    let _ = write!(s, " - {}*{}", -a, Var(c));
                } else {
                    let _ = write!(s, " + {a}*{}", Var(c));
                }
            }
            if r.cols.is_empty() {
                let _ = write!(s, " 0");
            }
            let _ = writeln!(s, " {} {}", r.cmp, r.rhs);
        }
        let _ = writeln!(s, "bounds");
        for (i, d) in self.vars.iter().enumerate() {
            let _ = writeln!(
                s,
                "  {} <= {} ({}) <= {}",
                d.lower,
                Var(i as u32),
                d.name,
                d.upper
            );
        }
        s
    }
}

struct RowNameDisplay<'a> {
    group: &'a str,
    ordinal: u32,
}

impl fmt::Display for RowNameDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ordinal == NO_ORDINAL {
            f.write_str(self.group)
        } else {
            write!(f, "{}#{}", self.group, self.ordinal)
        }
    }
}

/// Streaming builder for one constraint row (see [`Problem::row`]).
///
/// Terms are appended directly to the problem's shared CSR arrays;
/// duplicate variables are merged in place via a persistent
/// mark/generation scratch, so no sorting or intermediate allocation
/// happens per row.
pub struct RowBuilder<'a> {
    p: &'a mut Problem,
    start: usize,
    constant: f64,
    group: u32,
    ordinal: u32,
    done: bool,
}

impl RowBuilder<'_> {
    /// Add `coeff·var` to the row, merging with any existing term for `var`.
    pub fn term(&mut self, v: Var, coeff: f64) -> &mut Self {
        let j = v.index();
        if self.p.mark[j] == self.p.gen {
            self.p.row_vals[self.p.pos[j] as usize] += coeff;
        } else {
            self.p.mark[j] = self.p.gen;
            self.p.pos[j] = self.p.row_vals.len() as u32;
            self.p.row_cols.push(v.0);
            self.p.row_vals.push(coeff);
        }
        self
    }

    /// Add a constant to the row's left-hand side (folded into the
    /// right-hand side at finish time).
    pub fn constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// Number of distinct variables streamed so far.
    pub fn len(&self) -> usize {
        self.p.row_cols.len() - self.start
    }

    /// True when no terms have been streamed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Commit the row as `lhs cmp rhs`. Further calls on this builder are
    /// a logic error (the builder is inert once finished).
    pub fn finish(&mut self, cmp: Cmp, rhs: f64) {
        self.commit(cmp, rhs, false);
    }

    /// Commit the row as a lazy constraint (see [`Row::lazy`]).
    pub fn finish_lazy(&mut self, cmp: Cmp, rhs: f64) {
        self.commit(cmp, rhs, true);
    }

    fn commit(&mut self, cmp: Cmp, rhs: f64, lazy: bool) {
        debug_assert!(!self.done, "row already finished");
        self.done = true;
        // Compact exact-zero coefficients (cancelled terms) in place.
        let mut w = self.start;
        for r in self.start..self.p.row_vals.len() {
            let a = self.p.row_vals[r];
            if a != 0.0 {
                self.p.row_cols[w] = self.p.row_cols[r];
                self.p.row_vals[w] = a;
                w += 1;
            }
        }
        self.p.row_cols.truncate(w);
        self.p.row_vals.truncate(w);
        self.p.row_starts.push(w as u32);
        self.p.rows.push(RowMeta {
            cmp,
            rhs: rhs - self.constant,
            lazy,
            group: self.group,
            ordinal: self.ordinal,
        });
    }
}

impl Drop for RowBuilder<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Roll back an unfinished row.
            self.p.row_cols.truncate(self.start);
            self.p.row_vals.truncate(self.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folds_into_rhs() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0);
        p.add_constraint("c", LinExpr::from(x) + 4.0, Cmp::Le, 10.0);
        assert_eq!(p.row_view(0).rhs, 6.0);
    }

    #[test]
    fn feasibility_checks_bounds_and_integrality() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_constraint("c", LinExpr::from(x), Cmp::Le, 1.0);
        assert!(p.is_feasible(&[1.0], 1e-6));
        assert!(!p.is_feasible(&[0.5], 1e-6)); // fractional binary
        assert!(!p.is_feasible(&[2.0], 1e-6)); // out of bounds
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn rejects_crossed_bounds() {
        let mut p = Problem::minimize();
        p.add_var("x", 1.0, 0.0);
    }

    #[test]
    fn dump_mentions_everything() {
        let mut p = Problem::minimize();
        let x = p.add_binary("choose");
        p.set_objective(LinExpr::from(x));
        p.add_constraint("only", LinExpr::from(x), Cmp::Eq, 1.0);
        let d = p.dump();
        assert!(d.contains("minimize"));
        assert!(d.contains("only"));
        assert!(d.contains("choose"));
    }

    #[test]
    fn row_builder_merges_duplicates_and_drops_zeros() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        let z = p.add_binary("z");
        let g = p.group("g");
        p.row(g)
            .term(x, 1.0)
            .term(y, 2.0)
            .term(x, 1.5)
            .term(z, 1.0)
            .term(z, -1.0)
            .finish(Cmp::Le, 4.0);
        let r = p.row_view(0);
        assert_eq!(r.cols, &[0, 1]);
        assert_eq!(r.vals, &[2.5, 2.0]);
        assert_eq!(format!("{}", p.row_name(0)), "g#0");
    }

    #[test]
    fn row_builder_matches_linexpr_compat_path() {
        let build = |streamed: bool| {
            let mut p = Problem::minimize();
            let x = p.add_binary("x");
            let y = p.add_binary("y");
            if streamed {
                let g = p.group("c");
                p.row(g)
                    .term(x, 1.0)
                    .term(y, 1.0)
                    .term(y, 1.0)
                    .constant(3.0)
                    .finish(Cmp::Le, 5.0);
            } else {
                let e = LinExpr::from(x) + LinExpr::from(y) + LinExpr::from(y) + 3.0;
                p.add_constraint("c", e, Cmp::Le, 5.0);
            }
            p
        };
        let a = build(true);
        let b = build(false);
        let (ra, rb) = (a.row_view(0), b.row_view(0));
        assert_eq!(ra.cols, rb.cols);
        assert_eq!(ra.vals, rb.vals);
        assert_eq!(ra.rhs, rb.rhs);
    }

    #[test]
    fn dropped_builder_rolls_back() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let g = p.group("g");
        {
            let mut b = p.row(g);
            b.term(x, 1.0);
            // dropped without finish
        }
        assert_eq!(p.num_constraints(), 0);
        assert_eq!(p.num_nonzeros(), 0);
    }

    #[test]
    fn row_names_and_group_counts() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let g = p.group("One");
        p.row(g).term(x, 1.0).finish(Cmp::Eq, 1.0);
        p.row(g).term(x, 1.0).finish(Cmp::Le, 1.0);
        assert_eq!(format!("{}", p.row_name(1)), "One#1");
        assert_eq!(p.group_count(g), 2);
        let counts: Vec<_> = p.group_counts().collect();
        assert_eq!(counts, vec![("One", 2)]);
    }
}
