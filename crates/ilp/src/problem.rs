//! Problem representation: variables with bounds, linear constraints, and a
//! linear objective.
//!
//! A [`Problem`] is the solver-facing form of an optimization task. The
//! higher-level [`crate::Model`] builds a `Problem` underneath; code that
//! wants full control can construct one directly.

use crate::expr::{LinExpr, Var};
use std::fmt;

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
        })
    }
}

/// Kind of a variable's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous within its bounds.
    Continuous,
    /// Integer within its bounds (binaries are `Integer` with bounds `[0,1]`).
    Integer,
}

/// Per-variable data.
#[derive(Debug, Clone)]
pub struct VarData {
    /// Human-readable name, used in diagnostics and model dumps.
    pub name: String,
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
    /// Continuous or integer.
    pub kind: VarKind,
}

/// A single linear constraint `expr cmp rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Optional name, used in diagnostics.
    pub name: String,
    /// Left-hand side (normalized: constant folded into `rhs`).
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
    /// Lazy constraints start outside the working LP and are activated by
    /// the solver only when a candidate solution violates them (typical
    /// for the allocator's interference rows, which are almost all slack).
    pub lazy: bool,
}

/// A linear (mixed-integer) optimization problem.
///
/// # Examples
///
/// Solve `min x + y  s.t.  x + 2y ≥ 3, 0 ≤ x,y ≤ 2`:
///
/// ```
/// use ilp::{Problem, LinExpr, Cmp};
/// let mut p = Problem::minimize();
/// let x = p.add_var("x", 0.0, 2.0);
/// let y = p.add_var("y", 0.0, 2.0);
/// p.add_constraint("c", LinExpr::from(x) + 2.0 * y, Cmp::Ge, 3.0);
/// p.set_objective(LinExpr::from(x) + y);
/// let sol = p.solve_lp().unwrap();
/// assert!((sol.objective - 1.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
}

impl Problem {
    /// Create an empty minimization problem.
    pub fn minimize() -> Self {
        Problem {
            sense: Sense::Minimize,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// Create an empty maximization problem.
    pub fn maximize() -> Self {
        Problem {
            sense: Sense::Maximize,
            ..Problem::minimize()
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with the given bounds.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.push_var(name.into(), lower, upper, VarKind::Continuous)
    }

    /// Add an integer variable with the given bounds.
    pub fn add_int_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.push_var(name.into(), lower, upper, VarKind::Integer)
    }

    /// Add a 0-1 variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.push_var(name.into(), 0.0, 1.0, VarKind::Integer)
    }

    fn push_var(&mut self, name: String, lower: f64, upper: f64, kind: VarKind) -> Var {
        assert!(
            lower <= upper,
            "variable {name}: lower bound {lower} > upper bound {upper}"
        );
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarData {
            name,
            lower,
            upper,
            kind,
        });
        v
    }

    /// Add a linear constraint `expr cmp rhs`. The expression's constant is
    /// folded into the right-hand side.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        mut expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
    ) {
        expr.normalize();
        let adj = rhs - expr.constant;
        expr.constant = 0.0;
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            cmp,
            rhs: adj,
            lazy: false,
        });
    }

    /// Add a constraint the solver only activates once violated (see
    /// [`Constraint::lazy`]). Semantically identical to
    /// [`Problem::add_constraint`].
    pub fn add_lazy_constraint(
        &mut self,
        name: impl Into<String>,
        mut expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
    ) {
        expr.normalize();
        let adj = rhs - expr.constant;
        expr.constant = 0.0;
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            cmp,
            rhs: adj,
            lazy: true,
        });
    }

    /// Evaluate one constraint at `x` and report the violation amount
    /// (0 when satisfied).
    pub fn violation(&self, c: &Constraint, x: &[f64]) -> f64 {
        let lhs = c.expr.eval(|v| x[v.index()]);
        match c.cmp {
            Cmp::Le => (lhs - c.rhs).max(0.0),
            Cmp::Ge => (c.rhs - lhs).max(0.0),
            Cmp::Eq => (lhs - c.rhs).abs(),
        }
    }

    /// Set the objective expression (replaces any previous one).
    pub fn set_objective(&mut self, mut obj: LinExpr) {
        obj.normalize();
        self.objective = obj;
    }

    /// The current objective.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of nonzero terms in the objective.
    pub fn num_objective_terms(&self) -> usize {
        self.objective.len()
    }

    /// Data for variable `v`.
    pub fn var_data(&self, v: Var) -> &VarData {
        &self.vars[v.index()]
    }

    /// Tighten the bounds of `v` (used by branch & bound). Panics if the new
    /// bounds are wider than the old ones would allow crossing.
    pub fn set_bounds(&mut self, v: Var, lower: f64, upper: f64) {
        let d = &mut self.vars[v.index()];
        d.lower = lower;
        d.upper = upper;
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Check whether a full assignment satisfies every constraint and bound
    /// within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (i, d) in self.vars.iter().enumerate() {
            if x[i] < d.lower - tol || x[i] > d.upper + tol {
                return false;
            }
            if d.kind == VarKind::Integer && (x[i] - x[i].round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.eval(|v| x[v.index()]);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
                Cmp::Ge => lhs >= c.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Evaluate the objective at assignment `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.eval(|v| x[v.index()])
    }

    /// Solve the continuous (LP) relaxation of this problem with the
    /// built-in simplex engine; integrality restrictions are ignored.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::LpError`] from the simplex.
    pub fn solve_lp(&self) -> Result<crate::LpSolution, crate::LpError> {
        crate::Simplex::new(self).solve()
    }

    /// Render the problem in an LP-format-like text dump (for debugging and
    /// golden tests).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let sense = match self.sense {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        let _ = writeln!(s, "{sense} {}", self.objective);
        let _ = writeln!(s, "subject to");
        for c in &self.constraints {
            let _ = writeln!(s, "  {}: {} {} {}", c.name, c.expr, c.cmp, c.rhs);
        }
        let _ = writeln!(s, "bounds");
        for (i, d) in self.vars.iter().enumerate() {
            let _ = writeln!(
                s,
                "  {} <= {} ({}) <= {}",
                d.lower,
                Var(i as u32),
                d.name,
                d.upper
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folds_into_rhs() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0);
        p.add_constraint("c", LinExpr::from(x) + 4.0, Cmp::Le, 10.0);
        assert_eq!(p.constraints[0].rhs, 6.0);
        assert_eq!(p.constraints[0].expr.constant, 0.0);
    }

    #[test]
    fn feasibility_checks_bounds_and_integrality() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_constraint("c", LinExpr::from(x), Cmp::Le, 1.0);
        assert!(p.is_feasible(&[1.0], 1e-6));
        assert!(!p.is_feasible(&[0.5], 1e-6)); // fractional binary
        assert!(!p.is_feasible(&[2.0], 1e-6)); // out of bounds
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn rejects_crossed_bounds() {
        let mut p = Problem::minimize();
        p.add_var("x", 1.0, 0.0);
    }

    #[test]
    fn dump_mentions_everything() {
        let mut p = Problem::minimize();
        let x = p.add_binary("choose");
        p.set_objective(LinExpr::from(x));
        p.add_constraint("only", LinExpr::from(x), Cmp::Eq, 1.0);
        let d = p.dump();
        assert!(d.contains("minimize"));
        assert!(d.contains("only"));
        assert!(d.contains("choose"));
    }
}
