//! 0-1 integer-linear programming for the Nova/IXP register allocator.
//!
//! The paper solves register-bank assignment, aggregate coloring, and
//! spilling as a 0-1 ILP described in AMPL and solved by CPLEX. Neither is
//! available here, so this crate provides both halves from scratch:
//!
//! * [`Model`] — an AMPL-like modeling layer with indexed 0-1 variable
//!   families, expression aliases (the paper's "redundant variables"), and
//!   named constraint groups for statistics;
//! * [`Problem`] — the raw variables/constraints/objective representation;
//! * [`Simplex`] — a bounded-variable two-phase revised simplex for the LP
//!   relaxations;
//! * [`solve_milp`] — branch and bound with a rounding heuristic, run to the
//!   paper's 0.01 % optimality gap by default.
//!
//! # Example
//!
//! ```
//! use ilp::{Problem, LinExpr, Cmp, solve_milp, BranchConfig};
//! // max 5x + 4y  s.t.  6x + 4y <= 24, x + 2y <= 6, x,y integer >= 0
//! let mut p = Problem::maximize();
//! let x = p.add_int_var("x", 0.0, 10.0);
//! let y = p.add_int_var("y", 0.0, 10.0);
//! p.add_constraint("c1", 6.0 * x + 4.0 * y, Cmp::Le, 24.0);
//! p.add_constraint("c2", LinExpr::from(x) + 2.0 * y, Cmp::Le, 6.0);
//! p.set_objective(5.0 * x + 4.0 * y);
//! let sol = solve_milp(&p, &BranchConfig::default())?;
//! assert!((sol.objective - 20.0).abs() < 1e-6); // x = 4, y = 0 (LP gives 21)
//! # Ok::<(), ilp::MilpError>(())
//! ```

#![warn(missing_docs)]

mod branch;
mod expr;
mod model;
mod presolve;
mod problem;
mod simplex;

pub use branch::{
    solve_milp, solve_milp_hinted_with, solve_milp_with, solve_rounded, solve_rounded_with,
    BranchConfig, MilpError, MilpSolution, SolveStats,
};
pub use expr::{LinExpr, Var};
pub use model::{Family, Key, Model, ModelStats};
pub use presolve::{presolve, Infeasible, PresolveStats, Presolved};
pub use problem::{Cmp, GroupId, Problem, Row, RowBuilder, Sense, VarData, VarKind};
pub use simplex::{KernelKind, KernelStats, LpError, LpSolution, Simplex};
