//! AMPL-style modeling layer: indexed families of 0-1 variables,
//! expression aliases, and named constraint groups.
//!
//! The paper (§5, Figure 2) describes its ILP through AMPL: an abstract
//! model (`var Move {Exists, Banks, Banks} binary;`) instantiated with data
//! sets. This module provides the same ergonomics in Rust: a [`Model`] owns
//! a [`crate::Problem`] and hands out [`Family`] handles; `fam.var(&mut m,
//! &[p, v, b1, b2])` creates (or looks up) the 0-1 variable `Move[p,v,b1,b2]`.
//!
//! Two AMPL idioms the allocator relies on:
//!
//! * **Aliases.** The paper's `Before`/`After` variables are "redundant
//!   variables ... whose values are uniquely determined by the values of
//!   other variables" (§6). [`Model::alias`] binds an index to a
//!   [`LinExpr`] instead of a fresh column; constraint templates mentioning
//!   the alias expand symbolically, shrinking the generated program without
//!   changing its feasible set.
//! * **Constraint groups.** Constraints carry a group name, and
//!   [`Model::stats`] reports per-group counts — the data behind the
//!   Figure-6/Figure-7 model-size tables.

use crate::expr::{LinExpr, Var};
use crate::problem::{Cmp, GroupId, Problem, RowBuilder};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One dimension of a family index. Program points, temporaries, banks and
/// registers all map onto these two cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    /// Numeric index (program point, temporary id, register number).
    Int(u32),
    /// Symbolic index (bank name); interned as a small id by the caller or
    /// used directly with `Key::sym`.
    Sym(&'static str),
}

impl From<u32> for Key {
    fn from(v: u32) -> Key {
        Key::Int(v)
    }
}

impl From<usize> for Key {
    fn from(v: usize) -> Key {
        Key::Int(v as u32)
    }
}

impl From<&'static str> for Key {
    fn from(v: &'static str) -> Key {
        Key::Sym(v)
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Key::Int(v) => write!(f, "{v}"),
            Key::Sym(s) => f.write_str(s),
        }
    }
}

/// Handle to a named family of indexed entries (variables or aliases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Family(usize);

#[derive(Debug)]
enum Entry {
    Column(Var),
    Alias(LinExpr),
}

#[derive(Debug)]
struct FamilyData {
    name: String,
    entries: HashMap<Vec<Key>, Entry>,
}

/// A model under construction. Wraps a [`Problem`] and provides indexed
/// variable families and named constraint groups.
///
/// # Examples
///
/// ```
/// use ilp::{Model, Cmp, LinExpr};
/// let mut m = Model::minimize();
/// let x = m.family("X");
/// let a = m.binary(x, &["p1".into(), 0u32.into()]);
/// let b = m.binary(x, &["p1".into(), 1u32.into()]);
/// m.constrain("OnePlace", LinExpr::from(a) + b, Cmp::Eq, 1.0);
/// m.add_objective(LinExpr::from(a) * 2.0 + LinExpr::from(b));
/// let sol = m.solve(&Default::default()).unwrap();
/// assert_eq!(sol.objective, 1.0);
/// ```
#[derive(Debug)]
pub struct Model {
    problem: Problem,
    families: Vec<FamilyData>,
    objective: LinExpr,
}

/// Per-model statistics (sizes behind Figures 6 and 7).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelStats {
    /// Total columns in the generated program.
    pub variables: usize,
    /// Total rows.
    pub constraints: usize,
    /// Nonzero terms in the objective.
    pub objective_terms: usize,
    /// Columns per family name.
    pub variables_by_family: Vec<(String, usize)>,
    /// Rows per constraint group.
    pub constraints_by_group: Vec<(String, usize)>,
}

impl Model {
    /// New minimization model.
    pub fn minimize() -> Self {
        Model {
            problem: Problem::minimize(),
            families: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// Declare (or fetch) a family by name.
    pub fn family(&mut self, name: &str) -> Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return Family(i);
        }
        self.families.push(FamilyData {
            name: name.to_string(),
            entries: HashMap::new(),
        });
        Family(self.families.len() - 1)
    }

    /// Create (or fetch) the 0-1 variable `fam[index]`.
    ///
    /// # Panics
    ///
    /// Panics if `fam[index]` was previously bound as an alias.
    pub fn binary(&mut self, fam: Family, index: &[Key]) -> Var {
        let fd = &mut self.families[fam.0];
        if let Some(e) = fd.entries.get(index) {
            return match e {
                Entry::Column(v) => *v,
                Entry::Alias(_) => panic!(
                    "{}[{}] is an alias, not a column",
                    fd.name,
                    fmt_index(index)
                ),
            };
        }
        let name = format!("{}[{}]", fd.name, fmt_index(index));
        let v = self.problem.add_binary(name);
        self.families[fam.0]
            .entries
            .insert(index.to_vec(), Entry::Column(v));
        v
    }

    /// Create (or fetch) a continuous variable `fam[index]` within bounds.
    ///
    /// # Panics
    ///
    /// Panics if `fam[index]` was previously bound as an alias.
    pub fn continuous(&mut self, fam: Family, index: &[Key], lower: f64, upper: f64) -> Var {
        let fd = &mut self.families[fam.0];
        if let Some(e) = fd.entries.get(index) {
            return match e {
                Entry::Column(v) => *v,
                Entry::Alias(_) => panic!(
                    "{}[{}] is an alias, not a column",
                    fd.name,
                    fmt_index(index)
                ),
            };
        }
        let name = format!("{}[{}]", fd.name, fmt_index(index));
        let v = self.problem.add_var(name, lower, upper);
        self.families[fam.0]
            .entries
            .insert(index.to_vec(), Entry::Column(v));
        v
    }

    /// Look up `fam[index]` without creating it.
    pub fn lookup(&self, fam: Family, index: &[Key]) -> Option<LinExpr> {
        self.families[fam.0].entries.get(index).map(|e| match e {
            Entry::Column(v) => LinExpr::from(*v),
            Entry::Alias(e) => e.clone(),
        })
    }

    /// Bind `fam[index]` to an expression alias (the paper's "redundant
    /// variable" elimination). Later [`Model::expr`] calls expand the alias.
    ///
    /// # Panics
    ///
    /// Panics if the entry already exists.
    pub fn alias(&mut self, fam: Family, index: &[Key], expr: LinExpr) {
        let fd = &mut self.families[fam.0];
        let prev = fd.entries.insert(index.to_vec(), Entry::Alias(expr));
        assert!(
            prev.is_none(),
            "{}[{}] bound twice",
            fd.name,
            fmt_index(index)
        );
    }

    /// The expression for `fam[index]`: the column itself, or the alias
    /// expansion.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist — the allocator's templates only
    /// reference entries created by earlier phases, so a miss is a bug.
    pub fn expr(&self, fam: Family, index: &[Key]) -> LinExpr {
        self.lookup(fam, index).unwrap_or_else(|| {
            panic!(
                "{}[{}] not defined",
                self.families[fam.0].name,
                fmt_index(index)
            )
        })
    }

    /// Whether `fam[index]` exists (column or alias).
    pub fn defined(&self, fam: Family, index: &[Key]) -> bool {
        self.families[fam.0].entries.contains_key(index)
    }

    /// Iterate over the indices defined in a family.
    pub fn indices(&self, fam: Family) -> impl Iterator<Item = &Vec<Key>> {
        self.families[fam.0].entries.keys()
    }

    /// Intern a constraint group name on the underlying problem. Rows
    /// created under the returned id are counted and displayed per group
    /// without allocating a name per constraint.
    pub fn group(&mut self, name: &str) -> GroupId {
        self.problem.group(name)
    }

    /// Begin streaming a constraint row under a previously interned group
    /// (the zero-copy path; see [`crate::Problem::row`]).
    pub fn row(&mut self, g: GroupId) -> RowBuilder<'_> {
        self.problem.row(g)
    }

    /// Add a named constraint.
    pub fn constrain(&mut self, group: &str, expr: LinExpr, cmp: Cmp, rhs: f64) {
        let g = self.problem.group(group);
        let mut b = self.problem.row(g);
        for &(v, c) in &expr.terms {
            b.term(v, c);
        }
        b.constant(expr.constant);
        b.finish(cmp, rhs);
    }

    /// Add a named lazy constraint (activated by the solver only when
    /// violated; see [`crate::Problem::add_lazy_constraint`]).
    pub fn constrain_lazy(&mut self, group: &str, expr: LinExpr, cmp: Cmp, rhs: f64) {
        let g = self.problem.group(group);
        let mut b = self.problem.row(g);
        for &(v, c) in &expr.terms {
            b.term(v, c);
        }
        b.constant(expr.constant);
        b.finish_lazy(cmp, rhs);
    }

    /// Accumulate terms into the objective.
    pub fn add_objective(&mut self, expr: LinExpr) {
        self.objective += expr;
    }

    /// Finish and return the underlying problem (objective installed).
    pub fn into_problem(mut self) -> Problem {
        self.problem.set_objective(self.objective);
        self.problem
    }

    /// Borrow the problem with the current objective installed.
    pub fn problem(&mut self) -> &Problem {
        let obj = self.objective.clone();
        self.problem.set_objective(obj);
        &self.problem
    }

    /// Solve by branch and bound.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MilpError`] from the solver.
    pub fn solve(
        &mut self,
        config: &crate::branch::BranchConfig,
    ) -> Result<crate::branch::MilpSolution, crate::branch::MilpError> {
        self.solve_with(config, &nova_obs::Obs::noop())
    }

    /// [`solve`](Self::solve) with structured telemetry (see
    /// [`crate::solve_milp_with`]).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MilpError`] from the solver.
    pub fn solve_with(
        &mut self,
        config: &crate::branch::BranchConfig,
        obs: &nova_obs::Obs,
    ) -> Result<crate::branch::MilpSolution, crate::branch::MilpError> {
        let obj = self.objective.clone();
        self.problem.set_objective(obj);
        crate::branch::solve_milp_with(&self.problem, config, obs)
    }

    /// [`solve_with`](Self::solve_with) warm-started from a previous
    /// solution's variable values (see [`crate::solve_milp_hinted_with`]).
    /// An infeasible or wrong-length hint is ignored.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MilpError`] from the solver.
    pub fn solve_hinted_with(
        &mut self,
        config: &crate::branch::BranchConfig,
        hint: &[f64],
        obs: &nova_obs::Obs,
    ) -> Result<crate::branch::MilpSolution, crate::branch::MilpError> {
        let obj = self.objective.clone();
        self.problem.set_objective(obj);
        crate::branch::solve_milp_hinted_with(&self.problem, config, hint, obs)
    }

    /// Solve only the LP relaxation and round (see
    /// [`crate::solve_rounded`]); telemetry goes to `obs`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MilpError`] from the solver.
    pub fn solve_rounded_with(
        &mut self,
        config: &crate::branch::BranchConfig,
        obs: &nova_obs::Obs,
    ) -> Result<crate::branch::MilpSolution, crate::branch::MilpError> {
        let obj = self.objective.clone();
        self.problem.set_objective(obj);
        crate::branch::solve_rounded_with(&self.problem, config, obs)
    }

    /// Model-size statistics. Takes `&self`: the objective term count is
    /// computed from a normalized copy without installing it on the problem.
    pub fn stats(&self) -> ModelStats {
        let mut obj = self.objective.clone();
        obj.normalize();
        let mut by_family: Vec<(String, usize)> = self
            .families
            .iter()
            .map(|f| {
                let cols = f
                    .entries
                    .values()
                    .filter(|e| matches!(e, Entry::Column(_)))
                    .count();
                (f.name.clone(), cols)
            })
            .collect();
        by_family.sort();
        let mut by_group: Vec<(String, usize)> = self
            .problem
            .group_counts()
            .filter(|&(_, n)| n > 0)
            .map(|(k, n)| (k.to_string(), n))
            .collect();
        by_group.sort();
        ModelStats {
            variables: self.problem.num_vars(),
            constraints: self.problem.num_constraints(),
            objective_terms: obj.len(),
            variables_by_family: by_family,
            constraints_by_group: by_group,
        }
    }

    /// Value of `fam[index]` in a solution vector (aliases are evaluated).
    pub fn value(&self, fam: Family, index: &[Key], values: &[f64]) -> f64 {
        self.expr(fam, index).eval(|v| values[v.index()])
    }
}

fn fmt_index(index: &[Key]) -> String {
    let mut s = String::new();
    for (i, k) in index.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchConfig;

    #[test]
    fn families_dedupe_and_name() {
        let mut m = Model::minimize();
        let f = m.family("Move");
        let v1 = m.binary(f, &[Key::Int(1), Key::Sym("A")]);
        let v2 = m.binary(f, &[Key::Int(1), Key::Sym("A")]);
        assert_eq!(v1, v2);
        let f2 = m.family("Move");
        assert_eq!(f, f2);
    }

    #[test]
    fn alias_expands_in_expr() {
        let mut m = Model::minimize();
        let mv = m.family("Move");
        let before = m.family("Before");
        let a = m.binary(mv, &[Key::Int(0)]);
        let b = m.binary(mv, &[Key::Int(1)]);
        m.alias(before, &[Key::Int(0)], LinExpr::from(a) + b);
        let e = m.expr(before, &[Key::Int(0)]);
        assert_eq!(e.len(), 2);
        // Aliases do not create columns.
        let stats = m.stats();
        assert_eq!(stats.variables, 2);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn alias_rebinding_panics() {
        let mut m = Model::minimize();
        let f = m.family("B");
        m.alias(f, &[Key::Int(0)], LinExpr::constant(0.0));
        m.alias(f, &[Key::Int(0)], LinExpr::constant(1.0));
    }

    #[test]
    fn solve_tiny_model() {
        // Choose exactly one of three slots, minimizing cost 3/1/2.
        let mut m = Model::minimize();
        let x = m.family("X");
        let v: Vec<_> = (0..3u32).map(|i| m.binary(x, &[Key::Int(i)])).collect();
        m.constrain("OneOf", LinExpr::sum(v.iter().copied()), Cmp::Eq, 1.0);
        m.add_objective(3.0 * v[0] + 1.0 * v[1] + 2.0 * v[2]);
        let sol = m.solve(&BranchConfig::default()).unwrap();
        assert_eq!(sol.objective, 1.0);
        assert_eq!(m.value(x, &[Key::Int(1)], &sol.values), 1.0);
    }

    #[test]
    fn stats_group_counts() {
        let mut m = Model::minimize();
        let x = m.family("X");
        let a = m.binary(x, &[Key::Int(0)]);
        let b = m.binary(x, &[Key::Int(1)]);
        m.constrain("G", LinExpr::from(a), Cmp::Le, 1.0);
        m.constrain("G", LinExpr::from(b), Cmp::Le, 1.0);
        m.constrain("H", LinExpr::from(a) + b, Cmp::Ge, 1.0);
        let s = m.stats();
        assert_eq!(s.constraints, 3);
        assert!(s.constraints_by_group.contains(&("G".to_string(), 2)));
        assert!(s.constraints_by_group.contains(&("H".to_string(), 1)));
    }
}
