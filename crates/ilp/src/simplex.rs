//! Bounded-variable revised simplex with a dense product-form basis
//! inverse, dual-simplex warm starting, and incremental row addition.
//!
//! This is the LP engine behind [`crate::branch`]'s branch-and-bound:
//!
//! * **cold solves** run the textbook two-phase primal method: slack basis,
//!   artificials only for rows the slacks cannot cover, Dantzig pricing
//!   with a Bland's-rule anti-cycling fallback, bound flips for the
//!   bounded-variable generalization;
//! * **warm solves** ([`Simplex::resolve_with_bounds`]) reuse the previous
//!   optimal basis after bound changes: the basis stays dual feasible, so
//!   a handful of dual-simplex pivots restores primal feasibility — this
//!   is what makes branch-and-bound nodes cheap;
//! * **row addition** ([`Simplex::add_rows`]) extends the basis with the
//!   new slacks (block-triangular inverse update) without disturbing dual
//!   feasibility — this is what makes lazy-constraint activation cheap.
//!
//! The inverse is dense in the row dimension; the allocator's models stay
//! within a few thousand rows after §8 pruning and lazy activation, a
//! regime where dense is simple and fast enough (the paper used CPLEX;
//! see DESIGN.md).

use crate::problem::{Cmp, Constraint, Problem, Sense};
use std::time::Instant;

/// Numeric tolerance for feasibility and reduced-cost tests.
const TOL: f64 = 1e-7;
/// Smallest pivot magnitude accepted.
const PIVOT_TOL: f64 = 1e-9;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_LIMIT: usize = 200;
/// Pivots between deadline polls (keeps `Instant::now` off the hot path).
const DEADLINE_STRIDE: usize = 64;

/// Why an LP solve did not return an optimum.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// No assignment satisfies the constraints and bounds.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// The solve deadline installed by [`Simplex::set_deadline`] passed
    /// mid-pivot-loop. The workspace state is *not* reusable for a warm
    /// start afterwards.
    TimeLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LpError::Infeasible => "linear program is infeasible",
            LpError::Unbounded => "linear program is unbounded",
            LpError::IterationLimit => "simplex iteration limit exceeded",
            LpError::TimeLimit => "simplex deadline exceeded",
        })
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value (in the problem's original sense).
    pub objective: f64,
    /// Value of each structural variable, indexed by [`crate::Var::index`].
    pub values: Vec<f64>,
    /// Simplex pivots performed.
    pub iterations: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Reusable simplex workspace. The constraint matrix may grow by
/// [`Simplex::add_rows`]; variable bounds change per solve.
pub struct Simplex {
    m: usize,
    n_struct: usize,
    /// Sparse columns: (row, coefficient) pairs.
    cols: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides per row.
    b: Vec<f64>,
    /// Slack column of each row.
    slack_cols: Vec<usize>,
    /// Default bounds per column (structural defaults, slack senses,
    /// artificial `[0, ∞)`); same length as `cols`.
    lower0: Vec<f64>,
    upper0: Vec<f64>,
    /// Phase-2 cost per column (minimization form).
    cost: Vec<f64>,
    obj_constant: f64,
    obj_negate: bool,
    /// Artificial columns created by cold starts (zombified on reset).
    artificials: Vec<usize>,

    // Per-solve state.
    lower: Vec<f64>,
    upper: Vec<f64>,
    x: Vec<f64>,
    state: Vec<ColState>,
    basis: Vec<usize>,
    /// Dense row-major m×m basis inverse.
    binv: Vec<f64>,
    /// Reduced costs (valid when `warm`).
    d: Vec<f64>,
    /// Warm-start state is valid (basis optimal & dual feasible).
    warm: bool,
    /// The last completed solve stayed on the dual-simplex warm path.
    last_warm: bool,
    /// Abort pivot loops past this instant with [`LpError::TimeLimit`].
    deadline: Option<Instant>,
    // Scratch.
    y: Vec<f64>,
    w: Vec<f64>,
    alpha: Vec<f64>,
}

impl Simplex {
    /// Build a workspace for `problem` (all of its constraints).
    pub fn new(problem: &Problem) -> Self {
        Self::with_rows(problem, None)
    }

    /// Build a workspace containing only the selected constraint indices
    /// (used by the lazy-row solver).
    pub fn with_rows(problem: &Problem, rows: Option<&[usize]>) -> Self {
        let idx: Vec<usize> = match rows {
            Some(r) => r.to_vec(),
            None => (0..problem.constraints.len()).collect(),
        };
        let m = idx.len();
        let n_struct = problem.vars.len();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        let mut b = Vec::with_capacity(m);
        let mut slack_cols = Vec::with_capacity(m);
        let mut lower0: Vec<f64> = problem.vars.iter().map(|d| d.lower).collect();
        let mut upper0: Vec<f64> = problem.vars.iter().map(|d| d.upper).collect();
        for (i, &ci) in idx.iter().enumerate() {
            let c = &problem.constraints[ci];
            for &(v, a) in &c.expr.terms {
                cols[v.index()].push((i, a));
            }
            let sc = cols.len();
            cols.push(vec![(i, 1.0)]);
            let (l, u) = slack_bounds(c.cmp);
            lower0.push(l);
            upper0.push(u);
            slack_cols.push(sc);
            b.push(c.rhs);
        }
        let obj_negate = problem.sense == Sense::Maximize;
        let mut cost = vec![0.0; cols.len()];
        for &(v, c) in &problem.objective.terms {
            cost[v.index()] += if obj_negate { -c } else { c };
        }
        Simplex {
            m,
            n_struct,
            cols,
            b,
            slack_cols,
            lower0,
            upper0,
            cost,
            obj_constant: problem.objective.constant,
            obj_negate,
            artificials: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            x: Vec::new(),
            state: Vec::new(),
            basis: Vec::new(),
            binv: Vec::new(),
            d: Vec::new(),
            warm: false,
            last_warm: false,
            deadline: None,
            y: Vec::new(),
            w: Vec::new(),
            alpha: Vec::new(),
        }
    }

    /// Number of rows currently in the working LP.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Install (or clear) a wall-clock deadline. Both pivot loops poll it
    /// every [`DEADLINE_STRIDE`] iterations and abort with
    /// [`LpError::TimeLimit`] once it has passed, so a single long LP
    /// cannot overshoot a solver time budget by more than a few pivots.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Whether the last completed solve was served by the dual-simplex
    /// warm path (no cold two-phase fallback). Used for warm-start-hit
    /// telemetry by the branch-and-bound driver.
    pub fn last_solve_was_warm(&self) -> bool {
        self.last_warm
    }

    fn deadline_hit(&self, iterations: usize) -> bool {
        iterations % DEADLINE_STRIDE == 0
            && self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Append constraints to the working LP. The previous optimal basis is
    /// extended with the new slacks (which may start out of bounds); dual
    /// feasibility is preserved, so the next [`Simplex::resolve_with_bounds`]
    /// repairs primal feasibility with a few dual pivots.
    pub fn add_rows(&mut self, rows: &[&Constraint]) {
        let k = rows.len();
        if k == 0 {
            return;
        }
        let m_old = self.m;
        let m_new = m_old + k;
        // Extend columns and create the new slacks.
        for (off, c) in rows.iter().enumerate() {
            let r = m_old + off;
            for &(v, a) in &c.expr.terms {
                self.cols[v.index()].push((r, a));
            }
            let sc = self.cols.len();
            self.cols.push(vec![(r, 1.0)]);
            let (l, u) = slack_bounds(c.cmp);
            self.lower0.push(l);
            self.upper0.push(u);
            self.cost.push(0.0);
            self.slack_cols.push(sc);
            self.b.push(c.rhs);
            if self.warm {
                self.lower.push(l);
                self.upper.push(u);
                // Slack value = rhs - a·x (possibly out of bounds).
                let mut val = c.rhs;
                for &(v, a) in &c.expr.terms {
                    val -= a * self.x[v.index()];
                }
                self.x.push(val);
                self.state.push(ColState::Basic(r));
                self.basis.push(sc);
                self.d.push(0.0);
            }
        }
        if self.warm {
            // Block-triangular inverse update:
            // B' = [[B, 0], [C_B, I]]  =>  B'^-1 = [[B^-1, 0], [-C_B B^-1, I]].
            let mut nb = vec![0.0f64; m_new * m_new];
            for i in 0..m_old {
                nb[i * m_new..i * m_new + m_old]
                    .copy_from_slice(&self.binv[i * m_old..(i + 1) * m_old]);
            }
            for (off, c) in rows.iter().enumerate() {
                let r = m_old + off;
                for &(v, a) in &c.expr.terms {
                    if let ColState::Basic(p) = self.state[v.index()] {
                        if p < m_old {
                            for col in 0..m_old {
                                nb[r * m_new + col] -= a * self.binv[p * m_old + col];
                            }
                        }
                    }
                }
                nb[r * m_new + r] = 1.0;
            }
            self.binv = nb;
            self.y.resize(m_new, 0.0);
            self.w.resize(m_new, 0.0);
        }
        self.m = m_new;
    }

    /// Cold solve with the problem's own bounds.
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    pub fn solve(&mut self) -> Result<LpSolution, LpError> {
        let lo: Vec<f64> = self.lower0[..self.n_struct].to_vec();
        let hi: Vec<f64> = self.upper0[..self.n_struct].to_vec();
        self.solve_with_bounds(&lo, &hi)
    }

    /// Cold solve with per-structural-variable bound overrides.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve_with_bounds(&mut self, lo: &[f64], hi: &[f64]) -> Result<LpSolution, LpError> {
        assert_eq!(lo.len(), self.n_struct);
        self.warm = false;
        self.last_warm = false;
        for i in 0..self.n_struct {
            if lo[i] > hi[i] + TOL {
                return Err(LpError::Infeasible);
            }
        }
        self.reset_state(lo, hi);
        let mut iterations = 0usize;

        // Phase 1: drive artificials to zero.
        if !self.artificials.is_empty() {
            let mut d = vec![0.0; self.cols.len()];
            let mut any = false;
            for &a in &self.artificials {
                if self.upper[a] > 0.0 {
                    d[a] = 1.0;
                    any = true;
                }
            }
            if any {
                iterations += self.optimize(&d)?;
                let infeas: f64 = self
                    .artificials
                    .iter()
                    .filter(|&&a| self.upper[a] > 0.0)
                    .map(|&a| self.x[a])
                    .sum();
                if infeas > 1e-6 {
                    return Err(LpError::Infeasible);
                }
                for &a in &self.artificials.clone() {
                    self.lower[a] = 0.0;
                    self.upper[a] = 0.0;
                    if !matches!(self.state[a], ColState::Basic(_)) {
                        self.x[a] = 0.0;
                    }
                }
            }
        }

        // Phase 2.
        let d = self.cost.clone();
        iterations += self.optimize(&d)?;
        self.finish_warm(&d);
        Ok(self.extract(iterations))
    }

    /// Warm solve after bound changes (and/or [`Simplex::add_rows`]): dual
    /// simplex from the previous basis, with an automatic cold fallback.
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    pub fn resolve_with_bounds(&mut self, lo: &[f64], hi: &[f64]) -> Result<LpSolution, LpError> {
        if !self.warm {
            return self.solve_with_bounds(lo, hi);
        }
        for i in 0..self.n_struct {
            if lo[i] > hi[i] + TOL {
                return Err(LpError::Infeasible);
            }
        }
        // Install the new bounds; rest nonbasic variables on them. A
        // variable that was fixed in the previous solve carries an
        // arbitrary reduced-cost sign; if its range reopened, restore dual
        // feasibility by resting it on the bound its reduced cost favors.
        self.lower[..self.n_struct].copy_from_slice(lo);
        self.upper[..self.n_struct].copy_from_slice(hi);
        for j in 0..self.cols.len() {
            match self.state[j] {
                ColState::AtLower | ColState::AtUpper => {
                    let (l, u) = (self.lower[j], self.upper[j]);
                    if u - l > 0.0 {
                        let dj = self.d[j];
                        if dj < -TOL {
                            if !u.is_finite() {
                                return self.solve_with_bounds(lo, hi);
                            }
                            self.state[j] = ColState::AtUpper;
                        } else if dj > TOL {
                            if !l.is_finite() {
                                return self.solve_with_bounds(lo, hi);
                            }
                            self.state[j] = ColState::AtLower;
                        }
                    }
                    match self.state[j] {
                        ColState::AtLower => {
                            self.x[j] = if l.is_finite() { l } else { u.min(0.0) };
                        }
                        ColState::AtUpper => {
                            self.x[j] = if u.is_finite() { u } else { l.max(0.0) };
                        }
                        ColState::Basic(_) => unreachable!(),
                    }
                }
                ColState::Basic(_) => {}
            }
        }
        self.recompute_basics();
        match self.dual_simplex() {
            Ok(iterations) => {
                self.last_warm = true;
                Ok(self.extract(iterations))
            }
            Err(DualStop::Infeasible) => {
                // Infeasibility proven on the warm path still counts as a
                // warm-start hit: no cold factorization was needed.
                self.last_warm = true;
                Err(LpError::Infeasible)
            }
            Err(DualStop::Deadline) => Err(LpError::TimeLimit),
            Err(DualStop::Stall) => {
                // Numerical trouble or iteration cap: fall back to cold.
                self.solve_with_bounds(lo, hi)
            }
        }
    }

    /// x_B = B⁻¹ (b − N x_N).
    fn recompute_basics(&mut self) {
        let m = self.m;
        let mut rhs = self.b.clone();
        for j in 0..self.cols.len() {
            if !matches!(self.state[j], ColState::Basic(_)) && self.x[j] != 0.0 {
                for &(i, a) in &self.cols[j] {
                    rhs[i] -= a * self.x[j];
                }
            }
        }
        for r in 0..m {
            let mut acc = 0.0;
            let row = &self.binv[r * m..(r + 1) * m];
            for k in 0..m {
                acc += row[k] * rhs[k];
            }
            self.x[self.basis[r]] = acc;
        }
    }

    /// Store reduced costs and mark the basis reusable.
    fn finish_warm(&mut self, d: &[f64]) {
        let m = self.m;
        for j in 0..m {
            let mut acc = 0.0;
            for i in 0..m {
                let db = d[self.basis[i]];
                if db != 0.0 {
                    acc += db * self.binv[i * m + j];
                }
            }
            self.y[j] = acc;
        }
        self.d.clear();
        self.d.resize(self.cols.len(), 0.0);
        for j in 0..self.cols.len() {
            if matches!(self.state[j], ColState::Basic(_)) {
                continue;
            }
            let mut r = d[j];
            for &(i, a) in &self.cols[j] {
                r -= self.y[i] * a;
            }
            self.d[j] = r;
        }
        self.warm = true;
    }

    fn extract(&self, iterations: usize) -> LpSolution {
        let values: Vec<f64> = self.x[..self.n_struct].to_vec();
        let objective = self.obj_constant
            + values
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let c = self.cost[i];
                    (if self.obj_negate { -c } else { c }) * v
                })
                .sum::<f64>();
        LpSolution { objective, values, iterations }
    }

    /// Install bounds, zombify stale artificials, build the slack basis,
    /// and append artificials for rows the slacks cannot cover.
    fn reset_state(&mut self, lo: &[f64], hi: &[f64]) {
        let n_cols = self.cols.len();
        self.lower.clear();
        self.upper.clear();
        self.lower.resize(n_cols, 0.0);
        self.upper.resize(n_cols, 0.0);
        self.lower[..self.n_struct].copy_from_slice(lo);
        self.upper[..self.n_struct].copy_from_slice(hi);
        for j in self.n_struct..n_cols {
            self.lower[j] = self.lower0[j];
            self.upper[j] = self.upper0[j];
        }
        // Stale artificials become fixed-at-zero zombies.
        for &a in &self.artificials {
            self.lower[a] = 0.0;
            self.upper[a] = 0.0;
        }
        self.x.clear();
        self.x.resize(n_cols, 0.0);
        self.state.clear();
        self.state.resize(n_cols, ColState::AtLower);
        for j in 0..self.n_struct {
            let (l, u) = (self.lower[j], self.upper[j]);
            let (v, st) = initial_point(l, u);
            self.x[j] = v;
            self.state[j] = st;
        }
        // Residuals with structural variables at their resting points.
        let mut resid: Vec<f64> = self.b.clone();
        for j in 0..self.n_struct {
            if self.x[j] != 0.0 {
                for &(i, a) in &self.cols[j] {
                    resid[i] -= a * self.x[j];
                }
            }
        }
        self.basis.clear();
        for i in 0..self.m {
            let s = self.slack_cols[i];
            let (sl, su) = (self.lower[s], self.upper[s]);
            if resid[i] >= sl - TOL && resid[i] <= su + TOL {
                self.x[s] = resid[i];
                self.state[s] = ColState::Basic(i);
                self.basis.push(s);
            } else {
                let parked = if resid[i] < sl { sl } else { su };
                self.x[s] = parked;
                self.state[s] =
                    if parked == sl { ColState::AtLower } else { ColState::AtUpper };
                let need = resid[i] - parked;
                let a = self.cols.len();
                self.cols.push(vec![(i, if need >= 0.0 { 1.0 } else { -1.0 })]);
                self.lower0.push(0.0);
                self.upper0.push(f64::INFINITY);
                self.cost.push(0.0);
                self.lower.push(0.0);
                self.upper.push(f64::INFINITY);
                self.x.push(need.abs());
                self.state.push(ColState::Basic(i));
                self.basis.push(a);
                self.artificials.push(a);
            }
        }
        self.binv.clear();
        self.binv.resize(self.m * self.m, 0.0);
        for i in 0..self.m {
            let j = self.basis[i];
            let diag = self.cols[j].iter().find(|(r, _)| *r == i).map(|(_, a)| *a).unwrap_or(1.0);
            self.binv[i * self.m + i] = 1.0 / diag;
        }
        self.y.clear();
        self.y.resize(self.m, 0.0);
        self.w.clear();
        self.w.resize(self.m, 0.0);
    }

    /// Primal simplex minimizing cost vector `d`. Returns pivot count.
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    fn optimize(&mut self, d: &[f64]) -> Result<usize, LpError> {
        let n_total = self.cols.len();
        let max_iter = 50 * (self.m + n_total) + 10_000;
        let mut iterations = 0;
        let mut degenerate_run = 0usize;
        loop {
            if iterations > max_iter {
                return Err(LpError::IterationLimit);
            }
            if self.deadline_hit(iterations) {
                return Err(LpError::TimeLimit);
            }
            // Pricing: y = d_B · B⁻¹ (skipping zero-cost basics).
            let m = self.m;
            for j in 0..m {
                self.y[j] = 0.0;
            }
            for i in 0..m {
                let db = d[self.basis[i]];
                if db != 0.0 {
                    let row = &self.binv[i * m..(i + 1) * m];
                    for j in 0..m {
                        self.y[j] += db * row[j];
                    }
                }
            }
            let bland = degenerate_run > DEGENERATE_LIMIT;
            let mut entering: Option<(usize, f64, f64)> = None;
            for j in 0..n_total {
                let want_dir = match self.state[j] {
                    ColState::Basic(_) => continue,
                    ColState::AtLower => 1.0,
                    ColState::AtUpper => -1.0,
                };
                if self.upper[j] - self.lower[j] <= 0.0 {
                    continue; // fixed variables can never move
                }
                let mut r = d[j];
                for &(i, a) in &self.cols[j] {
                    r -= self.y[i] * a;
                }
                let improving = if want_dir > 0.0 { r < -TOL } else { r > TOL };
                if improving {
                    if bland {
                        entering = Some((j, r, want_dir));
                        break;
                    }
                    match entering {
                        Some((_, br, _)) if r.abs() <= br.abs() => {}
                        _ => entering = Some((j, r, want_dir)),
                    }
                }
            }
            let Some((j_in, _r, dir)) = entering else {
                return Ok(iterations);
            };
            // Direction w = B⁻¹ A_j.
            for wi in self.w.iter_mut() {
                *wi = 0.0;
            }
            for &(i, a) in &self.cols[j_in] {
                for r_ in 0..m {
                    self.w[r_] += self.binv[r_ * m + i] * a;
                }
            }
            // Ratio test with bound flips.
            let mut t_max = self.upper[j_in] - self.lower[j_in];
            let mut leave: Option<(usize, f64, f64)> = None;
            for i in 0..m {
                let delta = dir * self.w[i];
                let bi = self.basis[i];
                let (t, bound_val) = if delta > PIVOT_TOL {
                    ((self.x[bi] - self.lower[bi]) / delta, self.lower[bi])
                } else if delta < -PIVOT_TOL {
                    ((self.upper[bi] - self.x[bi]) / -delta, self.upper[bi])
                } else {
                    continue;
                };
                if !t.is_finite() {
                    continue;
                }
                let t = t.max(0.0);
                let strictly_better = t < t_max - 1e-9;
                let tie = (t - t_max).abs() <= 1e-9;
                let wins_tie = tie
                    && leave.map_or(false, |(prow, _, bd)| {
                        if bland {
                            bi < self.basis[prow]
                        } else {
                            delta.abs() > bd
                        }
                    });
                if strictly_better || wins_tie {
                    t_max = t.min(t_max);
                    leave = Some((i, bound_val, delta.abs()));
                }
            }
            if t_max.is_infinite() {
                return Err(LpError::Unbounded);
            }
            degenerate_run = if t_max <= TOL { degenerate_run + 1 } else { 0 };
            let t = t_max;
            self.x[j_in] += dir * t;
            for i in 0..m {
                let bi = self.basis[i];
                self.x[bi] -= dir * t * self.w[i];
            }
            match leave {
                None => {
                    self.state[j_in] = match self.state[j_in] {
                        ColState::AtLower => ColState::AtUpper,
                        ColState::AtUpper => ColState::AtLower,
                        b => b,
                    };
                }
                Some((row, bound_val, _)) => {
                    let j_out = self.basis[row];
                    self.x[j_out] = bound_val;
                    self.state[j_out] = if (bound_val - self.lower[j_out]).abs()
                        <= (bound_val - self.upper[j_out]).abs()
                    {
                        ColState::AtLower
                    } else {
                        ColState::AtUpper
                    };
                    let pivot = self.w[row];
                    self.basis[row] = j_in;
                    self.state[j_in] = ColState::Basic(row);
                    self.update_binv(row, pivot);
                }
            }
            iterations += 1;
        }
    }

    /// Product-form update of B⁻¹ after pivoting on `(row, pivot)` with the
    /// direction vector in `self.w`.
    fn update_binv(&mut self, row: usize, pivot: f64) {
        let m = self.m;
        let inv_p = 1.0 / pivot;
        for k in 0..m {
            self.binv[row * m + k] *= inv_p;
        }
        // Split borrows: copy the pivot row once.
        let pr: Vec<f64> = self.binv[row * m..(row + 1) * m].to_vec();
        for i in 0..m {
            if i != row {
                let f = self.w[i];
                if f != 0.0 {
                    let base = i * m;
                    for k in 0..m {
                        self.binv[base + k] -= f * pr[k];
                    }
                }
            }
        }
    }

    /// Dual simplex: repair primal feasibility while keeping reduced costs
    /// valid. Requires `self.d` from a previous optimal solve.
    fn dual_simplex(&mut self) -> Result<usize, DualStop> {
        let m = self.m;
        let n_total = self.cols.len();
        self.alpha.clear();
        self.alpha.resize(n_total, 0.0);
        let max_iter = 4 * (m + 64);
        let mut iterations = 0usize;
        loop {
            if iterations > max_iter {
                return Err(DualStop::Stall);
            }
            if self.deadline_hit(iterations) {
                return Err(DualStop::Deadline);
            }
            // Most-violated basic variable.
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, below)
            for i in 0..m {
                let bi = self.basis[i];
                let v = self.x[bi];
                if v < self.lower[bi] - TOL {
                    let viol = self.lower[bi] - v;
                    if leave.map_or(true, |(_, pv, _)| viol > pv) {
                        leave = Some((i, viol, true));
                    }
                } else if v > self.upper[bi] + TOL {
                    let viol = v - self.upper[bi];
                    if leave.map_or(true, |(_, pv, _)| viol > pv) {
                        leave = Some((i, viol, false));
                    }
                }
            }
            let Some((r, _viol, below)) = leave else {
                return Ok(iterations);
            };
            // Row alphas: α_j = (e_r B⁻¹) · A_j for nonbasic j.
            let rho = &self.binv[r * m..(r + 1) * m];
            for j in 0..n_total {
                if matches!(self.state[j], ColState::Basic(_)) {
                    self.alpha[j] = 0.0;
                    continue;
                }
                // Fixed columns cannot enter, but their reduced costs must
                // still be updated (a later resolve may reopen them), so
                // their alphas are computed too.
                let mut acc = 0.0;
                for &(i, a) in &self.cols[j] {
                    acc += rho[i] * a;
                }
                self.alpha[j] = acc;
            }
            // Dual ratio test.
            let mut enter: Option<(usize, f64, f64)> = None; // (col, theta, |alpha|)
            for j in 0..n_total {
                let a = self.alpha[j];
                if a.abs() < PIVOT_TOL || self.upper[j] - self.lower[j] <= 0.0 {
                    continue;
                }
                let eligible = match (self.state[j], below) {
                    // x_Br must increase: Δx_Br = -α_j Δx_j > 0.
                    (ColState::AtLower, true) => a < 0.0,
                    (ColState::AtUpper, true) => a > 0.0,
                    // x_Br must decrease.
                    (ColState::AtLower, false) => a > 0.0,
                    (ColState::AtUpper, false) => a < 0.0,
                    _ => false,
                };
                if !eligible {
                    continue;
                }
                let theta = (self.d[j] / a).abs();
                let better = match enter {
                    None => true,
                    Some((_, bt, ba)) => {
                        theta < bt - 1e-10 || ((theta - bt).abs() <= 1e-10 && a.abs() > ba)
                    }
                };
                if better {
                    enter = Some((j, theta, a.abs()));
                }
            }
            let Some((e, _theta, _)) = enter else {
                return Err(DualStop::Infeasible);
            };
            // FTRAN for the entering column.
            for wi in self.w.iter_mut() {
                *wi = 0.0;
            }
            for &(i, a) in &self.cols[e] {
                for r_ in 0..m {
                    self.w[r_] += self.binv[r_ * m + i] * a;
                }
            }
            let pivot = self.w[r];
            if pivot.abs() < PIVOT_TOL {
                return Err(DualStop::Stall);
            }
            let j_out = self.basis[r];
            let target = if below { self.lower[j_out] } else { self.upper[j_out] };
            let delta = (self.x[j_out] - target) / pivot;
            // Entering direction must respect its resting bound.
            match self.state[e] {
                ColState::AtLower if delta < -1e-7 => return Err(DualStop::Stall),
                ColState::AtUpper if delta > 1e-7 => return Err(DualStop::Stall),
                _ => {}
            }
            // Apply the primal step.
            self.x[e] += delta;
            for i in 0..m {
                let bi = self.basis[i];
                self.x[bi] -= delta * self.w[i];
            }
            self.x[j_out] = target;
            self.state[j_out] = if (target - self.lower[j_out]).abs()
                <= (target - self.upper[j_out]).abs()
            {
                ColState::AtLower
            } else {
                ColState::AtUpper
            };
            self.basis[r] = e;
            self.state[e] = ColState::Basic(r);
            // Reduced-cost update: d_j -= (d_e/α_e)·α_j; leaving gets -d_e/α_e.
            let theta_signed = self.d[e] / self.alpha[e];
            for j in 0..n_total {
                if self.alpha[j] != 0.0 && j != e {
                    self.d[j] -= theta_signed * self.alpha[j];
                }
            }
            self.d[j_out] = -theta_signed;
            self.d[e] = 0.0;
            self.update_binv(r, pivot);
            iterations += 1;
        }
    }
}

enum DualStop {
    Infeasible,
    Stall,
    Deadline,
}

fn slack_bounds(cmp: Cmp) -> (f64, f64) {
    match cmp {
        Cmp::Le => (0.0, f64::INFINITY),
        Cmp::Ge => (f64::NEG_INFINITY, 0.0),
        Cmp::Eq => (0.0, 0.0),
    }
}

/// Initial resting point for a variable with bounds `[l, u]`.
fn initial_point(l: f64, u: f64) -> (f64, ColState) {
    if l.is_finite() {
        (l, ColState::AtLower)
    } else if u.is_finite() {
        (u, ColState::AtUpper)
    } else {
        (0.0, ColState::AtLower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::{Cmp, Problem};

    fn solve(p: &Problem) -> Result<LpSolution, LpError> {
        Simplex::new(p).solve()
    }

    #[test]
    fn unconstrained_min_at_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 5.0);
        p.set_objective(LinExpr::from(x));
        let s = solve(&p).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn basic_le_constraint() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0);
        let y = p.add_var("y", 0.0, 2.0);
        p.add_constraint("cap", LinExpr::from(x) + y, Cmp::Le, 4.0);
        p.set_objective(LinExpr::from(x) + y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn equality_requires_phase1() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 2.0);
        let y = p.add_var("y", 0.0, 5.0);
        p.add_constraint("eq", LinExpr::from(x) + y, Cmp::Eq, 3.0);
        p.set_objective(LinExpr::from(x) + 2.0 * y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6, "got {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 1.0);
        p.add_constraint("c", LinExpr::from(x), Cmp::Ge, 2.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn ge_constraints() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.add_constraint("c", LinExpr::from(x) + y, Cmp::Ge, 4.0);
        p.set_objective(3.0 * x + 2.0 * y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn warm_resolve_matches_cold_after_bound_changes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let n = 6;
            let mut p = Problem::minimize();
            let vars: Vec<_> = (0..n).map(|i| p.add_var(format!("v{i}"), 0.0, 1.0)).collect();
            for c in 0..4 {
                let mut e = LinExpr::new();
                for &v in &vars {
                    e.add_term(v, rng.gen_range(-3..=3) as f64);
                }
                let sense = if c == 0 { Cmp::Eq } else { Cmp::Le };
                p.add_constraint(format!("c{c}"), e, sense, rng.gen_range(0..=3) as f64);
            }
            let mut obj = LinExpr::new();
            for &v in &vars {
                obj.add_term(v, rng.gen_range(-5..=5) as f64);
            }
            p.set_objective(obj);
            let mut s = Simplex::new(&p);
            if s.solve().is_err() {
                continue;
            }
            // Random sequences of bound fixings: warm must equal cold.
            for _ in 0..8 {
                let mut lo = vec![0.0; n];
                let mut hi = vec![1.0; n];
                for j in 0..n {
                    if rng.gen_bool(0.4) {
                        let v = if rng.gen_bool(0.5) { 0.0 } else { 1.0 };
                        lo[j] = v;
                        hi[j] = v;
                    }
                }
                let warm = s.resolve_with_bounds(&lo, &hi);
                let cold = Simplex::new(&p).solve_with_bounds(&lo, &hi);
                match (warm, cold) {
                    (Ok(a), Ok(b)) => assert!(
                        (a.objective - b.objective).abs() < 1e-6,
                        "trial {trial}: warm {} vs cold {}",
                        a.objective,
                        b.objective
                    ),
                    (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                    (w, c) => panic!("trial {trial}: warm {w:?} vs cold {c:?}"),
                }
            }
        }
    }

    #[test]
    fn add_rows_then_resolve_matches_full_model() {
        // min -x - y - z, rows added lazily one at a time.
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        let z = p.add_binary("z");
        p.set_objective(-1.0 * x - 1.0 * y - 1.0 * z);
        p.add_constraint("c0", LinExpr::from(x) + y, Cmp::Le, 1.0);
        p.add_constraint("c1", LinExpr::from(y) + z, Cmp::Le, 1.0);
        p.add_constraint("c2", LinExpr::from(x) + z, Cmp::Le, 1.0);

        // Start with only c0.
        let mut s = Simplex::with_rows(&p, Some(&[0]));
        let lo = vec![0.0; 3];
        let hi = vec![1.0; 3];
        let first = s.solve_with_bounds(&lo, &hi).unwrap();
        assert!((first.objective + 2.0).abs() < 1e-6, "x+z or y+z free: {}", first.objective);
        // Add the remaining rows and re-solve warm.
        let cs: Vec<&Constraint> = p.constraints()[1..].iter().collect();
        s.add_rows(&cs);
        assert_eq!(s.rows(), 3);
        let warm = s.resolve_with_bounds(&lo, &hi).unwrap();
        let cold = Simplex::new(&p).solve_with_bounds(&lo, &hi).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        // LP optimum is -1.5 (x=y=z=0.5).
        assert!((warm.objective + 1.5).abs() < 1e-6, "got {}", warm.objective);
    }

    #[test]
    fn degenerate_assignment_polytope() {
        let mut p = Problem::minimize();
        let cost = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [3.0, 1.0, 2.0]];
        let mut vars = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                vars.push(p.add_var(format!("x{i}{j}"), 0.0, 1.0));
            }
        }
        for i in 0..3 {
            let e = LinExpr::sum((0..3).map(|j| vars[i * 3 + j]));
            p.add_constraint(format!("item{i}"), e, Cmp::Eq, 1.0);
        }
        for j in 0..3 {
            let e = LinExpr::sum((0..3).map(|i| vars[i * 3 + j]));
            p.add_constraint(format!("slot{j}"), e, Cmp::Le, 1.0);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj += cost[i][j] * vars[i * 3 + j];
            }
        }
        p.set_objective(obj);
        let s = solve(&p).unwrap();
        assert!((s.objective - 6.0).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn repeated_cold_solves_reuse_workspace() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0);
        let y = p.add_var("y", 0.0, 10.0);
        p.add_constraint("c", LinExpr::from(x) + y, Cmp::Ge, 5.0);
        p.set_objective(LinExpr::from(x) + 2.0 * y);
        let mut s = Simplex::new(&p);
        for _ in 0..5 {
            let sol = s.solve_with_bounds(&[0.0, 0.0], &[10.0, 10.0]).unwrap();
            assert!((sol.objective - 5.0).abs() < 1e-6);
            let sol = s.solve_with_bounds(&[0.0, 0.0], &[2.0, 10.0]).unwrap();
            assert!((sol.objective - 8.0).abs() < 1e-6, "got {}", sol.objective);
        }
    }
}
