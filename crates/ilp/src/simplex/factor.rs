//! Basis representations for the revised simplex: a sparse LU
//! factorization with Markowitz threshold pivoting plus a product-form
//! eta file (the default), and the historical dense explicit inverse
//! (kept behind `NOVA_ILP_KERNEL=dense` for differential testing).
//!
//! Both kernels expose the same four operations, all in *basis position /
//! row* index space (`0..m`):
//!
//! * `ftran_col`  — w = B⁻¹ a for a sparse column `a`;
//! * `ftran`      — x = B⁻¹ v for a dense right-hand side, in place;
//! * `btran`      — y = B⁻ᵀ c for a dense right-hand side, in place;
//! * `btran_unit` — ρ = B⁻ᵀ e_r (the pivot row of B⁻¹);
//! * `update`     — basis change: column at position `r` replaced by the
//!   column whose FTRAN image is `w`;
//! * `append`     — dimension growth for lazy row activation: the new
//!   basis is `[[B, 0], [C, I]]` where `C` holds the new rows'
//!   coefficients under the current basic columns.
//!
//! The sparse kernel composes a pipeline `B = LU · op₁ · op₂ · …` where
//! each op is either an eta matrix (one pivot) or an append block (one
//! `add_rows` call). FTRAN runs the pipeline forward, BTRAN backward with
//! transposes. [`SparseKernel::should_refactor`] asks for a fresh LU once
//! the eta file grows past the refactor interval; the driver then calls
//! [`SparseKernel::refactor`] with the current basis columns, collapsing
//! the pipeline.

/// Etas accumulated before a refactorization is requested.
pub(super) const DEFAULT_REFACTOR_INTERVAL: usize = 250;
/// Relative Markowitz threshold: a pivot must be at least this fraction
/// of the largest entry in its column.
const MARKOWITZ_THRESHOLD: f64 = 0.1;
/// Columns with an acceptable pivot examined per elimination step before
/// settling for the best found (Suhl-style bounded search).
const SEARCH_COLS: usize = 4;
/// Entries smaller than this are dropped during elimination.
const DROP_TOL: f64 = 1e-12;
/// A pivot candidate below this magnitude means the basis is numerically
/// singular.
const SINGULAR_TOL: f64 = 1e-11;

/// The basis turned out to be (numerically) singular.
#[derive(Debug)]
pub(super) struct Singular;

/// One elimination step: pivot position, L multipliers, and the U row /
/// column it produced.
struct LuStep {
    /// Pivot row (original row index).
    pr: u32,
    /// Pivot column (basis position).
    pc: u32,
    /// Pivot value.
    diag: f64,
    /// L multipliers `(row, a_row/diag)` for rows eliminated by this step.
    lrow: Vec<(u32, f64)>,
    /// U entries of the pivot row over columns eliminated later: `(basis
    /// position, value)`.
    urow: Vec<(u32, f64)>,
    /// U entries of the pivot column from rows eliminated earlier: `(row,
    /// value)`.
    ucol: Vec<(u32, f64)>,
}

/// A sparse LU factorization of an m×m basis.
pub(super) struct Lu {
    m: usize,
    steps: Vec<LuStep>,
    /// Total stored nonzeros (diagonal + L + U).
    nnz: usize,
}

impl Lu {
    fn identity(m: usize) -> Lu {
        Lu {
            m,
            steps: (0..m)
                .map(|i| LuStep {
                    pr: i as u32,
                    pc: i as u32,
                    diag: 1.0,
                    lrow: Vec::new(),
                    urow: Vec::new(),
                    ucol: Vec::new(),
                })
                .collect(),
            nnz: m,
        }
    }

    /// Solve `B x = v` in place (`v[0..m]`), using `work` as scratch.
    fn ftran(&self, v: &mut [f64], work: &mut [f64]) {
        // Forward: apply the eliminations L⁻¹.
        for s in &self.steps {
            let t = v[s.pr as usize];
            if t != 0.0 {
                for &(r, mult) in &s.lrow {
                    v[r as usize] -= mult * t;
                }
            }
        }
        // Backward: solve U x = v, writing x by basis position into work.
        for s in self.steps.iter().rev() {
            let mut acc = v[s.pr as usize];
            if acc != 0.0 || !s.urow.is_empty() {
                for &(pc, u) in &s.urow {
                    acc -= u * work[pc as usize];
                }
            }
            work[s.pc as usize] = acc / s.diag;
        }
        v[..self.m].copy_from_slice(&work[..self.m]);
    }

    /// Solve `Bᵀ y = v` in place (`v[0..m]`), using `work` as scratch.
    fn btran(&self, v: &mut [f64], work: &mut [f64]) {
        // Forward: solve Uᵀ z = v (v indexed by position, z by row).
        for s in &self.steps {
            let mut acc = v[s.pc as usize];
            if acc != 0.0 || !s.ucol.is_empty() {
                for &(pr, u) in &s.ucol {
                    acc -= u * work[pr as usize];
                }
            }
            work[s.pr as usize] = acc / s.diag;
        }
        // Backward: apply Lᵀ in reverse elimination order.
        for s in self.steps.iter().rev() {
            let mut acc = 0.0;
            for &(r, mult) in &s.lrow {
                acc += mult * work[r as usize];
            }
            if acc != 0.0 {
                work[s.pr as usize] -= acc;
            }
        }
        v[..self.m].copy_from_slice(&work[..self.m]);
    }
}

/// Reusable workspaces for [`factor`], kept across refactorizations so a
/// rebuild allocates nothing once the pools are warm. `spare` recycles
/// the `(u32, f64)` vectors of retired LU steps and eta files.
#[derive(Default)]
pub(super) struct FactorScratch {
    colv: Vec<Vec<(u32, f64)>>,
    rowpat: Vec<Vec<u32>>,
    rowcnt: Vec<u32>,
    colcnt: Vec<u32>,
    row_active: Vec<bool>,
    col_active: Vec<bool>,
    buckets: Vec<Vec<u32>>,
    acc: Vec<f64>,
    stamp: Vec<u32>,
    ucol_accum: Vec<Vec<(u32, f64)>>,
    /// Recycled `(u32, f64)` vectors (from dropped LU steps / eta ops).
    pub(super) spare: Vec<Vec<(u32, f64)>>,
}

impl FactorScratch {
    /// Return a retired vector to the pool.
    pub(super) fn recycle(&mut self, v: Vec<(u32, f64)>) {
        self.spare.push(v);
    }
}

fn clear_resize<T: Clone + Default>(v: &mut Vec<T>, n: usize, fill: T) {
    v.clear();
    v.resize(n, fill);
}

/// Clear nested vectors in place (keeping their capacity) and extend to
/// length `n`.
fn clear_nested<T>(v: &mut Vec<Vec<T>>, n: usize) {
    for inner in v.iter_mut() {
        inner.clear();
    }
    if v.len() > n {
        v.truncate(n);
    } else {
        v.resize_with(n, Vec::new);
    }
}

/// Sparse LU of the basis columns `cols[basis[p]]` (position `p`, entries
/// `(row, val)`) with Markowitz threshold pivoting. Workspaces come from
/// `scratch` and are returned to it, so repeated factorizations reuse
/// their allocations.
pub(super) fn factor(
    m: usize,
    basis: &[usize],
    cols: &[Vec<(usize, f64)>],
    scratch: &mut FactorScratch,
) -> Result<Lu, Singular> {
    debug_assert_eq!(basis.len(), m);
    if m == 0 {
        return Ok(Lu {
            m,
            steps: Vec::new(),
            nnz: 0,
        });
    }
    // Active-submatrix workspace: values live in columns; rows keep a
    // (possibly stale, possibly duplicated) pattern of column ids.
    clear_nested(&mut scratch.colv, m);
    for (j, &bj) in basis.iter().enumerate() {
        scratch.colv[j].extend(cols[bj].iter().map(|&(r, v)| (r as u32, v)));
    }
    clear_nested(&mut scratch.rowpat, m);
    clear_resize(&mut scratch.rowcnt, m, 0u32);
    clear_resize(&mut scratch.colcnt, m, 0u32);
    let FactorScratch {
        colv,
        rowpat,
        rowcnt,
        colcnt,
        row_active,
        col_active,
        buckets,
        acc,
        stamp,
        ucol_accum,
        spare,
    } = scratch;
    let grab = |spare: &mut Vec<Vec<(u32, f64)>>| -> Vec<(u32, f64)> {
        let mut v = spare.pop().unwrap_or_default();
        v.clear();
        v
    };
    for (j, c) in colv.iter().enumerate() {
        colcnt[j] = c.len() as u32;
        for &(r, _) in c {
            rowpat[r as usize].push(j as u32);
            rowcnt[r as usize] += 1;
        }
    }
    clear_resize(row_active, m, true);
    clear_resize(col_active, m, true);
    // Count buckets with lazy deletion: a column may sit in several
    // buckets; entries are validated against `colcnt` on inspection.
    let max_cnt = m + 1;
    clear_nested(buckets, max_cnt + 1);
    for j in 0..m {
        buckets[(colcnt[j] as usize).min(max_cnt)].push(j as u32);
    }
    // Dense accumulator for column updates.
    clear_resize(acc, m, 0.0f64);
    clear_resize(stamp, m, 0u32);
    let mut cur_stamp = 0u32;
    // U-column accumulators, filled as pivot rows shed entries.
    clear_nested(ucol_accum, m);

    let mut steps: Vec<LuStep> = Vec::with_capacity(m);
    let mut nnz = 0usize;

    for _step in 0..m {
        // ---- pivot search ----
        let mut best: Option<(u64, u32, u32, f64)> = None; // (cost, pr, pc, val)
        let mut examined = 0usize;
        'search: for (c, bucket) in buckets.iter_mut().enumerate().skip(1) {
            let mut k = 0;
            while k < bucket.len() {
                let j = bucket[k] as usize;
                if !col_active[j] || colcnt[j] as usize != c {
                    bucket.swap_remove(k);
                    continue;
                }
                k += 1;
                let colmax = colv[j].iter().fold(0.0f64, |mx, &(_, v)| mx.max(v.abs()));
                if colmax < SINGULAR_TOL {
                    return Err(Singular);
                }
                let mut found = false;
                for &(r, v) in &colv[j] {
                    if v.abs() >= MARKOWITZ_THRESHOLD * colmax {
                        let cost = (c as u64 - 1) * (rowcnt[r as usize] as u64 - 1);
                        let better = match best {
                            None => true,
                            Some((bc, _, _, bv)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                        };
                        if better {
                            best = Some((cost, r, j as u32, v));
                        }
                        found = true;
                    }
                }
                if found {
                    examined += 1;
                    let floor = ((c - 1) * (c - 1)) as u64;
                    if let Some((bc, ..)) = best {
                        if bc <= floor || examined >= SEARCH_COLS {
                            break 'search;
                        }
                    }
                }
            }
        }
        let Some((_, pr, pc, pv)) = best else {
            return Err(Singular);
        };
        let (pr_u, pc_u) = (pr as usize, pc as usize);

        // ---- eliminate ----
        col_active[pc_u] = false;
        row_active[pr_u] = false;
        let mut piv_col = std::mem::take(&mut colv[pc_u]);
        let mut lrow: Vec<(u32, f64)> = grab(spare);
        for &(r, v) in &piv_col {
            if r != pr {
                lrow.push((r, v / pv));
                rowcnt[r as usize] -= 1;
            }
        }
        piv_col.clear();
        colv[pc_u] = piv_col;
        // Gather the surviving pivot-row entries; each becomes a U entry
        // and drives one column update.
        cur_stamp += 1;
        let seen = cur_stamp;
        let mut pat = std::mem::take(&mut rowpat[pr_u]);
        let mut urow: Vec<(u32, f64)> = grab(spare);
        for &j32 in &pat {
            let j = j32 as usize;
            if j == pc_u || !col_active[j] || stamp[j] == seen {
                continue;
            }
            stamp[j] = seen;
            let Some(idx) = colv[j].iter().position(|&(r, _)| r == pr) else {
                continue; // stale pattern entry
            };
            let (_, uval) = colv[j].swap_remove(idx);
            colcnt[j] -= 1;
            urow.push((j32, uval));
            ucol_accum[j].push((pr, uval));
            if lrow.is_empty() {
                buckets[(colcnt[j] as usize).min(max_cnt)].push(j32);
                continue;
            }
            // col_j -= mult * uval at each multiplier row, via a dense
            // stamped accumulator (fill-in may appear).
            cur_stamp += 1;
            let tag = cur_stamp;
            for &(r, v) in &colv[j] {
                acc[r as usize] = v;
                stamp[r as usize] = tag;
            }
            for &(r, mult) in &lrow {
                let r_u = r as usize;
                if stamp[r_u] == tag {
                    acc[r_u] -= mult * uval;
                } else {
                    acc[r_u] = -mult * uval;
                    stamp[r_u] = tag;
                    colv[j].push((r, 0.0)); // placeholder, gathered below
                    rowpat[r_u].push(j32);
                    rowcnt[r_u] += 1;
                    colcnt[j] += 1;
                }
            }
            // Gather back, dropping numerically dead entries.
            let mut w = 0;
            for i in 0..colv[j].len() {
                let (r, _) = colv[j][i];
                let v = acc[r as usize];
                if v.abs() > DROP_TOL {
                    colv[j][w] = (r, v);
                    w += 1;
                } else {
                    rowcnt[r as usize] -= 1;
                    colcnt[j] -= 1;
                }
            }
            colv[j].truncate(w);
            // The stamp generation guards double-gathering duplicate rows:
            // a row appears at most once in colv[j] by construction.
            buckets[(colcnt[j] as usize).min(max_cnt)].push(j32);
        }
        pat.clear();
        rowpat[pr_u] = pat;
        let replacement = grab(spare);
        let ucol = std::mem::replace(&mut ucol_accum[pc_u], replacement);
        nnz += 1 + lrow.len() + urow.len();
        steps.push(LuStep {
            pr,
            pc,
            diag: pv,
            lrow,
            urow,
            ucol,
        });
    }
    Ok(Lu { m, steps, nnz })
}

/// Basis-change pipeline entry layered on top of the LU.
enum UpdateOp {
    /// Product-form eta from one pivot: position `r` replaced by a column
    /// whose FTRAN image had value `wr` at `r` and `nz` elsewhere.
    Eta {
        r: u32,
        wr: f64,
        nz: Vec<(u32, f64)>,
    },
    /// Lazy-row append: rows `base..base+rows.len()` joined the basis with
    /// their slacks; `rows[k]` holds the new row's coefficients under the
    /// basic columns at creation time, by basis position.
    Append {
        base: u32,
        rows: Vec<Vec<(u32, f64)>>,
    },
}

/// Sparse basis kernel: LU + eta/append pipeline.
pub(super) struct SparseKernel {
    m: usize,
    lu: Lu,
    ops: Vec<UpdateOp>,
    etas_since_refactor: usize,
    refactor_interval: usize,
    work: Vec<f64>,
    /// Pooled factorization workspaces + recycled step/eta vectors.
    scratch: FactorScratch,
    /// Cumulative telemetry for `SolveStats`.
    pub refactorizations: usize,
    pub total_etas: usize,
    pub lu_fill_nnz: usize,
}

impl SparseKernel {
    pub fn new(refactor_interval: usize) -> SparseKernel {
        SparseKernel {
            m: 0,
            lu: Lu::identity(0),
            ops: Vec::new(),
            etas_since_refactor: 0,
            refactor_interval,
            work: Vec::new(),
            scratch: FactorScratch::default(),
            refactorizations: 0,
            total_etas: 0,
            lu_fill_nnz: 0,
        }
    }

    /// Factor the basis columns `cols[basis[p]]` from scratch, collapsing
    /// the pipeline. The retired LU steps and eta file are recycled into
    /// the scratch pool, so steady-state refactorization is allocation-free.
    pub fn refactor(
        &mut self,
        m: usize,
        basis: &[usize],
        cols: &[Vec<(usize, f64)>],
    ) -> Result<(), Singular> {
        let lu = factor(m, basis, cols, &mut self.scratch)?;
        let old = std::mem::replace(&mut self.lu, lu);
        for mut s in old.steps {
            s.lrow.clear();
            self.scratch.recycle(s.lrow);
            s.urow.clear();
            self.scratch.recycle(s.urow);
            s.ucol.clear();
            self.scratch.recycle(s.ucol);
        }
        for op in self.ops.drain(..) {
            match op {
                UpdateOp::Eta { mut nz, .. } => {
                    nz.clear();
                    self.scratch.recycle(nz);
                }
                UpdateOp::Append { rows, .. } => {
                    for mut r in rows {
                        r.clear();
                        self.scratch.recycle(r);
                    }
                }
            }
        }
        self.m = m;
        self.etas_since_refactor = 0;
        self.refactorizations += 1;
        self.lu_fill_nnz = self.lu_fill_nnz.max(self.lu.nnz);
        self.work.resize(m, 0.0);
        Ok(())
    }

    pub fn should_refactor(&self) -> bool {
        self.etas_since_refactor >= self.refactor_interval
    }

    pub fn set_refactor_interval(&mut self, k: usize) {
        self.refactor_interval = k.max(1);
    }

    /// Postpone a failed refactorization by another full interval (the
    /// existing eta pipeline stays valid).
    pub fn defer_refactor(&mut self) {
        self.etas_since_refactor = 0;
    }

    fn apply_ops_forward(&self, v: &mut [f64]) {
        for op in &self.ops {
            match op {
                UpdateOp::Eta { r, wr, nz } => {
                    let t = v[*r as usize] / wr;
                    if t != 0.0 {
                        for &(i, w) in nz {
                            v[i as usize] -= w * t;
                        }
                    }
                    v[*r as usize] = t;
                }
                UpdateOp::Append { base, rows } => {
                    for (k, crow) in rows.iter().enumerate() {
                        let mut acc = v[*base as usize + k];
                        for &(p, a) in crow {
                            acc -= a * v[p as usize];
                        }
                        v[*base as usize + k] = acc;
                    }
                }
            }
        }
    }

    fn apply_ops_backward(&self, v: &mut [f64]) {
        for op in self.ops.iter().rev() {
            match op {
                UpdateOp::Eta { r, wr, nz } => {
                    let mut acc = v[*r as usize];
                    for &(i, w) in nz {
                        acc -= w * v[i as usize];
                    }
                    v[*r as usize] = acc / wr;
                }
                UpdateOp::Append { base, rows } => {
                    for (k, crow) in rows.iter().enumerate() {
                        let t = v[*base as usize + k];
                        if t != 0.0 {
                            for &(p, a) in crow {
                                v[p as usize] -= a * t;
                            }
                        }
                    }
                }
            }
        }
    }

    /// x = B⁻¹ v, in place.
    pub fn ftran(&mut self, v: &mut [f64]) {
        let m0 = self.lu.m;
        self.lu.ftran(&mut v[..m0], &mut self.work[..m0]);
        self.apply_ops_forward(v);
    }

    /// y = B⁻ᵀ v, in place.
    pub fn btran(&mut self, v: &mut [f64]) {
        self.apply_ops_backward(v);
        let m0 = self.lu.m;
        self.lu.btran(&mut v[..m0], &mut self.work[..m0]);
    }

    /// Record the pivot `(r, w)` as an eta. The eta vector comes from the
    /// recycle pool when one is available.
    pub fn update(&mut self, r: usize, w: &[f64]) {
        let wr = w[r];
        let mut nz = self.scratch.spare.pop().unwrap_or_default();
        nz.clear();
        nz.extend(
            w.iter()
                .enumerate()
                .filter(|&(i, &v)| i != r && v.abs() > DROP_TOL)
                .map(|(i, &v)| (i as u32, v)),
        );
        self.ops.push(UpdateOp::Eta {
            r: r as u32,
            wr,
            nz,
        });
        self.etas_since_refactor += 1;
        self.total_etas += 1;
    }

    /// Extend the basis with appended rows (their slacks basic).
    pub fn append(&mut self, c_rows: Vec<Vec<(u32, f64)>>) {
        let base = self.m;
        self.m += c_rows.len();
        self.work.resize(self.m, 0.0);
        self.ops.push(UpdateOp::Append {
            base: base as u32,
            rows: c_rows,
        });
    }
}

/// Dense explicit-inverse kernel (the pre-sparse engine), kept for
/// differential testing and as a fallback.
pub(super) struct DenseKernel {
    m: usize,
    /// Row-major m×m basis inverse.
    binv: Vec<f64>,
}

impl DenseKernel {
    pub fn new() -> DenseKernel {
        DenseKernel {
            m: 0,
            binv: Vec::new(),
        }
    }

    /// Reset to the inverse of a diagonal basis (`cols[basis[p]]` has a
    /// single entry on row `p`).
    pub fn reset_diag(&mut self, m: usize, basis: &[usize], cols: &[Vec<(usize, f64)>]) {
        self.m = m;
        self.binv.clear();
        self.binv.resize(m * m, 0.0);
        for (p, &bp) in basis.iter().enumerate() {
            let diag = cols[bp]
                .iter()
                .find(|&&(r, _)| r == p)
                .map_or(1.0, |&(_, v)| v);
            self.binv[p * m + p] = 1.0 / diag;
        }
    }

    /// w = B⁻¹ a for a sparse column.
    pub fn ftran_col(&self, col: &[(usize, f64)], out: &mut [f64]) {
        let m = self.m;
        for w in out[..m].iter_mut() {
            *w = 0.0;
        }
        for &(i, a) in col {
            for (r, o) in out[..m].iter_mut().enumerate() {
                *o += self.binv[r * m + i] * a;
            }
        }
    }

    pub fn ftran(&self, v: &mut [f64], work: &mut [f64]) {
        let m = self.m;
        if m == 0 {
            return;
        }
        for (w, row) in work[..m].iter_mut().zip(self.binv.chunks_exact(m)) {
            *w = row.iter().zip(&v[..m]).map(|(a, b)| a * b).sum();
        }
        v[..m].copy_from_slice(&work[..m]);
    }

    pub fn btran(&self, v: &mut [f64], work: &mut [f64]) {
        let m = self.m;
        if m == 0 {
            return;
        }
        for w in work[..m].iter_mut() {
            *w = 0.0;
        }
        for (&c, row) in v[..m].iter().zip(self.binv.chunks_exact(m)) {
            if c != 0.0 {
                for (w, &r) in work[..m].iter_mut().zip(row) {
                    *w += c * r;
                }
            }
        }
        v[..m].copy_from_slice(&work[..m]);
    }

    /// ρ = B⁻ᵀ e_r: row `r` of B⁻¹.
    pub fn btran_unit(&self, r: usize, out: &mut [f64]) {
        out[..self.m].copy_from_slice(&self.binv[r * self.m..(r + 1) * self.m]);
    }

    /// Product-form update after pivoting on `(row, w)`.
    pub fn update(&mut self, row: usize, w: &[f64]) {
        let m = self.m;
        let pivot = w[row];
        let inv_p = 1.0 / pivot;
        for k in 0..m {
            self.binv[row * m + k] *= inv_p;
        }
        let pr: Vec<f64> = self.binv[row * m..(row + 1) * m].to_vec();
        for (i, &f) in w[..m].iter().enumerate() {
            if i != row && f != 0.0 {
                let dst = &mut self.binv[i * m..(i + 1) * m];
                for (d, &p) in dst.iter_mut().zip(&pr) {
                    *d -= f * p;
                }
            }
        }
    }

    /// Block-triangular extension:
    /// `B' = [[B, 0], [C, I]]  ⇒  B'⁻¹ = [[B⁻¹, 0], [-C B⁻¹, I]]`.
    pub fn append(&mut self, c_rows: &[Vec<(u32, f64)>]) {
        let m_old = self.m;
        let m_new = m_old + c_rows.len();
        let mut nb = vec![0.0f64; m_new * m_new];
        for i in 0..m_old {
            nb[i * m_new..i * m_new + m_old]
                .copy_from_slice(&self.binv[i * m_old..(i + 1) * m_old]);
        }
        for (off, crow) in c_rows.iter().enumerate() {
            let r = m_old + off;
            for &(p, a) in crow {
                let p = p as usize;
                if p < m_old {
                    for col in 0..m_old {
                        nb[r * m_new + col] -= a * self.binv[p * m_old + col];
                    }
                }
            }
            nb[r * m_new + r] = 1.0;
        }
        self.binv = nb;
        self.m = m_new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_of(cols: &[Vec<(usize, f64)>]) -> Vec<Vec<f64>> {
        let m = cols.len();
        let mut a = vec![vec![0.0; m]; m];
        for (j, c) in cols.iter().enumerate() {
            for &(r, v) in c {
                a[r][j] = v;
            }
        }
        a
    }

    fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(c, v)| c * v).sum())
            .collect()
    }

    fn mat_t_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = a.len();
        (0..m)
            .map(|j| (0..m).map(|i| a[i][j] * x[i]).sum())
            .collect()
    }

    fn check_solves(cols: &[Vec<(usize, f64)>]) {
        let m = cols.len();
        let basis: Vec<usize> = (0..m).collect();
        let lu = factor(m, &basis, cols, &mut FactorScratch::default()).expect("nonsingular");
        let a = dense_of(cols);
        let mut work = vec![0.0; m];
        // FTRAN: B x = b.
        let b: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
        let mut x = b.clone();
        lu.ftran(&mut x, &mut work);
        let back = mat_vec(&a, &x);
        for i in 0..m {
            assert!(
                (back[i] - b[i]).abs() < 1e-8,
                "ftran row {i}: {} vs {}",
                back[i],
                b[i]
            );
        }
        // BTRAN: Bᵀ y = c.
        let c: Vec<f64> = (0..m).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut y = c.clone();
        lu.btran(&mut y, &mut work);
        let back = mat_t_vec(&a, &y);
        for i in 0..m {
            assert!(
                (back[i] - c[i]).abs() < 1e-8,
                "btran row {i}: {} vs {}",
                back[i],
                c[i]
            );
        }
    }

    #[test]
    fn lu_identity_and_diagonal() {
        let cols: Vec<Vec<(usize, f64)>> = (0..5).map(|i| vec![(i, 1.0 + i as f64)]).collect();
        check_solves(&cols);
    }

    #[test]
    fn lu_random_sparse() {
        // Deterministic pseudo-random sparse nonsingular matrices: diagonal
        // dominance guarantees nonsingularity.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for m in [1usize, 2, 3, 8, 20, 50] {
            let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
            for (j, col) in cols.iter_mut().enumerate() {
                col.push((j, 4.0 + (next() % 5) as f64));
                for _ in 0..(next() % 3) {
                    let r = (next() % m as u64) as usize;
                    if r != j && !col.iter().any(|&(rr, _)| rr == r) {
                        col.push((r, ((next() % 7) as f64) - 3.0));
                    }
                }
            }
            check_solves(&cols);
        }
    }

    #[test]
    fn singular_detected() {
        let basis = vec![0usize, 1];
        // Column of zeros.
        let cols = vec![vec![(0usize, 1.0)], vec![]];
        assert!(factor(2, &basis, &cols, &mut FactorScratch::default()).is_err());
        // Two identical columns.
        let cols = vec![vec![(0usize, 1.0), (1, 2.0)], vec![(0usize, 1.0), (1, 2.0)]];
        assert!(factor(2, &basis, &cols, &mut FactorScratch::default()).is_err());
    }

    #[test]
    fn eta_update_matches_dense() {
        // Start from a diagonal basis, pivot in a new column, and compare
        // sparse FTRAN/BTRAN against the dense kernel on the same ops.
        let m = 4;
        let cols: Vec<Vec<(usize, f64)>> = (0..m).map(|i| vec![(i, 2.0)]).collect();
        let basis: Vec<usize> = (0..m).collect();
        let mut sk = SparseKernel::new(100);
        sk.refactor(m, &basis, &cols).unwrap();
        let mut dk = DenseKernel::new();
        dk.reset_diag(m, &basis, &cols);

        // New column a = [1, 3, 0, 1] enters at position 1.
        let a = vec![(0usize, 1.0), (1, 3.0), (3, 1.0)];
        let mut w = vec![0.0; m];
        for &(i, v) in &a {
            w[i] = v;
        }
        sk.ftran(&mut w);
        let mut wd = vec![0.0; m];
        dk.ftran_col(&a, &mut wd);
        for i in 0..m {
            assert!((w[i] - wd[i]).abs() < 1e-10);
        }
        sk.update(1, &w);
        dk.update(1, &w);

        let b = vec![1.0, -2.0, 0.5, 3.0];
        let mut xs = b.clone();
        sk.ftran(&mut xs);
        let mut xd = b.clone();
        let mut scratch = vec![0.0; m];
        dk.ftran(&mut xd, &mut scratch);
        for i in 0..m {
            assert!(
                (xs[i] - xd[i]).abs() < 1e-9,
                "ftran {i}: {} vs {}",
                xs[i],
                xd[i]
            );
        }
        let mut ys = b.clone();
        sk.btran(&mut ys);
        let mut yd = b.clone();
        dk.btran(&mut yd, &mut scratch);
        for i in 0..m {
            assert!(
                (ys[i] - yd[i]).abs() < 1e-9,
                "btran {i}: {} vs {}",
                ys[i],
                yd[i]
            );
        }
        let mut rho_s = vec![0.0; m];
        rho_s[2] = 1.0;
        sk.btran(&mut rho_s);
        let mut rho_d = vec![0.0; m];
        dk.btran_unit(2, &mut rho_d);
        for i in 0..m {
            assert!((rho_s[i] - rho_d[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn append_matches_dense() {
        let m = 3;
        let cols: Vec<Vec<(usize, f64)>> = (0..m).map(|i| vec![(i, 1.0)]).collect();
        let basis: Vec<usize> = (0..m).collect();
        let mut sk = SparseKernel::new(100);
        sk.refactor(m, &basis, &cols).unwrap();
        let mut dk = DenseKernel::new();
        dk.reset_diag(m, &basis, &cols);
        // Pivot, then append two rows referencing basic positions.
        let a = vec![(0usize, 2.0), (2, 1.0)];
        let mut w = vec![0.0; m];
        for &(i, v) in &a {
            w[i] = v;
        }
        sk.ftran(&mut w);
        sk.update(0, &w);
        dk.update(0, &w);
        let c_rows = vec![vec![(0u32, 1.5), (2, -1.0)], vec![(1u32, 2.0)]];
        sk.append(c_rows.clone());
        dk.append(&c_rows);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut xs = b.clone();
        sk.ftran(&mut xs);
        let mut xd = b.clone();
        let mut scratch = vec![0.0; 5];
        dk.ftran(&mut xd, &mut scratch);
        for i in 0..5 {
            assert!(
                (xs[i] - xd[i]).abs() < 1e-9,
                "ftran {i}: {} vs {}",
                xs[i],
                xd[i]
            );
        }
        let mut ys = b.clone();
        sk.btran(&mut ys);
        let mut yd = b.clone();
        dk.btran(&mut yd, &mut scratch);
        for i in 0..5 {
            assert!(
                (ys[i] - yd[i]).abs() < 1e-9,
                "btran {i}: {} vs {}",
                ys[i],
                yd[i]
            );
        }
    }
}
