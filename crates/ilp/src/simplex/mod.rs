//! Bounded-variable revised simplex on a sparse LU basis factorization,
//! with dual-simplex warm starting and incremental row addition.
//!
//! This is the LP engine behind [`crate::branch`]'s branch-and-bound:
//!
//! * **cold solves** run the textbook two-phase primal method: slack basis,
//!   artificials only for rows the slacks cannot cover, devex pricing with
//!   a candidate list and a Bland's-rule anti-cycling fallback, bound
//!   flips for the bounded-variable generalization;
//! * **warm solves** ([`Simplex::resolve_with_bounds`]) reuse the previous
//!   optimal basis after bound changes: the basis stays dual feasible, so
//!   a handful of dual-simplex pivots restores primal feasibility — this
//!   is what makes branch-and-bound nodes cheap;
//! * **row addition** ([`Simplex::add_rows`]) extends the basis with the
//!   new slacks (a block-triangular append operator on the factorization)
//!   without disturbing dual feasibility — this is what makes
//!   lazy-constraint activation cheap.
//!
//! The basis is represented by a sparse LU factorization with Markowitz
//! threshold pivoting plus a product-form eta file appended per pivot
//! ([`factor`]); FTRAN/BTRAN run through the factors in O(nnz) instead of
//! the O(m²) of the previous dense explicit inverse. The factorization is
//! rebuilt every ~[`factor::DEFAULT_REFACTOR_INTERVAL`] etas, and early
//! whenever the FTRAN and BTRAN images of the pivot element disagree
//! (accumulated error); each rebuild also recomputes the basic solution
//! against `b` and the reduced costs from scratch. Reduced costs are
//! otherwise maintained incrementally from the pivot row, so a pivot costs
//! O(m + nnz(pivot row)) rather than a dense pricing pass. The dense
//! inverse survives behind `NOVA_ILP_KERNEL=dense` ([`KernelKind`]) for
//! differential testing and as a fallback.

mod factor;
mod pricing;

use crate::problem::{Cmp, Problem, Sense};
use factor::{DenseKernel, SparseKernel};
use pricing::{DualPricing, PrimalPricing};
use std::time::Instant;

/// Numeric tolerance for feasibility and reduced-cost tests.
const TOL: f64 = 1e-7;
/// Smallest pivot magnitude accepted.
const PIVOT_TOL: f64 = 1e-9;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_LIMIT: usize = 200;
/// Pivots between deadline polls (keeps `Instant::now` off the hot path).
const DEADLINE_STRIDE: usize = 64;
/// Relative FTRAN-vs-BTRAN disagreement on the pivot element that
/// triggers an early refactorization.
const PIVOT_AGREE_TOL: f64 = 1e-7;
/// Reduced-cost refreshes allowed per `optimize` call before an
/// optimality claim is accepted without re-verification.
const MAX_OPT_REFRESH: usize = 10;

/// Why an LP solve did not return an optimum.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// No assignment satisfies the constraints and bounds.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// The solve deadline installed by [`Simplex::set_deadline`] passed
    /// mid-pivot-loop. The workspace state is *not* reusable for a warm
    /// start afterwards.
    TimeLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LpError::Infeasible => "linear program is infeasible",
            LpError::Unbounded => "linear program is unbounded",
            LpError::IterationLimit => "simplex iteration limit exceeded",
            LpError::TimeLimit => "simplex deadline exceeded",
        })
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value (in the problem's original sense).
    pub objective: f64,
    /// Value of each structural variable, indexed by [`crate::Var::index`].
    pub values: Vec<f64>,
    /// Simplex pivots performed.
    pub iterations: usize,
}

/// Which basis representation a [`Simplex`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Sparse LU with Markowitz pivoting plus an eta file (the default).
    Sparse,
    /// Dense explicit product-form inverse (the pre-LU engine), kept for
    /// differential testing and fallback.
    Dense,
}

impl KernelKind {
    /// Kernel selected by the `NOVA_ILP_KERNEL` environment variable:
    /// `dense` picks [`KernelKind::Dense`], anything else (or unset) the
    /// sparse default.
    pub fn from_env() -> KernelKind {
        match std::env::var("NOVA_ILP_KERNEL") {
            Ok(v) if v.eq_ignore_ascii_case("dense") => KernelKind::Dense,
            _ => KernelKind::Sparse,
        }
    }

    /// Stable lowercase name (used in benchmark JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Sparse => "sparse",
            KernelKind::Dense => "dense",
        }
    }
}

/// Cumulative factorization telemetry for a [`Simplex`] workspace.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// LU factorizations performed (cold starts + periodic rebuilds).
    pub refactorizations: usize,
    /// Eta matrices appended to the factorization (one per basis pivot).
    pub eta_pivots: usize,
    /// Peak nonzero count of an LU factorization (fill-in measure).
    pub lu_fill_nnz: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Basis kernel: the shared FTRAN/BTRAN/update/append interface over the
/// sparse LU engine and the dense explicit inverse.
enum KernelImpl {
    Dense(DenseKernel),
    Sparse(Box<SparseKernel>),
}

struct Kernel {
    imp: KernelImpl,
    scratch: Vec<f64>,
}

impl Kernel {
    fn new(kind: KernelKind) -> Kernel {
        let imp = match kind {
            KernelKind::Dense => KernelImpl::Dense(DenseKernel::new()),
            KernelKind::Sparse => KernelImpl::Sparse(Box::new(SparseKernel::new(
                factor::DEFAULT_REFACTOR_INTERVAL,
            ))),
        };
        Kernel {
            imp,
            scratch: Vec::new(),
        }
    }

    fn kind(&self) -> KernelKind {
        match self.imp {
            KernelImpl::Dense(_) => KernelKind::Dense,
            KernelImpl::Sparse(_) => KernelKind::Sparse,
        }
    }

    /// Install a fresh basis (cold start; `basis[p]` indexes the column of
    /// `cols` basic at position `p`). The cold basis is diagonal by
    /// construction.
    fn reset_basis(
        &mut self,
        m: usize,
        basis: &[usize],
        cols: &[Vec<(usize, f64)>],
    ) -> Result<(), LpError> {
        match &mut self.imp {
            KernelImpl::Dense(dk) => {
                dk.reset_diag(m, basis, cols);
                Ok(())
            }
            KernelImpl::Sparse(sk) => sk
                .refactor(m, basis, cols)
                .map_err(|_| LpError::IterationLimit),
        }
    }

    /// Mid-solve refactorization; returns whether a fresh factorization
    /// was installed. The dense kernel never refactors; a numerically
    /// singular factorization keeps the (valid) eta pipeline and retries
    /// after another interval.
    fn try_refactor(&mut self, m: usize, basis: &[usize], cols: &[Vec<(usize, f64)>]) -> bool {
        match &mut self.imp {
            KernelImpl::Dense(_) => false,
            KernelImpl::Sparse(sk) => match sk.refactor(m, basis, cols) {
                Ok(()) => true,
                Err(_) => {
                    sk.defer_refactor();
                    false
                }
            },
        }
    }

    fn should_refactor(&self) -> bool {
        match &self.imp {
            KernelImpl::Dense(_) => false,
            KernelImpl::Sparse(sk) => sk.should_refactor(),
        }
    }

    /// w = B⁻¹ a for a sparse column (duplicate row entries summed).
    fn ftran_col(&mut self, col: &[(usize, f64)], out: &mut [f64]) {
        match &mut self.imp {
            KernelImpl::Dense(dk) => dk.ftran_col(col, out),
            KernelImpl::Sparse(sk) => {
                for v in out.iter_mut() {
                    *v = 0.0;
                }
                for &(i, a) in col {
                    out[i] += a;
                }
                sk.ftran(out);
            }
        }
    }

    /// x = B⁻¹ v in place.
    fn ftran_dense(&mut self, v: &mut [f64]) {
        match &mut self.imp {
            KernelImpl::Dense(dk) => {
                self.scratch.resize(v.len(), 0.0);
                dk.ftran(v, &mut self.scratch);
            }
            KernelImpl::Sparse(sk) => sk.ftran(v),
        }
    }

    /// y = B⁻ᵀ v in place.
    fn btran_dense(&mut self, v: &mut [f64]) {
        match &mut self.imp {
            KernelImpl::Dense(dk) => {
                self.scratch.resize(v.len(), 0.0);
                dk.btran(v, &mut self.scratch);
            }
            KernelImpl::Sparse(sk) => sk.btran(v),
        }
    }

    /// ρ = B⁻ᵀ e_r (the pivot row of B⁻¹).
    fn btran_unit(&mut self, r: usize, out: &mut [f64]) {
        match &mut self.imp {
            KernelImpl::Dense(dk) => dk.btran_unit(r, out),
            KernelImpl::Sparse(sk) => {
                for v in out.iter_mut() {
                    *v = 0.0;
                }
                out[r] = 1.0;
                sk.btran(out);
            }
        }
    }

    /// Basis change at position `r`; `w` is the entering column's FTRAN
    /// image.
    fn update(&mut self, r: usize, w: &[f64]) {
        match &mut self.imp {
            KernelImpl::Dense(dk) => dk.update(r, w),
            KernelImpl::Sparse(sk) => sk.update(r, w),
        }
    }

    /// Extend the basis for appended rows; `c_rows[k]` holds row k's
    /// coefficients under the current basic columns, by basis position.
    fn append(&mut self, c_rows: Vec<Vec<(u32, f64)>>) {
        match &mut self.imp {
            KernelImpl::Dense(dk) => dk.append(&c_rows),
            KernelImpl::Sparse(sk) => sk.append(c_rows),
        }
    }

    fn set_refactor_interval(&mut self, k: usize) {
        if let KernelImpl::Sparse(sk) = &mut self.imp {
            sk.set_refactor_interval(k);
        }
    }

    fn stats(&self) -> KernelStats {
        match &self.imp {
            KernelImpl::Dense(_) => KernelStats::default(),
            KernelImpl::Sparse(sk) => KernelStats {
                refactorizations: sk.refactorizations,
                eta_pivots: sk.total_etas,
                lu_fill_nnz: sk.lu_fill_nnz,
            },
        }
    }
}

/// Reusable simplex workspace. The constraint matrix may grow by
/// [`Simplex::add_rows`]; variable bounds change per solve.
pub struct Simplex {
    m: usize,
    n_struct: usize,
    /// Sparse columns: (row, coefficient) pairs.
    cols: Vec<Vec<(usize, f64)>>,
    /// Row-major mirror of `cols`: (column, coefficient) pairs per row,
    /// used to form pivot-row alphas from a sparse BTRAN image.
    rows_idx: Vec<Vec<(u32, f64)>>,
    /// Right-hand sides per row.
    b: Vec<f64>,
    /// Slack column of each row.
    slack_cols: Vec<usize>,
    /// Default bounds per column (structural defaults, slack senses,
    /// artificial `[0, ∞)`); same length as `cols`.
    lower0: Vec<f64>,
    upper0: Vec<f64>,
    /// Phase-2 cost per column (minimization form).
    cost: Vec<f64>,
    obj_constant: f64,
    obj_negate: bool,
    /// Artificial columns created by cold starts (zombified on reset).
    artificials: Vec<usize>,

    // Per-solve state.
    lower: Vec<f64>,
    upper: Vec<f64>,
    x: Vec<f64>,
    state: Vec<ColState>,
    basis: Vec<usize>,
    /// Basis factorization kernel (sparse LU + etas, or dense inverse).
    kernel: Kernel,
    /// Reduced costs, maintained incrementally from the pivot row (valid
    /// for warm starts when `warm`).
    d: Vec<f64>,
    /// Active cost vector of the current pivot loop (phase-1 artificial
    /// costs or a copy of `cost`); a reusable buffer so per-node solves
    /// never clone the cost vector.
    ccur: Vec<f64>,
    /// Reusable right-hand-side buffer for [`Simplex::recompute_basics`].
    rhs_buf: Vec<f64>,
    /// Warm-start state is valid (basis optimal & dual feasible).
    warm: bool,
    /// The last completed solve stayed on the dual-simplex warm path.
    last_warm: bool,
    /// Abort pivot loops past this instant with [`LpError::TimeLimit`].
    deadline: Option<Instant>,
    // Pricing state.
    primal_pricing: PrimalPricing,
    dual_pricing: DualPricing,
    // Scratch.
    y: Vec<f64>,
    w: Vec<f64>,
    alpha: Vec<f64>,
    /// Columns with nonzero `alpha` this pivot.
    touched: Vec<u32>,
    /// Generation marks validating `alpha` entries.
    mark: Vec<u64>,
    mark_gen: u64,
}

impl Simplex {
    /// Build a workspace for `problem` (all of its constraints), using the
    /// kernel selected by `NOVA_ILP_KERNEL`.
    pub fn new(problem: &Problem) -> Self {
        Self::with_rows(problem, None)
    }

    /// Build a workspace containing only the selected constraint indices
    /// (used by the lazy-row solver).
    pub fn with_rows(problem: &Problem, rows: Option<&[usize]>) -> Self {
        Self::with_rows_kernel(problem, rows, KernelKind::from_env())
    }

    /// Build a workspace with an explicit basis kernel choice (used by
    /// differential tests; normal callers go through the `NOVA_ILP_KERNEL`
    /// environment default).
    pub fn with_rows_kernel(problem: &Problem, rows: Option<&[usize]>, kind: KernelKind) -> Self {
        let idx: Vec<usize> = match rows {
            Some(r) => r.to_vec(),
            None => (0..problem.num_constraints()).collect(),
        };
        let m = idx.len();
        let n_struct = problem.vars.len();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        let mut b = Vec::with_capacity(m);
        let mut slack_cols = Vec::with_capacity(m);
        let mut lower0: Vec<f64> = problem.vars.iter().map(|d| d.lower).collect();
        let mut upper0: Vec<f64> = problem.vars.iter().map(|d| d.upper).collect();
        for (i, &ci) in idx.iter().enumerate() {
            let r = problem.row_view(ci);
            for (&v, &a) in r.cols.iter().zip(r.vals) {
                cols[v as usize].push((i, a));
            }
            let sc = cols.len();
            cols.push(vec![(i, 1.0)]);
            let (l, u) = slack_bounds(r.cmp);
            lower0.push(l);
            upper0.push(u);
            slack_cols.push(sc);
            b.push(r.rhs);
        }
        let mut rows_idx: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        for (j, col) in cols.iter().enumerate() {
            for &(i, a) in col {
                rows_idx[i].push((j as u32, a));
            }
        }
        let obj_negate = problem.sense == Sense::Maximize;
        let mut cost = vec![0.0; cols.len()];
        for &(v, c) in &problem.objective.terms {
            cost[v.index()] += if obj_negate { -c } else { c };
        }
        Simplex {
            m,
            n_struct,
            cols,
            rows_idx,
            b,
            slack_cols,
            lower0,
            upper0,
            cost,
            obj_constant: problem.objective.constant,
            obj_negate,
            artificials: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            x: Vec::new(),
            state: Vec::new(),
            basis: Vec::new(),
            kernel: Kernel::new(kind),
            d: Vec::new(),
            ccur: Vec::new(),
            rhs_buf: Vec::new(),
            warm: false,
            last_warm: false,
            deadline: None,
            primal_pricing: PrimalPricing::new(),
            dual_pricing: DualPricing::new(),
            y: Vec::new(),
            w: Vec::new(),
            alpha: Vec::new(),
            touched: Vec::new(),
            mark: Vec::new(),
            mark_gen: 0,
        }
    }

    /// Number of rows currently in the working LP.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Which basis kernel this workspace runs on.
    pub fn kernel_kind(&self) -> KernelKind {
        self.kernel.kind()
    }

    /// Cumulative factorization counters (zeros on the dense kernel).
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats()
    }

    /// Override the eta-file length that triggers refactorization (test
    /// hook; no effect on the dense kernel).
    pub fn set_refactor_interval(&mut self, etas: usize) {
        self.kernel.set_refactor_interval(etas);
    }

    /// Install (or clear) a wall-clock deadline. Both pivot loops poll it
    /// every [`DEADLINE_STRIDE`] iterations and abort with
    /// [`LpError::TimeLimit`] once it has passed, so a single long LP
    /// cannot overshoot a solver time budget by more than a few pivots.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Whether the last completed solve was served by the dual-simplex
    /// warm path (no cold two-phase fallback). Used for warm-start-hit
    /// telemetry by the branch-and-bound driver.
    pub fn last_solve_was_warm(&self) -> bool {
        self.last_warm
    }

    fn deadline_hit(&self, iterations: usize) -> bool {
        iterations.is_multiple_of(DEADLINE_STRIDE)
            && self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Append constraints to the working LP. The previous optimal basis is
    /// extended with the new slacks (which may start out of bounds) by an
    /// append operator on the factorization; dual feasibility is
    /// preserved, so the next [`Simplex::resolve_with_bounds`] repairs
    /// primal feasibility with a few dual pivots.
    pub fn add_rows(&mut self, problem: &Problem, rows: &[usize]) {
        let k = rows.len();
        if k == 0 {
            return;
        }
        let m_old = self.m;
        let m_new = m_old + k;
        // Extend columns and create the new slacks.
        let mut c_rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(k);
        for (off, &ci) in rows.iter().enumerate() {
            let c = problem.row_view(ci);
            let r = m_old + off;
            let mut row_pat: Vec<(u32, f64)> = Vec::with_capacity(c.cols.len() + 1);
            let mut crow: Vec<(u32, f64)> = Vec::new();
            for (&v, &a) in c.cols.iter().zip(c.vals) {
                self.cols[v as usize].push((r, a));
                row_pat.push((v, a));
                if self.warm {
                    if let ColState::Basic(p) = self.state[v as usize] {
                        crow.push((p as u32, a));
                    }
                }
            }
            let sc = self.cols.len();
            self.cols.push(vec![(r, 1.0)]);
            row_pat.push((sc as u32, 1.0));
            self.rows_idx.push(row_pat);
            let (l, u) = slack_bounds(c.cmp);
            self.lower0.push(l);
            self.upper0.push(u);
            self.cost.push(0.0);
            self.slack_cols.push(sc);
            self.b.push(c.rhs);
            if self.warm {
                self.lower.push(l);
                self.upper.push(u);
                // Slack value = rhs - a·x (possibly out of bounds).
                let mut val = c.rhs;
                for (&v, &a) in c.cols.iter().zip(c.vals) {
                    val -= a * self.x[v as usize];
                }
                self.x.push(val);
                self.state.push(ColState::Basic(r));
                self.basis.push(sc);
                self.d.push(0.0);
                c_rows.push(crow);
            }
        }
        if self.warm {
            // Block-triangular extension:
            // B' = [[B, 0], [C_B, I]]; the kernel appends it as a pipeline
            // operator (sparse) or rebuilds the inverse block (dense).
            self.kernel.append(c_rows);
            self.y.resize(m_new, 0.0);
            self.w.resize(m_new, 0.0);
        }
        self.m = m_new;
    }

    /// Cold solve with the problem's own bounds.
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    pub fn solve(&mut self) -> Result<LpSolution, LpError> {
        let lo: Vec<f64> = self.lower0[..self.n_struct].to_vec();
        let hi: Vec<f64> = self.upper0[..self.n_struct].to_vec();
        self.solve_with_bounds(&lo, &hi)
    }

    /// Cold solve with per-structural-variable bound overrides.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve_with_bounds(&mut self, lo: &[f64], hi: &[f64]) -> Result<LpSolution, LpError> {
        assert_eq!(lo.len(), self.n_struct);
        self.warm = false;
        self.last_warm = false;
        for i in 0..self.n_struct {
            if lo[i] > hi[i] + TOL {
                return Err(LpError::Infeasible);
            }
        }
        self.reset_state(lo, hi)?;
        let mut iterations = 0usize;

        // Phase 1: drive artificials to zero.
        if !self.artificials.is_empty() {
            self.ccur.clear();
            self.ccur.resize(self.cols.len(), 0.0);
            let mut any = false;
            for &a in &self.artificials {
                if self.upper[a] > 0.0 {
                    self.ccur[a] = 1.0;
                    any = true;
                }
            }
            if any {
                iterations += self.optimize()?;
                let infeas: f64 = self
                    .artificials
                    .iter()
                    .filter(|&&a| self.upper[a] > 0.0)
                    .map(|&a| self.x[a])
                    .sum();
                if infeas > 1e-6 {
                    return Err(LpError::Infeasible);
                }
                for &a in &self.artificials.clone() {
                    self.lower[a] = 0.0;
                    self.upper[a] = 0.0;
                    if !matches!(self.state[a], ColState::Basic(_)) {
                        self.x[a] = 0.0;
                    }
                }
            }
        }

        // Phase 2.
        self.load_phase2_cost();
        iterations += self.optimize()?;
        self.finish_warm();
        Ok(self.extract(iterations))
    }

    /// Warm solve after bound changes (and/or [`Simplex::add_rows`]): dual
    /// simplex from the previous basis, with an automatic cold fallback.
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    pub fn resolve_with_bounds(&mut self, lo: &[f64], hi: &[f64]) -> Result<LpSolution, LpError> {
        if !self.warm {
            return self.solve_with_bounds(lo, hi);
        }
        for i in 0..self.n_struct {
            if lo[i] > hi[i] + TOL {
                return Err(LpError::Infeasible);
            }
        }
        // Install the new bounds; rest nonbasic variables on them. A
        // variable that was fixed in the previous solve carries an
        // arbitrary reduced-cost sign; if its range reopened, restore dual
        // feasibility by resting it on the bound its reduced cost favors.
        self.lower[..self.n_struct].copy_from_slice(lo);
        self.upper[..self.n_struct].copy_from_slice(hi);
        for j in 0..self.cols.len() {
            match self.state[j] {
                ColState::AtLower | ColState::AtUpper => {
                    let (l, u) = (self.lower[j], self.upper[j]);
                    if u - l > 0.0 {
                        let dj = self.d[j];
                        if dj < -TOL {
                            if !u.is_finite() {
                                return self.solve_with_bounds(lo, hi);
                            }
                            self.state[j] = ColState::AtUpper;
                        } else if dj > TOL {
                            if !l.is_finite() {
                                return self.solve_with_bounds(lo, hi);
                            }
                            self.state[j] = ColState::AtLower;
                        }
                    }
                    match self.state[j] {
                        ColState::AtLower => {
                            self.x[j] = if l.is_finite() { l } else { u.min(0.0) };
                        }
                        ColState::AtUpper => {
                            self.x[j] = if u.is_finite() { u } else { l.max(0.0) };
                        }
                        ColState::Basic(_) => unreachable!(),
                    }
                }
                ColState::Basic(_) => {}
            }
        }
        self.recompute_basics();
        match self.dual_simplex() {
            Ok(iterations) => {
                self.last_warm = true;
                Ok(self.extract(iterations))
            }
            Err(DualStop::Infeasible) => {
                // Infeasibility proven on the warm path still counts as a
                // warm-start hit: no cold factorization was needed.
                self.last_warm = true;
                Err(LpError::Infeasible)
            }
            Err(DualStop::Deadline) => Err(LpError::TimeLimit),
            Err(DualStop::Stall) => {
                // Numerical trouble or iteration cap: fall back to cold.
                self.solve_with_bounds(lo, hi)
            }
        }
    }

    /// Load the phase-2 objective into the active cost buffer.
    fn load_phase2_cost(&mut self) {
        self.ccur.clear();
        self.ccur.extend_from_slice(&self.cost);
    }

    /// x_B = B⁻¹ (b − N x_N).
    fn recompute_basics(&mut self) {
        let m = self.m;
        let mut rhs = std::mem::take(&mut self.rhs_buf);
        rhs.clear();
        rhs.extend_from_slice(&self.b);
        for j in 0..self.cols.len() {
            if !matches!(self.state[j], ColState::Basic(_)) && self.x[j] != 0.0 {
                for &(i, a) in &self.cols[j] {
                    rhs[i] -= a * self.x[j];
                }
            }
        }
        self.kernel.ftran_dense(&mut rhs[..m]);
        for (&xb, &v) in self.basis[..m].iter().zip(&rhs[..m]) {
            self.x[xb] = v;
        }
        self.rhs_buf = rhs;
    }

    /// Recompute every reduced cost from scratch for the active cost
    /// vector: y = B⁻ᵀ c_B, then d_j = c_j − y·A_j over the nonbasic
    /// columns.
    fn refresh_reduced_costs(&mut self) {
        let m = self.m;
        self.y.resize(m.max(self.y.len()), 0.0);
        for i in 0..m {
            self.y[i] = self.ccur[self.basis[i]];
        }
        self.kernel.btran_dense(&mut self.y[..m]);
        self.d.clear();
        self.d.resize(self.cols.len(), 0.0);
        for (j, col) in self.cols.iter().enumerate() {
            if matches!(self.state[j], ColState::Basic(_)) {
                continue;
            }
            let mut r = self.ccur[j];
            for &(i, a) in col {
                r -= self.y[i] * a;
            }
            self.d[j] = r;
        }
    }

    /// Store reduced costs and mark the basis reusable.
    fn finish_warm(&mut self) {
        self.refresh_reduced_costs();
        self.warm = true;
    }

    fn extract(&self, iterations: usize) -> LpSolution {
        let values: Vec<f64> = self.x[..self.n_struct].to_vec();
        let objective = self.obj_constant
            + values
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let c = self.cost[i];
                    (if self.obj_negate { -c } else { c }) * v
                })
                .sum::<f64>();
        LpSolution {
            objective,
            values,
            iterations,
        }
    }

    /// Install bounds, zombify stale artificials, build the slack basis,
    /// and append artificials for rows the slacks cannot cover.
    fn reset_state(&mut self, lo: &[f64], hi: &[f64]) -> Result<(), LpError> {
        let n_cols = self.cols.len();
        self.lower.clear();
        self.upper.clear();
        self.lower.resize(n_cols, 0.0);
        self.upper.resize(n_cols, 0.0);
        self.lower[..self.n_struct].copy_from_slice(lo);
        self.upper[..self.n_struct].copy_from_slice(hi);
        for j in self.n_struct..n_cols {
            self.lower[j] = self.lower0[j];
            self.upper[j] = self.upper0[j];
        }
        // Stale artificials become fixed-at-zero zombies.
        for &a in &self.artificials {
            self.lower[a] = 0.0;
            self.upper[a] = 0.0;
        }
        self.x.clear();
        self.x.resize(n_cols, 0.0);
        self.state.clear();
        self.state.resize(n_cols, ColState::AtLower);
        for j in 0..self.n_struct {
            let (l, u) = (self.lower[j], self.upper[j]);
            let (v, st) = initial_point(l, u);
            self.x[j] = v;
            self.state[j] = st;
        }
        // Residuals with structural variables at their resting points.
        let mut resid: Vec<f64> = self.b.clone();
        for j in 0..self.n_struct {
            if self.x[j] != 0.0 {
                for &(i, a) in &self.cols[j] {
                    resid[i] -= a * self.x[j];
                }
            }
        }
        self.basis.clear();
        for (i, &res) in resid[..self.m].iter().enumerate() {
            let s = self.slack_cols[i];
            let (sl, su) = (self.lower[s], self.upper[s]);
            if res >= sl - TOL && res <= su + TOL {
                self.x[s] = res;
                self.state[s] = ColState::Basic(i);
                self.basis.push(s);
            } else {
                let parked = if res < sl { sl } else { su };
                self.x[s] = parked;
                self.state[s] = if parked == sl {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                let need = res - parked;
                let a = self.cols.len();
                let coeff = if need >= 0.0 { 1.0 } else { -1.0 };
                self.cols.push(vec![(i, coeff)]);
                self.rows_idx[i].push((a as u32, coeff));
                self.lower0.push(0.0);
                self.upper0.push(f64::INFINITY);
                self.cost.push(0.0);
                self.lower.push(0.0);
                self.upper.push(f64::INFINITY);
                self.x.push(need.abs());
                self.state.push(ColState::Basic(i));
                self.basis.push(a);
                self.artificials.push(a);
            }
        }
        self.kernel.reset_basis(self.m, &self.basis, &self.cols)?;
        self.y.clear();
        self.y.resize(self.m, 0.0);
        self.w.clear();
        self.w.resize(self.m, 0.0);
        Ok(())
    }

    /// Form the pivot-row alphas α_j = ρ·A_j from the BTRAN image ρ in
    /// `self.y`, accumulating over the rows where ρ is nonzero. Results
    /// land in `self.alpha` for the columns listed in `self.touched`
    /// (entries validated by `self.mark`); untouched columns have an
    /// exact zero alpha.
    fn pivot_row_alphas(&mut self) {
        let n_cols = self.cols.len();
        self.alpha.resize(n_cols, 0.0);
        self.mark.resize(n_cols, 0);
        self.mark_gen += 1;
        let gen = self.mark_gen;
        self.touched.clear();
        let Simplex {
            rows_idx,
            y,
            alpha,
            mark,
            touched,
            m,
            ..
        } = self;
        for i in 0..*m {
            let rho = y[i];
            if rho.abs() <= 1e-11 {
                continue;
            }
            for &(j32, a) in &rows_idx[i] {
                let j = j32 as usize;
                if mark[j] != gen {
                    mark[j] = gen;
                    alpha[j] = rho * a;
                    touched.push(j32);
                } else {
                    alpha[j] += rho * a;
                }
            }
        }
    }

    /// Refactor the sparse basis from its current columns, then restore
    /// accuracy: recompute x_B against `b` and the reduced costs for the
    /// active cost vector. No-op on the dense kernel.
    fn refactor_and_refresh(&mut self) {
        if self.kernel.try_refactor(self.m, &self.basis, &self.cols) {
            self.recompute_basics();
            self.refresh_reduced_costs();
        }
    }

    /// Primal simplex minimizing the active cost vector (`self.ccur`).
    /// Returns pivot count.
    ///
    /// Reduced costs are maintained incrementally (one BTRAN of the pivot
    /// row per pivot); entering columns come from the devex candidate
    /// list. An optimality claim with pivots since the last refresh is
    /// re-verified against freshly computed reduced costs.
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    fn optimize(&mut self) -> Result<usize, LpError> {
        let n_total = self.cols.len();
        let m = self.m;
        let max_iter = 50 * (m + n_total) + 10_000;
        let mut iterations = 0;
        let mut degenerate_run = 0usize;
        let mut refreshes = 0usize;
        let mut dirty = false; // pivots since the last reduced-cost refresh
        let mut bland_refreshed = false;
        self.refresh_reduced_costs();
        self.primal_pricing.reset(n_total);
        loop {
            if iterations > max_iter {
                return Err(LpError::IterationLimit);
            }
            if self.deadline_hit(iterations) {
                return Err(LpError::TimeLimit);
            }
            let bland = degenerate_run > DEGENERATE_LIMIT;
            if bland && !bland_refreshed {
                // Bland's rule terminates only with exact reduced-cost
                // signs; start it from a fresh computation.
                self.refresh_reduced_costs();
                self.primal_pricing.invalidate();
                dirty = false;
                bland_refreshed = true;
            }
            let entering: Option<usize> = if bland {
                (0..n_total).find(|&j| {
                    self.upper[j] - self.lower[j] > 0.0
                        && match self.state[j] {
                            ColState::AtLower => self.d[j] < -TOL,
                            ColState::AtUpper => self.d[j] > TOL,
                            ColState::Basic(_) => false,
                        }
                })
            } else {
                match self
                    .primal_pricing
                    .select(&self.d, &self.state, &self.lower, &self.upper)
                {
                    Some(j) => Some(j),
                    None => {
                        if self.primal_pricing.refill(
                            &self.d,
                            &self.state,
                            &self.lower,
                            &self.upper,
                        ) {
                            self.primal_pricing.select(
                                &self.d,
                                &self.state,
                                &self.lower,
                                &self.upper,
                            )
                        } else {
                            None
                        }
                    }
                }
            };
            let Some(j_in) = entering else {
                // No improving column under the maintained reduced costs.
                // If pivots happened since the last exact computation,
                // verify the claim on fresh values before accepting it.
                if dirty && refreshes < MAX_OPT_REFRESH {
                    self.refresh_reduced_costs();
                    self.primal_pricing.invalidate();
                    dirty = false;
                    refreshes += 1;
                    continue;
                }
                return Ok(iterations);
            };
            let dir = match self.state[j_in] {
                ColState::AtLower => 1.0,
                ColState::AtUpper => -1.0,
                ColState::Basic(_) => unreachable!("entering column is basic"),
            };
            // Direction w = B⁻¹ A_j.
            self.kernel.ftran_col(&self.cols[j_in], &mut self.w[..m]);
            // Ratio test with bound flips.
            let mut t_max = self.upper[j_in] - self.lower[j_in];
            let mut leave: Option<(usize, f64, f64)> = None;
            for i in 0..m {
                let delta = dir * self.w[i];
                let bi = self.basis[i];
                let (t, bound_val) = if delta > PIVOT_TOL {
                    ((self.x[bi] - self.lower[bi]) / delta, self.lower[bi])
                } else if delta < -PIVOT_TOL {
                    ((self.upper[bi] - self.x[bi]) / -delta, self.upper[bi])
                } else {
                    continue;
                };
                if !t.is_finite() {
                    continue;
                }
                let t = t.max(0.0);
                let strictly_better = t < t_max - 1e-9;
                let tie = (t - t_max).abs() <= 1e-9;
                let wins_tie = tie
                    && leave.is_some_and(|(prow, _, bd)| {
                        if bland {
                            bi < self.basis[prow]
                        } else {
                            delta.abs() > bd
                        }
                    });
                if strictly_better || wins_tie {
                    t_max = t.min(t_max);
                    leave = Some((i, bound_val, delta.abs()));
                }
            }
            if t_max.is_infinite() {
                return Err(LpError::Unbounded);
            }
            degenerate_run = if t_max <= TOL { degenerate_run + 1 } else { 0 };
            let t = t_max;
            self.x[j_in] += dir * t;
            for i in 0..m {
                let bi = self.basis[i];
                self.x[bi] -= dir * t * self.w[i];
            }
            match leave {
                None => {
                    // Bound flip: the basis (and hence every reduced cost)
                    // is unchanged.
                    self.state[j_in] = match self.state[j_in] {
                        ColState::AtLower => ColState::AtUpper,
                        ColState::AtUpper => ColState::AtLower,
                        b => b,
                    };
                }
                Some((row, bound_val, _)) => {
                    let pivot = self.w[row];
                    // Pivot row via BTRAN, then incremental reduced costs:
                    // d_j ← d_j − (d_q/α_q)·α_j.
                    self.kernel.btran_unit(row, &mut self.y[..m]);
                    self.pivot_row_alphas();
                    let alpha_q = self.alpha.get(j_in).copied().unwrap_or(0.0);
                    let mismatch = (alpha_q - pivot).abs() > PIVOT_AGREE_TOL * (1.0 + pivot.abs());
                    let theta_d = self.d[j_in] / pivot;
                    for &j32 in &self.touched {
                        let j = j32 as usize;
                        if j != j_in && !matches!(self.state[j], ColState::Basic(_)) {
                            self.d[j] -= theta_d * self.alpha[j];
                        }
                    }
                    let j_out = self.basis[row];
                    self.primal_pricing.update(
                        j_in,
                        j_out,
                        pivot,
                        &self.alpha,
                        &self.touched,
                        &self.state,
                    );
                    self.d[j_out] = -theta_d;
                    self.d[j_in] = 0.0;
                    dirty = true;
                    self.x[j_out] = bound_val;
                    self.state[j_out] = if (bound_val - self.lower[j_out]).abs()
                        <= (bound_val - self.upper[j_out]).abs()
                    {
                        ColState::AtLower
                    } else {
                        ColState::AtUpper
                    };
                    self.basis[row] = j_in;
                    self.state[j_in] = ColState::Basic(row);
                    self.kernel.update(row, &self.w[..m]);
                    if mismatch || self.kernel.should_refactor() {
                        self.refactor_and_refresh();
                        self.primal_pricing.invalidate();
                        dirty = false;
                    }
                }
            }
            iterations += 1;
        }
    }

    /// Dual simplex: repair primal feasibility while keeping reduced costs
    /// valid. Requires `self.d` from a previous optimal solve. Leaving
    /// rows are picked by dual devex weights; the pivot row comes from one
    /// sparse BTRAN.
    fn dual_simplex(&mut self) -> Result<usize, DualStop> {
        let m = self.m;
        let max_iter = 4 * (m + 64);
        let mut iterations = 0usize;
        self.load_phase2_cost();
        self.dual_pricing.reset(m);
        loop {
            if iterations > max_iter {
                return Err(DualStop::Stall);
            }
            if self.deadline_hit(iterations) {
                return Err(DualStop::Deadline);
            }
            // Leaving row: weighted most-violated basic variable.
            let Some((r, below)) =
                self.dual_pricing
                    .select_row(&self.x, &self.basis, &self.lower, &self.upper)
            else {
                return Ok(iterations);
            };
            // Pivot row alphas: α_j = (B⁻ᵀ e_r) · A_j for nonbasic j.
            // Fixed columns cannot enter, but their reduced costs must
            // still be updated (a later resolve may reopen them), so their
            // alphas are computed too.
            self.kernel.btran_unit(r, &mut self.y[..m]);
            self.pivot_row_alphas();
            // Dual ratio test over the touched columns (untouched ones
            // have an exact zero alpha and are never eligible).
            let mut enter: Option<(usize, f64, f64)> = None; // (col, theta, |alpha|)
            for &j32 in &self.touched {
                let j = j32 as usize;
                let a = self.alpha[j];
                if a.abs() < PIVOT_TOL || self.upper[j] - self.lower[j] <= 0.0 {
                    continue;
                }
                let eligible = match (self.state[j], below) {
                    // x_Br must increase: Δx_Br = -α_j Δx_j > 0.
                    (ColState::AtLower, true) => a < 0.0,
                    (ColState::AtUpper, true) => a > 0.0,
                    // x_Br must decrease.
                    (ColState::AtLower, false) => a > 0.0,
                    (ColState::AtUpper, false) => a < 0.0,
                    _ => false,
                };
                if !eligible {
                    continue;
                }
                let theta = (self.d[j] / a).abs();
                let better = match enter {
                    None => true,
                    Some((be, bt, ba)) => {
                        theta < bt - 1e-10
                            || ((theta - bt).abs() <= 1e-10
                                && (a.abs() > ba || (a.abs() == ba && j < be)))
                    }
                };
                if better {
                    enter = Some((j, theta, a.abs()));
                }
            }
            let Some((e, _theta, _)) = enter else {
                return Err(DualStop::Infeasible);
            };
            // FTRAN for the entering column.
            self.kernel.ftran_col(&self.cols[e], &mut self.w[..m]);
            let pivot = self.w[r];
            if pivot.abs() < PIVOT_TOL {
                return Err(DualStop::Stall);
            }
            let j_out = self.basis[r];
            let target = if below {
                self.lower[j_out]
            } else {
                self.upper[j_out]
            };
            let delta = (self.x[j_out] - target) / pivot;
            // Entering direction must respect its resting bound.
            match self.state[e] {
                ColState::AtLower if delta < -1e-7 => return Err(DualStop::Stall),
                ColState::AtUpper if delta > 1e-7 => return Err(DualStop::Stall),
                _ => {}
            }
            // Apply the primal step.
            self.x[e] += delta;
            for i in 0..m {
                let bi = self.basis[i];
                self.x[bi] -= delta * self.w[i];
            }
            self.x[j_out] = target;
            self.state[j_out] =
                if (target - self.lower[j_out]).abs() <= (target - self.upper[j_out]).abs() {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
            // Accumulated-error detector: the pivot element computed by
            // FTRAN must agree with the BTRAN row pass.
            let mismatch = (self.alpha[e] - pivot).abs() > PIVOT_AGREE_TOL * (1.0 + pivot.abs());
            self.dual_pricing.update(r, &self.w[..m]);
            self.basis[r] = e;
            self.state[e] = ColState::Basic(r);
            // Reduced-cost update: d_j -= (d_e/α_e)·α_j; leaving gets -d_e/α_e.
            let theta_signed = self.d[e] / self.alpha[e];
            for &j32 in &self.touched {
                let j = j32 as usize;
                if j != e && self.alpha[j] != 0.0 {
                    self.d[j] -= theta_signed * self.alpha[j];
                }
            }
            self.d[j_out] = -theta_signed;
            self.d[e] = 0.0;
            self.kernel.update(r, &self.w[..m]);
            if mismatch || self.kernel.should_refactor() {
                self.refactor_and_refresh();
            }
            iterations += 1;
        }
    }
}

enum DualStop {
    Infeasible,
    Stall,
    Deadline,
}

fn slack_bounds(cmp: Cmp) -> (f64, f64) {
    match cmp {
        Cmp::Le => (0.0, f64::INFINITY),
        Cmp::Ge => (f64::NEG_INFINITY, 0.0),
        Cmp::Eq => (0.0, 0.0),
    }
}

/// Initial resting point for a variable with bounds `[l, u]`.
fn initial_point(l: f64, u: f64) -> (f64, ColState) {
    if l.is_finite() {
        (l, ColState::AtLower)
    } else if u.is_finite() {
        (u, ColState::AtUpper)
    } else {
        (0.0, ColState::AtLower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::{Cmp, Problem};

    fn solve(p: &Problem) -> Result<LpSolution, LpError> {
        Simplex::new(p).solve()
    }

    #[test]
    fn unconstrained_min_at_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 5.0);
        p.set_objective(LinExpr::from(x));
        let s = solve(&p).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn basic_le_constraint() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0);
        let y = p.add_var("y", 0.0, 2.0);
        p.add_constraint("cap", LinExpr::from(x) + y, Cmp::Le, 4.0);
        p.set_objective(LinExpr::from(x) + y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn equality_requires_phase1() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 2.0);
        let y = p.add_var("y", 0.0, 5.0);
        p.add_constraint("eq", LinExpr::from(x) + y, Cmp::Eq, 3.0);
        p.set_objective(LinExpr::from(x) + 2.0 * y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6, "got {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 1.0);
        p.add_constraint("c", LinExpr::from(x), Cmp::Ge, 2.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective(LinExpr::from(x));
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn ge_constraints() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.add_constraint("c", LinExpr::from(x) + y, Cmp::Ge, 4.0);
        p.set_objective(3.0 * x + 2.0 * y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn warm_resolve_matches_cold_after_bound_changes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let n = 6;
            let mut p = Problem::minimize();
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_var(format!("v{i}"), 0.0, 1.0))
                .collect();
            for c in 0..4 {
                let mut e = LinExpr::new();
                for &v in &vars {
                    e.add_term(v, rng.gen_range(-3..=3) as f64);
                }
                let sense = if c == 0 { Cmp::Eq } else { Cmp::Le };
                p.add_constraint(format!("c{c}"), e, sense, rng.gen_range(0..=3) as f64);
            }
            let mut obj = LinExpr::new();
            for &v in &vars {
                obj.add_term(v, rng.gen_range(-5..=5) as f64);
            }
            p.set_objective(obj);
            let mut s = Simplex::new(&p);
            if s.solve().is_err() {
                continue;
            }
            // Random sequences of bound fixings: warm must equal cold.
            for _ in 0..8 {
                let mut lo = vec![0.0; n];
                let mut hi = vec![1.0; n];
                for j in 0..n {
                    if rng.gen_bool(0.4) {
                        let v = if rng.gen_bool(0.5) { 0.0 } else { 1.0 };
                        lo[j] = v;
                        hi[j] = v;
                    }
                }
                let warm = s.resolve_with_bounds(&lo, &hi);
                let cold = Simplex::new(&p).solve_with_bounds(&lo, &hi);
                match (warm, cold) {
                    (Ok(a), Ok(b)) => assert!(
                        (a.objective - b.objective).abs() < 1e-6,
                        "trial {trial}: warm {} vs cold {}",
                        a.objective,
                        b.objective
                    ),
                    (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                    (w, c) => panic!("trial {trial}: warm {w:?} vs cold {c:?}"),
                }
            }
        }
    }

    #[test]
    fn add_rows_then_resolve_matches_full_model() {
        // min -x - y - z, rows added lazily one at a time.
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        let z = p.add_binary("z");
        p.set_objective(-1.0 * x - 1.0 * y - 1.0 * z);
        p.add_constraint("c0", LinExpr::from(x) + y, Cmp::Le, 1.0);
        p.add_constraint("c1", LinExpr::from(y) + z, Cmp::Le, 1.0);
        p.add_constraint("c2", LinExpr::from(x) + z, Cmp::Le, 1.0);

        // Start with only c0.
        let mut s = Simplex::with_rows(&p, Some(&[0]));
        let lo = vec![0.0; 3];
        let hi = vec![1.0; 3];
        let first = s.solve_with_bounds(&lo, &hi).unwrap();
        assert!(
            (first.objective + 2.0).abs() < 1e-6,
            "x+z or y+z free: {}",
            first.objective
        );
        // Add the remaining rows and re-solve warm.
        s.add_rows(&p, &[1, 2]);
        assert_eq!(s.rows(), 3);
        let warm = s.resolve_with_bounds(&lo, &hi).unwrap();
        let cold = Simplex::new(&p).solve_with_bounds(&lo, &hi).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        // LP optimum is -1.5 (x=y=z=0.5).
        assert!(
            (warm.objective + 1.5).abs() < 1e-6,
            "got {}",
            warm.objective
        );
    }

    #[test]
    fn degenerate_assignment_polytope() {
        let mut p = Problem::minimize();
        let cost = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [3.0, 1.0, 2.0]];
        let mut vars = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                vars.push(p.add_var(format!("x{i}{j}"), 0.0, 1.0));
            }
        }
        for i in 0..3 {
            let e = LinExpr::sum((0..3).map(|j| vars[i * 3 + j]));
            p.add_constraint(format!("item{i}"), e, Cmp::Eq, 1.0);
        }
        for j in 0..3 {
            let e = LinExpr::sum((0..3).map(|i| vars[i * 3 + j]));
            p.add_constraint(format!("slot{j}"), e, Cmp::Le, 1.0);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj += cost[i][j] * vars[i * 3 + j];
            }
        }
        p.set_objective(obj);
        let s = solve(&p).unwrap();
        assert!((s.objective - 6.0).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn repeated_cold_solves_reuse_workspace() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0);
        let y = p.add_var("y", 0.0, 10.0);
        p.add_constraint("c", LinExpr::from(x) + y, Cmp::Ge, 5.0);
        p.set_objective(LinExpr::from(x) + 2.0 * y);
        let mut s = Simplex::new(&p);
        for _ in 0..5 {
            let sol = s.solve_with_bounds(&[0.0, 0.0], &[10.0, 10.0]).unwrap();
            assert!((sol.objective - 5.0).abs() < 1e-6);
            let sol = s.solve_with_bounds(&[0.0, 0.0], &[2.0, 10.0]).unwrap();
            assert!((sol.objective - 8.0).abs() < 1e-6, "got {}", sol.objective);
        }
    }

    #[test]
    fn dense_and_sparse_agree_on_random_lps() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..30 {
            let n = 8;
            let mut p = if trial % 2 == 0 {
                Problem::minimize()
            } else {
                Problem::maximize()
            };
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_var(format!("v{i}"), 0.0, 3.0))
                .collect();
            for c in 0..5 {
                let mut e = LinExpr::new();
                for &v in &vars {
                    if rng.gen_bool(0.5) {
                        e.add_term(v, rng.gen_range(-3..=3) as f64);
                    }
                }
                let sense = match c % 3 {
                    0 => Cmp::Le,
                    1 => Cmp::Ge,
                    _ => Cmp::Eq,
                };
                p.add_constraint(format!("c{c}"), e, sense, rng.gen_range(-2..=4) as f64);
            }
            let mut obj = LinExpr::new();
            for &v in &vars {
                obj.add_term(v, rng.gen_range(-5..=5) as f64);
            }
            p.set_objective(obj);
            let sparse = Simplex::with_rows_kernel(&p, None, KernelKind::Sparse).solve();
            let dense = Simplex::with_rows_kernel(&p, None, KernelKind::Dense).solve();
            match (sparse, dense) {
                (Ok(a), Ok(b)) => assert!(
                    (a.objective - b.objective).abs() < 1e-5,
                    "trial {trial}: sparse {} vs dense {}",
                    a.objective,
                    b.objective
                ),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "trial {trial}"),
                (a, b) => panic!("trial {trial}: sparse {a:?} vs dense {b:?}"),
            }
        }
    }

    #[test]
    fn frequent_refactorization_matches_reference() {
        // Refactor after every pivot: exercises the refactor path hard and
        // must give the same optimum.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 4.0);
        let y = p.add_var("y", 0.0, 4.0);
        let z = p.add_var("z", 0.0, 4.0);
        p.add_constraint("c0", LinExpr::from(x) + y + z, Cmp::Ge, 5.0);
        p.add_constraint("c1", 2.0 * x - y, Cmp::Le, 3.0);
        p.add_constraint("c2", LinExpr::from(y) + 2.0 * z, Cmp::Le, 7.0);
        p.set_objective(2.0 * x + y + 3.0 * z);
        let reference = Simplex::new(&p).solve().unwrap();
        let mut s = Simplex::with_rows_kernel(&p, None, KernelKind::Sparse);
        s.set_refactor_interval(1);
        let sol = s.solve().unwrap();
        assert!(
            (sol.objective - reference.objective).abs() < 1e-6,
            "refactor-every-pivot {} vs reference {}",
            sol.objective,
            reference.objective
        );
        assert!(s.kernel_stats().refactorizations > 1);
    }
}
