//! Devex pricing for the primal and dual pivot loops.
//!
//! Both loops price with approximate steepest-edge weights in the devex
//! reference-framework style (Forrest & Goldfarb): a variable's score is
//! its (squared) rate of objective improvement per unit of basis-direction
//! norm, with the norms tracked by cheap per-pivot recurrences instead of
//! exact FTRANs. The primal side additionally keeps a small **candidate
//! list** so a pivot examines O(|list|) maintained reduced costs instead
//! of scanning every column; the list is refilled by one full O(n) pass
//! over the (incrementally maintained) reduced-cost vector when it runs
//! dry.

use super::ColState;
use super::TOL;

/// Candidate-list capacity for primal partial pricing.
const CAND_LIMIT: usize = 64;
/// Reference-framework reset threshold: when any devex weight exceeds
/// this, the recurrence has drifted too far from a true steepest-edge
/// norm and all weights restart at 1.
const WEIGHT_RESET: f64 = 1e7;

/// Is nonbasic column `j` an improving entering candidate?
fn improving(d: &[f64], state: &[ColState], lower: &[f64], upper: &[f64], j: usize) -> bool {
    if upper[j] - lower[j] <= 0.0 {
        return false; // fixed variables can never move
    }
    match state[j] {
        ColState::AtLower => d[j] < -TOL,
        ColState::AtUpper => d[j] > TOL,
        ColState::Basic(_) => false,
    }
}

/// Primal devex weights plus the partial-pricing candidate list.
pub(super) struct PrimalPricing {
    /// Devex reference weight per column (approximate ‖B⁻¹A_j‖²).
    weights: Vec<f64>,
    /// Current candidate columns, pruned lazily as they stop improving.
    cands: Vec<u32>,
}

impl PrimalPricing {
    pub fn new() -> PrimalPricing {
        PrimalPricing {
            weights: Vec::new(),
            cands: Vec::new(),
        }
    }

    /// Start a fresh reference framework over `n` columns.
    pub fn reset(&mut self, n: usize) {
        self.weights.clear();
        self.weights.resize(n, 1.0);
        self.cands.clear();
    }

    /// Drop stale candidates (e.g. after a reduced-cost refresh).
    pub fn invalidate(&mut self) {
        self.cands.clear();
    }

    /// Best improving candidate from the current list, pruning entries
    /// that stopped improving. `None` means the list is exhausted — call
    /// [`PrimalPricing::refill`].
    pub fn select(
        &mut self,
        d: &[f64],
        state: &[ColState],
        lower: &[f64],
        upper: &[f64],
    ) -> Option<usize> {
        let PrimalPricing { weights, cands } = self;
        let mut best: Option<(usize, f64)> = None;
        cands.retain(|&j32| {
            let j = j32 as usize;
            if !improving(d, state, lower, upper, j) {
                return false;
            }
            let score = d[j] * d[j] / weights[j];
            if best.is_none_or(|(_, bs)| score > bs) {
                best = Some((j, score));
            }
            true
        });
        best.map(|(j, _)| j)
    }

    /// Rebuild the candidate list with the globally best-scoring columns.
    /// Returns `false` when no column improves (optimal for the current
    /// reduced costs).
    pub fn refill(&mut self, d: &[f64], state: &[ColState], lower: &[f64], upper: &[f64]) -> bool {
        self.cands.clear();
        let mut scored: Vec<(f64, u32)> = Vec::new();
        for j in 0..d.len() {
            if improving(d, state, lower, upper, j) {
                scored.push((d[j] * d[j] / self.weights[j], j as u32));
            }
        }
        if scored.len() > CAND_LIMIT {
            scored.select_nth_unstable_by(CAND_LIMIT - 1, |a, b| {
                b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            scored.truncate(CAND_LIMIT);
        }
        self.cands.extend(scored.iter().map(|&(_, j)| j));
        !self.cands.is_empty()
    }

    /// Devex recurrence after a pivot: entering column `j_in` with pivot
    /// element `pivot`, leaving column `j_out`, pivot-row alphas for the
    /// `touched` columns.
    pub fn update(
        &mut self,
        j_in: usize,
        j_out: usize,
        pivot: f64,
        alpha: &[f64],
        touched: &[u32],
        state: &[ColState],
    ) {
        let gq = self.weights[j_in];
        let inv_p2 = 1.0 / (pivot * pivot);
        let mut mx: f64 = 1.0;
        for &j32 in touched {
            let j = j32 as usize;
            if j == j_in || matches!(state[j], ColState::Basic(_)) {
                continue;
            }
            let cand = alpha[j] * alpha[j] * inv_p2 * gq;
            if cand > self.weights[j] {
                self.weights[j] = cand;
            }
            mx = mx.max(self.weights[j]);
        }
        self.weights[j_out] = (gq * inv_p2).max(1.0);
        self.weights[j_in] = 1.0;
        if mx > WEIGHT_RESET {
            for w in &mut self.weights {
                *w = 1.0;
            }
        }
    }
}

/// Dual devex row weights: pick the leaving row by violation²/weight.
pub(super) struct DualPricing {
    weights: Vec<f64>,
}

impl DualPricing {
    pub fn new() -> DualPricing {
        DualPricing {
            weights: Vec::new(),
        }
    }

    /// Start a fresh framework over `m` basis positions.
    pub fn reset(&mut self, m: usize) {
        self.weights.clear();
        self.weights.resize(m, 1.0);
    }

    /// Leaving row: largest weighted squared bound violation. Returns
    /// `(row, below)` where `below` means the basic variable sits under
    /// its lower bound.
    pub fn select_row(
        &self,
        x: &[f64],
        basis: &[usize],
        lower: &[f64],
        upper: &[f64],
    ) -> Option<(usize, bool)> {
        let mut best: Option<(usize, f64, bool)> = None;
        for (i, &bi) in basis.iter().enumerate() {
            let v = x[bi];
            let (viol, below) = if v < lower[bi] - TOL {
                (lower[bi] - v, true)
            } else if v > upper[bi] + TOL {
                (v - upper[bi], false)
            } else {
                continue;
            };
            let score = viol * viol / self.weights[i];
            if best.is_none_or(|(_, bs, _)| score > bs) {
                best = Some((i, score, below));
            }
        }
        best.map(|(i, _, below)| (i, below))
    }

    /// Devex recurrence after a dual pivot on row `r` with entering-column
    /// FTRAN image `w` (length m).
    pub fn update(&mut self, r: usize, w: &[f64]) {
        let wr = w[r];
        let gr = self.weights[r];
        let inv_p2 = 1.0 / (wr * wr);
        let mut mx: f64 = 1.0;
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi != 0.0 {
                let cand = wi * wi * inv_p2 * gr;
                if cand > self.weights[i] {
                    self.weights[i] = cand;
                }
                mx = mx.max(self.weights[i]);
            }
        }
        self.weights[r] = (gr * inv_p2).max(1.0);
        if mx > WEIGHT_RESET {
            for g in &mut self.weights {
                *g = 1.0;
            }
        }
    }
}
