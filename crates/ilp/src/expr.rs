//! Linear expressions over problem variables.
//!
//! A [`LinExpr`] is a sparse linear combination `Σ coeff·var + constant`.
//! Expressions are the currency of the modeling API: constraints compare an
//! expression against a right-hand side, and the objective is an expression.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A variable of an optimization problem, identified by its column index.
///
/// `Var`s are created by [`crate::Problem::add_var`] (or the higher-level
/// [`crate::Model`]) and are only meaningful for the problem that created
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The column index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A sparse linear expression `Σ coeffᵢ·varᵢ + constant`.
///
/// Terms with the same variable are merged lazily by [`LinExpr::normalize`];
/// all public consumers in this crate normalize before use, so callers can
/// freely build expressions by repeated `+=`.
///
/// # Examples
///
/// ```
/// use ilp::{LinExpr, Problem};
/// let mut p = Problem::minimize();
/// let x = p.add_binary("x");
/// let y = p.add_binary("y");
/// let e = LinExpr::from(x) + 2.0 * LinExpr::from(y) + 1.0;
/// assert_eq!(e.eval(|v| if v == x { 1.0 } else { 0.0 }), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` pairs; may contain duplicates until
    /// [`LinExpr::normalize`] is called.
    pub terms: Vec<(Var, f64)>,
    /// Additive constant.
    pub constant: f64,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of a single constant.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// An expression that is the sum of the given variables.
    pub fn sum<I: IntoIterator<Item = Var>>(vars: I) -> Self {
        LinExpr {
            terms: vars.into_iter().map(|v| (v, 1.0)).collect(),
            constant: 0.0,
        }
    }

    /// Add `coeff·var` to the expression.
    pub fn add_term(&mut self, var: Var, coeff: f64) -> &mut Self {
        self.terms.push((var, coeff));
        self
    }

    /// True when terms are strictly sorted by variable with no zero
    /// coefficients — i.e. [`LinExpr::normalize`] would be a no-op.
    fn is_normalized(&self) -> bool {
        self.terms.windows(2).all(|w| w[0].0 < w[1].0) && self.terms.iter().all(|&(_, c)| c != 0.0)
    }

    /// Merge duplicate variables and drop zero coefficients.
    ///
    /// Already-normalized expressions are detected with a linear scan and
    /// returned untouched, so re-normalizing (e.g. an objective installed
    /// repeatedly across solver stages) costs O(n) instead of a sort.
    pub fn normalize(&mut self) {
        if self.is_normalized() {
            return;
        }
        if self.terms.len() > 1 {
            self.terms.sort_by_key(|&(v, _)| v);
            let mut out: Vec<(Var, f64)> = Vec::with_capacity(self.terms.len());
            for &(v, c) in &self.terms {
                match out.last_mut() {
                    Some(&mut (pv, ref mut pc)) if pv == v => *pc += c,
                    _ => out.push((v, c)),
                }
            }
            self.terms = out;
        }
        self.terms.retain(|&(_, c)| c != 0.0);
    }

    /// Evaluate the expression with a value for each variable.
    pub fn eval(&self, mut value: impl FnMut(Var) -> f64) -> f64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * value(v)).sum::<f64>()
    }

    /// Number of variable terms (after normalization duplicates may shrink).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr {
            terms: vec![(v, 1.0)],
            constant: 0.0,
        }
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: Var) -> LinExpr {
        self.terms.push((rhs, 1.0));
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: Var) -> LinExpr {
        self.terms.push((rhs, -1.0));
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for t in &mut self.terms {
            t.1 *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        LinExpr {
            terms: vec![(rhs, self)],
            constant: 0.0,
        }
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        let mut acc = LinExpr::new();
        for e in iter {
            acc += e;
        }
        acc
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, c) in &self.terms {
            if first {
                write!(f, "{c}*{v}")?;
                first = false;
            } else if c < 0.0 {
                write!(f, " - {}*{v}", -c)?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> (Var, Var, Var) {
        (Var(0), Var(1), Var(2))
    }

    #[test]
    fn normalize_merges_duplicates() {
        let (x, y, _) = vars();
        let mut e = LinExpr::from(x) + LinExpr::from(x) + LinExpr::from(y);
        e.normalize();
        assert_eq!(e.terms, vec![(x, 2.0), (y, 1.0)]);
    }

    #[test]
    fn normalize_drops_zero() {
        let (x, _, _) = vars();
        let mut e = LinExpr::from(x) - LinExpr::from(x);
        e.normalize();
        assert!(e.is_empty());
    }

    #[test]
    fn eval_with_constant() {
        let (x, y, _) = vars();
        let e = 2.0 * x + 3.0 * y + 5.0;
        let val = e.eval(|v| if v == x { 1.0 } else { 10.0 });
        assert_eq!(val, 2.0 + 30.0 + 5.0);
    }

    #[test]
    fn sum_of_vars() {
        let (x, y, z) = vars();
        let e = LinExpr::sum([x, y, z]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.eval(|_| 1.0), 3.0);
    }

    #[test]
    fn negation() {
        let (x, _, _) = vars();
        let e = -(2.0 * x + 1.0);
        assert_eq!(e.eval(|_| 1.0), -3.0);
    }

    #[test]
    fn display_is_nonempty() {
        let e = LinExpr::new();
        assert_eq!(format!("{e}"), "0");
    }
}
