//! Branch and bound for mixed 0-1 integer programs, with singleton-row
//! presolve and lazy-constraint activation.
//!
//! The solver explores a depth-first tree of bound fixings, using the LP
//! relaxation (solved by [`crate::simplex::Simplex`]) for bounds and a
//! rounding heuristic for incumbents.
//!
//! Two refinements matter for the register-allocation models this crate
//! serves:
//!
//! * **presolve** — rows with a single variable become bound changes and
//!   leave the LP entirely (the allocator's §9 "redundant cuts" are all of
//!   this form);
//! * **lazy rows** — constraints marked lazy start outside the working LP
//!   and are activated only when some LP (or incumbent candidate) violates
//!   them. Interference and spare-register rows are almost always slack,
//!   so the working LP stays small — which is what keeps the dense-inverse
//!   simplex fast.
//!
//! Termination uses the paper's gap: CPLEX was run "within 0.01 % of
//! optimal" (§11), so the default relative gap is `1e-4`.

use crate::problem::{Cmp, Constraint, Problem, Sense, VarKind};
use crate::simplex::{LpError, Simplex};
use std::time::{Duration, Instant};

/// Tunables for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct BranchConfig {
    /// Stop when `(incumbent - bound) / max(1, |incumbent|)` falls below this.
    pub relative_gap: f64,
    /// Hard cap on explored nodes.
    pub max_nodes: usize,
    /// Wall-clock budget; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            relative_gap: 1e-4,
            max_nodes: 2_000_000,
            time_limit: None,
            int_tol: 1e-6,
        }
    }
}

/// Why a MILP solve stopped without a proven optimum.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// No assignment satisfies the constraints and bounds.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// Node or time budget exhausted before any integer point was found.
    BudgetExhausted,
    /// The LP engine failed numerically.
    Numerical(LpError),
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => f.write_str("integer program is infeasible"),
            MilpError::Unbounded => f.write_str("integer program is unbounded"),
            MilpError::BudgetExhausted => {
                f.write_str("budget exhausted before an integer solution was found")
            }
            MilpError::Numerical(e) => write!(f, "LP engine failure: {e}"),
        }
    }
}

impl std::error::Error for MilpError {}

/// Result of a successful MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Objective of the best integer point found.
    pub objective: f64,
    /// Values of the structural variables (integers are exact within `int_tol`).
    pub values: Vec<f64>,
    /// Statistics of the search.
    pub stats: SolveStats,
}

/// Search statistics, reported by the Figure-7 harness.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Objective of the root LP relaxation (after lazy activation).
    pub root_objective: f64,
    /// Time to solve the root relaxation (including lazy reactivation).
    pub root_time: Duration,
    /// Total wall-clock time including the root solve.
    pub total_time: Duration,
    /// Branch-and-bound nodes explored (root included).
    pub nodes: usize,
    /// Total simplex iterations.
    pub simplex_iterations: usize,
    /// Lazy constraints activated into the working LP.
    pub activated_rows: usize,
    /// Rows removed by singleton presolve.
    pub presolved_rows: usize,
    /// Final proven relative gap (0 when optimal).
    pub gap: f64,
    /// True if the search proved optimality within the configured gap.
    pub proven_optimal: bool,
}

struct Node {
    lo: Vec<f64>,
    hi: Vec<f64>,
    bound: f64,
    depth: usize,
}

/// Solve a mixed 0-1/integer problem by branch and bound.
///
/// # Errors
///
/// See [`MilpError`].
pub fn solve_milp(problem: &Problem, config: &BranchConfig) -> Result<MilpSolution, MilpError> {
    let start = Instant::now();
    let minimize = problem.sense == Sense::Minimize;
    let to_min = |v: f64| if minimize { v } else { -v };
    let from_min = |v: f64| if minimize { v } else { -v };

    let int_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    let mut obj_coeff: Vec<f64> = vec![0.0; problem.vars.len()];
    for &(v, c) in &problem.objective.terms {
        obj_coeff[v.index()] += c.abs();
    }

    // ---- presolve: singleton rows become bounds ----
    let mut root_lo: Vec<f64> = problem.vars.iter().map(|d| d.lower).collect();
    let mut root_hi: Vec<f64> = problem.vars.iter().map(|d| d.upper).collect();
    let mut stats = SolveStats::default();
    let mut core: Vec<usize> = Vec::new();
    let mut lazy: Vec<usize> = Vec::new();
    for (i, c) in problem.constraints.iter().enumerate() {
        if c.expr.terms.len() == 1 {
            let (v, a) = c.expr.terms[0];
            let j = v.index();
            if a == 0.0 {
                let ok = match c.cmp {
                    Cmp::Le => 0.0 <= c.rhs + 1e-9,
                    Cmp::Ge => 0.0 >= c.rhs - 1e-9,
                    Cmp::Eq => c.rhs.abs() <= 1e-9,
                };
                if !ok {
                    return Err(MilpError::Infeasible);
                }
                stats.presolved_rows += 1;
                continue;
            }
            let bound = c.rhs / a;
            match (c.cmp, a > 0.0) {
                (Cmp::Le, true) | (Cmp::Ge, false) => root_hi[j] = root_hi[j].min(bound),
                (Cmp::Ge, true) | (Cmp::Le, false) => root_lo[j] = root_lo[j].max(bound),
                (Cmp::Eq, _) => {
                    root_lo[j] = root_lo[j].max(bound);
                    root_hi[j] = root_hi[j].min(bound);
                }
            }
            if root_lo[j] > root_hi[j] + 1e-9 {
                return Err(MilpError::Infeasible);
            }
            stats.presolved_rows += 1;
            continue;
        }
        if c.lazy {
            lazy.push(i);
        } else {
            core.push(i);
        }
    }
    // Integer bound rounding.
    for &j in &int_vars {
        root_lo[j] = root_lo[j].ceil();
        root_hi[j] = root_hi[j].floor();
        if root_lo[j] > root_hi[j] {
            return Err(MilpError::Infeasible);
        }
    }

    // ---- working LP with lazy activation ----
    let all: &[Constraint] = &problem.constraints;
    let mut simplex = Simplex::with_rows(problem, Some(&core));
    let viol_tol = 1e-6;

    // Solve an LP (warm when possible), activating violated lazy rows via
    // incremental row addition + dual-simplex repair.
    let solve_clean = |simplex: &mut Simplex,
                       lazy: &mut Vec<usize>,
                       stats: &mut SolveStats,
                       lo: &[f64],
                       hi: &[f64]|
     -> Result<crate::simplex::LpSolution, LpError> {
        let mut sol = simplex.resolve_with_bounds(lo, hi)?;
        loop {
            stats.simplex_iterations += sol.iterations;
            let mut newly: Vec<usize> = Vec::new();
            lazy.retain(|&i| {
                if problem.violation(&all[i], &sol.values) > viol_tol {
                    newly.push(i);
                    false
                } else {
                    true
                }
            });
            if newly.is_empty() {
                return Ok(sol);
            }
            stats.activated_rows += newly.len();
            let rows: Vec<&Constraint> = newly.iter().map(|&i| &all[i]).collect();
            simplex.add_rows(&rows);
            sol = simplex.resolve_with_bounds(lo, hi)?;
        }
    };

    let root_start = Instant::now();
    let root = match solve_clean(&mut simplex, &mut lazy, &mut stats, &root_lo, &root_hi)
    {
        Ok(s) => s,
        Err(LpError::Infeasible) => return Err(MilpError::Infeasible),
        Err(LpError::Unbounded) => return Err(MilpError::Unbounded),
        Err(e) => return Err(MilpError::Numerical(e)),
    };
    stats.root_time = root_start.elapsed();
    stats.root_objective = root.objective;
    stats.nodes = 1;

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut best_bound = to_min(root.objective);
    if let Some(x) = round_heuristic(problem, &root.values, config.int_tol) {
        let obj = to_min(problem.objective_value(&x));
        incumbent = Some((obj, x));
    }

    let frac = |int_vars: &[usize], x: &[f64]| -> Option<usize> {
        // Branch on the fractional variable with the largest
        // |objective coefficient| (bank decisions before colors),
        // tie-broken by most-fractional.
        let mut best: Option<(usize, f64)> = None;
        for &j in int_vars {
            let f = (x[j] - x[j].round()).abs();
            if f > config.int_tol {
                let dist = 0.5 - (x[j] - x[j].floor() - 0.5).abs();
                let score = obj_coeff[j] * 10.0 + dist;
                if best.map_or(true, |(_, s)| score > s) {
                    best = Some((j, score));
                }
            }
        }
        best.map(|(j, _)| j)
    };

    let mut stack: Vec<Node> = Vec::new();
    match frac(&int_vars, &root.values) {
        None => {
            stats.total_time = start.elapsed();
            stats.proven_optimal = true;
            return Ok(MilpSolution {
                objective: root.objective,
                values: root.values,
                stats,
            });
        }
        Some(j) => push_children(
            &mut stack,
            &root_lo,
            &root_hi,
            j,
            root.values[j],
            to_min(root.objective),
            0,
        ),
    }

    let mut budget_hit = false;
    while let Some(node) = stack.pop() {
        if let Some((inc, _)) = &incumbent {
            if node.bound >= *inc - gap_abs(*inc, config.relative_gap) {
                continue;
            }
        }
        if stats.nodes >= config.max_nodes {
            budget_hit = true;
            break;
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                budget_hit = true;
                break;
            }
        }
        stats.nodes += 1;
        let sol = match solve_clean(&mut simplex, &mut lazy, &mut stats, &node.lo, &node.hi)
        {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(LpError::Unbounded) => return Err(MilpError::Unbounded),
            Err(e) => return Err(MilpError::Numerical(e)),
        };
        let bound = to_min(sol.objective);
        if let Some((inc, _)) = &incumbent {
            if bound >= *inc - gap_abs(*inc, config.relative_gap) {
                continue;
            }
        }
        match frac(&int_vars, &sol.values) {
            None => {
                let obj = to_min(sol.objective);
                if incumbent.as_ref().map_or(true, |(inc, _)| obj < *inc) {
                    incumbent = Some((obj, sol.values.clone()));
                }
            }
            Some(j) => {
                if let Some(x) = round_heuristic(problem, &sol.values, config.int_tol) {
                    let obj = to_min(problem.objective_value(&x));
                    if incumbent.as_ref().map_or(true, |(inc, _)| obj < *inc) {
                        incumbent = Some((obj, x));
                    }
                }
                push_children(&mut stack, &node.lo, &node.hi, j, sol.values[j], bound, node.depth + 1);
            }
        }
        best_bound = stack.iter().map(|n| n.bound).fold(f64::INFINITY, f64::min);
        if let Some((inc, _)) = &incumbent {
            if best_bound >= *inc - gap_abs(*inc, config.relative_gap) {
                stack.clear();
            }
        }
    }

    stats.total_time = start.elapsed();
    match incumbent {
        Some((obj, values)) => {
            let exhausted = stack.is_empty();
            stats.proven_optimal = exhausted;
            stats.gap = if exhausted {
                0.0
            } else {
                ((obj - best_bound) / obj.abs().max(1.0)).max(0.0)
            };
            Ok(MilpSolution { objective: from_min(obj), values, stats })
        }
        None if budget_hit => Err(MilpError::BudgetExhausted),
        None => Err(MilpError::Infeasible),
    }
}

fn gap_abs(incumbent: f64, rel: f64) -> f64 {
    rel * incumbent.abs().max(1.0)
}

/// Push both children of branching on `x_j`; the child nearer the LP value
/// is pushed last so depth-first explores it first (diving).
fn push_children(
    stack: &mut Vec<Node>,
    lo: &[f64],
    hi: &[f64],
    j: usize,
    xj: f64,
    bound: f64,
    depth: usize,
) {
    let floor = xj.floor();
    let ceil = xj.ceil();
    let mut down = Node { lo: lo.to_vec(), hi: hi.to_vec(), bound, depth };
    down.hi[j] = floor;
    let mut up = Node { lo: lo.to_vec(), hi: hi.to_vec(), bound, depth };
    up.lo[j] = ceil;
    if xj - floor <= ceil - xj {
        stack.push(up);
        stack.push(down);
    } else {
        stack.push(down);
        stack.push(up);
    }
}

/// Round fractional integers to their nearest value and accept the point if
/// it satisfies every constraint (lazy ones included).
fn round_heuristic(problem: &Problem, x: &[f64], tol: f64) -> Option<Vec<f64>> {
    let mut r: Vec<f64> = x.to_vec();
    let mut any_frac = false;
    for (i, d) in problem.vars.iter().enumerate() {
        if d.kind == VarKind::Integer {
            let rounded = r[i].round();
            if (r[i] - rounded).abs() > tol {
                any_frac = true;
            }
            r[i] = rounded.clamp(d.lower, d.upper);
        }
    }
    if !any_frac {
        return None;
    }
    if problem.is_feasible(&r, 1e-6) {
        Some(r)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Cmp;

    fn cfg() -> BranchConfig {
        BranchConfig::default()
    }

    #[test]
    fn knapsack() {
        let mut p = Problem::maximize();
        let x1 = p.add_binary("x1");
        let x2 = p.add_binary("x2");
        let x3 = p.add_binary("x3");
        p.add_constraint("w", 3.0 * x1 + 4.0 * x2 + 2.0 * x3, Cmp::Le, 6.0);
        p.set_objective(10.0 * x1 + 13.0 * x2 + 7.0 * x3);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!((s.objective - 20.0).abs() < 1e-5, "got {}", s.objective);
        assert!(s.stats.proven_optimal);
    }

    #[test]
    fn infeasible_integer() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_constraint("c", 2.0 * x, Cmp::Eq, 1.0);
        p.set_objective(LinExpr::from(x));
        let err = solve_milp(&p, &cfg()).unwrap_err();
        assert_eq!(err, MilpError::Infeasible);
    }

    #[test]
    fn lp_infeasible_detected() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_constraint("c", LinExpr::from(x), Cmp::Ge, 2.0);
        assert_eq!(solve_milp(&p, &cfg()).unwrap_err(), MilpError::Infeasible);
    }

    #[test]
    fn singleton_presolve_fixes_vars() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint("fix", LinExpr::from(x), Cmp::Eq, 1.0);
        p.add_constraint("cap", LinExpr::from(x) + y, Cmp::Le, 1.0);
        p.set_objective(-1.0 * x - 1.0 * y);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.stats.presolved_rows, 1);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
        assert!((s.values[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn lazy_rows_activate_only_when_needed() {
        // min -x - y with a lazy row x + y <= 1: the LP without it picks
        // (1,1), which violates the row, forcing activation.
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_lazy_constraint("cap", LinExpr::from(x) + y, Cmp::Le, 1.0);
        p.set_objective(-1.0 * x - 1.0 * y);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!((s.objective + 1.0).abs() < 1e-6, "got {}", s.objective);
        assert_eq!(s.stats.activated_rows, 1);

        // A lazy row that is never binding stays out.
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_lazy_constraint("slack", LinExpr::from(x), Cmp::Le, 5.0);
        p.set_objective(LinExpr::from(x));
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.stats.activated_rows, 0);
    }

    #[test]
    fn assignment_with_coupling() {
        let costs = [[1.0, 9.0], [8.0, 2.0], [3.0, 3.0], [7.0, 1.0]];
        let mut p = Problem::minimize();
        let mut v = vec![];
        for i in 0..4 {
            for b in 0..2 {
                v.push(p.add_binary(format!("x{i}{b}")));
            }
        }
        for i in 0..4 {
            p.add_constraint(
                format!("item{i}"),
                LinExpr::from(v[i * 2]) + v[i * 2 + 1],
                Cmp::Eq,
                1.0,
            );
        }
        for b in 0..2 {
            let e = LinExpr::sum((0..4).map(|i| v[i * 2 + b]));
            p.add_constraint(format!("bin{b}"), e, Cmp::Le, 2.0);
        }
        let mut obj = LinExpr::new();
        for i in 0..4 {
            for b in 0..2 {
                obj += costs[i][b] * v[i * 2 + b];
            }
        }
        p.set_objective(obj);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!((s.objective - 7.0).abs() < 1e-5, "got {}", s.objective);
    }

    #[test]
    fn exhaustive_crosscheck_random_binaries() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let n = 8;
            let mut p = Problem::minimize();
            let vars: Vec<_> = (0..n).map(|i| p.add_binary(format!("b{i}"))).collect();
            for c in 0..5 {
                let mut e = LinExpr::new();
                for &v in &vars {
                    e.add_term(v, rng.gen_range(-2..=3) as f64);
                }
                let sense = if rng.gen_bool(0.3) { Cmp::Eq } else { Cmp::Le };
                let rhs = rng.gen_range(0..=5) as f64;
                // Randomly mark some rows lazy: results must not change.
                if rng.gen_bool(0.5) {
                    p.add_lazy_constraint(format!("c{c}"), e, sense, rhs);
                } else {
                    p.add_constraint(format!("c{c}"), e, sense, rhs);
                }
            }
            let mut obj = LinExpr::new();
            for &v in &vars {
                obj.add_term(v, rng.gen_range(-5..=5) as f64);
            }
            p.set_objective(obj);

            let mut best: Option<f64> = None;
            for mask in 0..(1u32 << n) {
                let x: Vec<f64> =
                    (0..n).map(|i| if mask >> i & 1 == 1 { 1.0 } else { 0.0 }).collect();
                if p.is_feasible(&x, 1e-9) {
                    let v = p.objective_value(&x);
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                }
            }
            let milp = solve_milp(&p, &cfg());
            match best {
                Some(b) => {
                    let s = milp.unwrap_or_else(|e| panic!("trial {trial}: {e}, expected {b}"));
                    assert!(
                        (s.objective - b).abs() < 1e-4,
                        "trial {trial}: milp {} vs brute {b}",
                        s.objective
                    );
                }
                None => {
                    assert!(milp.is_err(), "trial {trial}: expected infeasible");
                }
            }
        }
    }

    #[test]
    fn respects_time_limit_field() {
        let mut c = cfg();
        c.time_limit = Some(Duration::from_secs(30));
        let mut p = Problem::maximize();
        let x = p.add_binary("x");
        p.set_objective(LinExpr::from(x));
        let s = solve_milp(&p, &c).unwrap();
        assert_eq!(s.objective, 1.0);
    }
}
