//! Branch and bound for mixed 0-1 integer programs, with singleton-row
//! presolve, lazy-constraint activation, and a work-sharing parallel tree
//! search.
//!
//! The solver explores a tree of bound fixings, using the LP relaxation
//! (solved by [`crate::simplex::Simplex`]) for bounds and a rounding
//! heuristic for incumbents. Open nodes live in a shared best-bound-first
//! frontier; each worker thread owns a private warm-startable simplex
//! workspace and dives depth-first on the child nearer its parent's LP
//! value (early incumbents), publishing the sibling to the frontier.
//!
//! Two refinements matter for the register-allocation models this crate
//! serves:
//!
//! * **presolve** — rows with a single variable become bound changes and
//!   leave the LP entirely (the allocator's §9 "redundant cuts" are all of
//!   this form);
//! * **lazy rows** — constraints marked lazy start outside the working LP
//!   and are activated only when some LP (or incumbent candidate) violates
//!   them. Interference and spare-register rows are almost always slack,
//!   so the working LP stays small — which is what keeps the dense-inverse
//!   simplex fast.
//!
//! **Determinism.** The search order depends on thread scheduling, but the
//! reported solution does not (up to the configured gap): incumbents are
//! accepted only if strictly better, or equal within `1e-9` and
//! lexicographically smaller, so ties resolve identically regardless of
//! discovery order. With `relative_gap = 0` the objective is exactly the
//! optimum at every thread count.
//!
//! Termination uses the paper's gap: CPLEX was run "within 0.01 % of
//! optimal" (§11), so the default relative gap is `1e-4`.

use crate::presolve::presolve;
use crate::problem::{Problem, Sense, VarKind};
use crate::simplex::{KernelKind, KernelStats, LpError, LpSolution, Simplex};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Objective tolerance for incumbent ties (see module docs on determinism).
const INC_EPS: f64 = 1e-9;
/// Sanity cap on worker threads.
const MAX_THREADS: usize = 64;

/// Tunables for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct BranchConfig {
    /// Stop when `(incumbent - bound) / max(1, |incumbent|)` falls below this.
    pub relative_gap: f64,
    /// Hard cap on explored nodes.
    pub max_nodes: usize,
    /// Wall-clock budget; `None` means unlimited. Enforced between node
    /// solves *and* inside the simplex pivot loops (via a shared deadline),
    /// so a single long LP cannot overshoot the budget by more than a few
    /// pivots.
    pub time_limit: Option<Duration>,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Absolute fathoming tolerance: a node whose LP bound comes within
    /// `fathom_abs + fathom_rel·|incumbent|` of the incumbent cannot
    /// contain a *meaningfully* better point and is pruned even when
    /// `relative_gap` is zero. This is what lets exact-gap solves finish:
    /// LP bounds carry numerical residue proportional to the reduced-cost
    /// tolerance times the basis size (observed ~8e-6 absolute on the
    /// 4.7k-variable AES model), so without it the search chases ties it
    /// can never separate. Must stay well below the granularity at which
    /// distinct integer points differ in objective (the allocator's
    /// epsilon tie-breaks are ~6e-8 apart, but genuinely different
    /// allocations differ by ≥ 1e-2). Set both to `0.0` to restore exact
    /// fathoming.
    pub fathom_abs: f64,
    /// Relative part of the fathoming tolerance (see `fathom_abs`).
    pub fathom_rel: f64,
    /// Worker threads for the tree search. `0` means automatic:
    /// [`std::thread::available_parallelism`]. Environment overrides
    /// (`NOVA_ILP_THREADS`) are the embedding compiler's business — nova
    /// resolves them once at configuration-build time; this crate never
    /// reads the environment during a solve.
    pub threads: usize,
    /// Simplex basis kernel for every LP workspace of the solve. `None`
    /// means the sparse LU default. As with `threads`, environment
    /// selection (`NOVA_ILP_KERNEL`) happens in the embedding compiler's
    /// configuration builder, not here, so parallel differential runs
    /// cannot race on the environment.
    pub kernel: Option<KernelKind>,
    /// Run the full [`crate::presolve`] reduction (singletons, bound
    /// tightening, substitution, domination) before the tree search.
    /// Disabling it keeps every row in the model — useful for differential
    /// testing; the reported objective must not change.
    pub presolve: bool,
    /// Generate cover cuts during presolve (no effect when `presolve` is
    /// off). Cuts only strengthen the LP relaxation; the integer feasible
    /// set is untouched.
    pub cuts: bool,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            relative_gap: 1e-4,
            max_nodes: 2_000_000,
            time_limit: None,
            int_tol: 1e-6,
            fathom_abs: 2e-5,
            fathom_rel: 1e-9,
            threads: 0,
            kernel: None,
            presolve: true,
            cuts: true,
        }
    }
}

impl BranchConfig {
    /// Builder-style thread override (`0` restores automatic selection).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style basis-kernel override (`None` restores the sparse
    /// LU default).
    #[must_use]
    pub fn with_kernel(mut self, kernel: Option<KernelKind>) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style presolve toggle.
    #[must_use]
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = presolve;
        self
    }

    /// Builder-style cover-cut toggle.
    #[must_use]
    pub fn with_cuts(mut self, cuts: bool) -> Self {
        self.cuts = cuts;
        self
    }

    /// The simplex kernel a solve will actually use (pure: no
    /// environment reads).
    pub fn effective_kernel(&self) -> KernelKind {
        self.kernel.unwrap_or(KernelKind::Sparse)
    }

    /// The number of worker threads a solve will actually use (pure: no
    /// environment reads).
    pub fn effective_threads(&self) -> usize {
        if self.threads >= 1 {
            return self.threads.min(MAX_THREADS);
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_THREADS)
    }
}

/// Why a MILP solve stopped without a proven optimum.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// No assignment satisfies the constraints and bounds.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// Node or time budget exhausted before any integer point was found.
    /// Carries the partial statistics of the search up to the stop.
    BudgetExhausted(Box<SolveStats>),
    /// The LP engine failed numerically.
    Numerical(LpError),
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => f.write_str("integer program is infeasible"),
            MilpError::Unbounded => f.write_str("integer program is unbounded"),
            MilpError::BudgetExhausted(stats) => write!(
                f,
                "budget exhausted before an integer solution was found \
                 ({} nodes, {:.2}s)",
                stats.nodes,
                stats.total_time.as_secs_f64()
            ),
            MilpError::Numerical(e) => write!(f, "LP engine failure: {e}"),
        }
    }
}

impl std::error::Error for MilpError {}

/// Result of a successful MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Objective of the best integer point found.
    pub objective: f64,
    /// Values of the structural variables (integers are exact within `int_tol`).
    pub values: Vec<f64>,
    /// Statistics of the search.
    pub stats: SolveStats,
}

/// Search statistics, reported by the Figure-7 harness and the
/// `perf_trajectory` bench.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Objective of the root LP relaxation (after lazy activation).
    pub root_objective: f64,
    /// Time to solve the root relaxation (including lazy reactivation).
    pub root_time: Duration,
    /// Total wall-clock time including the root solve.
    pub total_time: Duration,
    /// Busy time summed across workers plus the root solve (≈ CPU time of
    /// the search; equals `total_time` minus idle when single-threaded).
    pub cpu_time: Duration,
    /// Branch-and-bound nodes explored (root included).
    pub nodes: usize,
    /// Total simplex iterations (pivots) across all workers.
    pub simplex_iterations: usize,
    /// Lazy constraints activated into working LPs (summed over workers).
    pub activated_rows: usize,
    /// Rows removed by presolve (singletons, redundant, dominated).
    pub presolved_rows: usize,
    /// Cover-cut rows presolve appended to the working model.
    pub cuts_added: usize,
    /// Final proven relative gap (0 when optimal).
    pub gap: f64,
    /// True if the search proved optimality within the configured gap.
    pub proven_optimal: bool,
    /// Worker threads used by the tree search.
    pub threads: usize,
    /// Node LPs (root excluded) served by the dual-simplex warm path.
    pub warm_hits: usize,
    /// Node LPs (root excluded) that needed a cold two-phase solve.
    pub warm_misses: usize,
    /// Nodes processed by each worker thread.
    pub per_thread_nodes: Vec<usize>,
    /// Basis kernel name ("sparse" or "dense").
    pub kernel: String,
    /// LU factorizations across all LP workspaces (cold starts + periodic
    /// rebuilds; zero on the dense kernel).
    pub refactorizations: usize,
    /// Eta matrices appended to basis factorizations (one per pivot on a
    /// sparse workspace).
    pub eta_pivots: usize,
    /// Peak LU nonzero count over all factorizations (fill-in measure).
    pub lu_fill_nnz: usize,
    /// A caller-supplied warm-start point validated as feasible and was
    /// adopted as the starting incumbent of any tree search that ran (see
    /// [`solve_milp_hinted_with`]).
    pub hint_accepted: bool,
}

impl SolveStats {
    /// Fraction of node LPs served from a warm basis (0 when no node LPs).
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }

    /// Simplex pivot throughput over the whole solve (wall-clock).
    pub fn pivots_per_sec(&self) -> f64 {
        let secs = self.total_time.as_secs_f64();
        if secs > 0.0 {
            self.simplex_iterations as f64 / secs
        } else {
            0.0
        }
    }

    fn absorb_kernel(&mut self, ks: &KernelStats) {
        self.refactorizations += ks.refactorizations;
        self.eta_pivots += ks.eta_pivots;
        self.lu_fill_nnz = self.lu_fill_nnz.max(ks.lu_fill_nnz);
    }
}

/// An open node of the search tree: the branching decisions that produced
/// it plus the parent's LP bound (minimization form).
///
/// Bounds are stored as a *sparse delta* against the root box — one
/// `(var, lo, hi)` override per branching decision on the path from the
/// root — and materialized into a worker-local dense buffer just before
/// the node's LP solve. The dense representation used to dominate the
/// solver's allocation profile: two `n`-sized vectors per child on a
/// multi-thousand-variable model.
struct OpenNode {
    /// Bound overrides in root→leaf order (later entries win).
    fixes: Vec<(u32, f64, f64)>,
    bound: f64,
    depth: usize,
    /// Creation order; breaks frontier ties so the dive child of a pair is
    /// preferred when bounds and depths are equal.
    seq: u64,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    /// `BinaryHeap` is a max-heap, so "greatest" pops first: smallest
    /// bound, then greatest depth (diving), then earliest creation.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| self.depth.cmp(&other.depth))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Frontier {
    heap: BinaryHeap<OpenNode>,
    /// Workers currently blocked waiting for work.
    idle: usize,
    /// Set when every worker went idle with an empty frontier.
    done: bool,
}

/// State shared by the worker threads of one solve. `problem` is the
/// *working* problem: the presolve-reduced model when presolve ran, the
/// caller's model otherwise (same variable columns either way).
struct Shared<'a> {
    problem: &'a Problem,
    root_lo: &'a [f64],
    root_hi: &'a [f64],
    config: &'a BranchConfig,
    int_vars: &'a [usize],
    obj_coeff: &'a [f64],
    minimize: bool,
    n_workers: usize,
    deadline: Option<Instant>,
    frontier: Mutex<Frontier>,
    work_cv: Condvar,
    /// Best integer point so far, in minimization form.
    incumbent: Mutex<Option<(f64, Vec<f64>)>>,
    /// Lower envelope of the incumbent objective as `f64` bits, readable
    /// without the lock for pruning (monotonically non-increasing; updated
    /// under the incumbent lock).
    inc_bits: AtomicU64,
    seq: AtomicU64,
    nodes: AtomicUsize,
    pivots: AtomicUsize,
    activated: AtomicUsize,
    warm_hits: AtomicUsize,
    warm_misses: AtomicUsize,
    stop: AtomicBool,
    budget_hit: AtomicBool,
    error: Mutex<Option<MilpError>>,
}

impl Shared<'_> {
    fn incumbent_min(&self) -> f64 {
        f64::from_bits(self.inc_bits.load(Ordering::Acquire))
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Offer an integer point (minimization form). Accepts strict
    /// improvements, and — for objective ties within [`INC_EPS`] —
    /// lexicographically smaller value vectors, which makes the final
    /// incumbent independent of discovery order.
    fn offer_incumbent(&self, obj: f64, values: Vec<f64>) {
        let mut guard = self.incumbent.lock().unwrap();
        let accept = match guard.as_ref() {
            None => true,
            Some((cur, cur_values)) => {
                obj < cur - INC_EPS
                    || ((obj - cur).abs() <= INC_EPS && lex_less(&values, cur_values))
            }
        };
        if accept {
            let old = f64::from_bits(self.inc_bits.load(Ordering::Acquire));
            self.inc_bits
                .store(obj.min(old).to_bits(), Ordering::Release);
            *guard = Some((obj, values));
        }
    }

    fn trigger_budget(&self) {
        self.budget_hit.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        self.work_cv.notify_all();
    }

    fn fail(&self, e: MilpError) {
        let mut guard = self.error.lock().unwrap();
        if guard.is_none() {
            *guard = Some(e);
        }
        drop(guard);
        self.stop.store(true, Ordering::Release);
        self.work_cv.notify_all();
    }

    fn push_node(&self, node: OpenNode, notify: bool) {
        let mut f = self.frontier.lock().unwrap();
        f.heap.push(node);
        drop(f);
        if notify {
            self.work_cv.notify_one();
        }
    }

    /// Claim the best open node, blocking while the frontier is empty but
    /// some worker is still expanding. Returns `None` on global stop or
    /// when every worker is idle with nothing left (search exhausted).
    fn pop_or_wait(&self) -> Option<OpenNode> {
        let mut f = self.frontier.lock().unwrap();
        loop {
            if self.stop.load(Ordering::Acquire) || f.done {
                return None;
            }
            if let Some(node) = f.heap.pop() {
                return Some(node);
            }
            f.idle += 1;
            if f.idle == self.n_workers {
                f.done = true;
                drop(f);
                self.work_cv.notify_all();
                return None;
            }
            f = self.work_cv.wait(f).unwrap();
            f.idle -= 1;
        }
    }
}

fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        if (x - y).abs() > INC_EPS {
            return x < y;
        }
    }
    false
}

fn to_min(minimize: bool, v: f64) -> f64 {
    if minimize {
        v
    } else {
        -v
    }
}

/// The working model of one solve: the (optionally presolve-reduced)
/// problem, root bounds, and the core/lazy row partition.
struct Prepared {
    /// The reduced problem when presolve ran; `None` means "use the
    /// caller's problem unchanged".
    reduced: Option<Box<Problem>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    core: Vec<usize>,
    lazy: Vec<usize>,
}

impl Prepared {
    fn problem<'a>(&'a self, original: &'a Problem) -> &'a Problem {
        self.reduced.as_deref().unwrap_or(original)
    }
}

/// Run (or skip, per `config.presolve`) the [`crate::presolve`] reduction
/// and set up root bounds with inward integer rounding. Row-drop and cut
/// counters land in `stats`.
fn prepare(
    problem: &Problem,
    config: &BranchConfig,
    stats: &mut SolveStats,
) -> Result<Prepared, MilpError> {
    if config.presolve {
        let red = presolve(problem, config.cuts).map_err(|_| MilpError::Infeasible)?;
        stats.presolved_rows = red.stats.rows_dropped;
        stats.cuts_added = red.stats.cuts_added;
        let lo = red.problem.vars.iter().map(|d| d.lower).collect();
        let hi = red.problem.vars.iter().map(|d| d.upper).collect();
        return Ok(Prepared {
            lo,
            hi,
            core: red.core,
            lazy: red.lazy,
            reduced: Some(Box::new(red.problem)),
        });
    }
    let mut lo: Vec<f64> = problem.vars.iter().map(|d| d.lower).collect();
    let mut hi: Vec<f64> = problem.vars.iter().map(|d| d.upper).collect();
    for (j, d) in problem.vars.iter().enumerate() {
        if d.kind == VarKind::Integer {
            lo[j] = lo[j].ceil();
            hi[j] = hi[j].floor();
            if lo[j] > hi[j] {
                return Err(MilpError::Infeasible);
            }
        }
    }
    let mut core = Vec::new();
    let mut lazy = Vec::new();
    for i in 0..problem.num_constraints() {
        if problem.row_view(i).lazy {
            lazy.push(i);
        } else {
            core.push(i);
        }
    }
    Ok(Prepared {
        reduced: None,
        lo,
        hi,
        core,
        lazy,
    })
}

/// Solve an LP (warm when possible), activating violated lazy rows via
/// incremental row addition + dual-simplex repair. Returns the clean
/// solution and whether the *first* resolve of the node stayed on the
/// warm dual-simplex path.
fn solve_lazy(
    problem: &Problem,
    simplex: &mut Simplex,
    lazy: &mut Vec<usize>,
    pivots: &mut usize,
    activated: &mut usize,
    lo: &[f64],
    hi: &[f64],
) -> Result<(LpSolution, bool), LpError> {
    let viol_tol = 1e-6;
    let mut sol = simplex.resolve_with_bounds(lo, hi)?;
    let was_warm = simplex.last_solve_was_warm();
    loop {
        *pivots += sol.iterations;
        let mut newly: Vec<usize> = Vec::new();
        lazy.retain(|&i| {
            if problem.violation(i, &sol.values) > viol_tol {
                newly.push(i);
                false
            } else {
                true
            }
        });
        if newly.is_empty() {
            return Ok((sol, was_warm));
        }
        *activated += newly.len();
        simplex.add_rows(problem, &newly);
        sol = simplex.resolve_with_bounds(lo, hi)?;
    }
}

/// One worker thread: claim nodes, solve their relaxations, branch, and
/// share one child per branching while diving on the other. Returns
/// `(nodes processed, busy time, kernel counters)`.
fn worker(
    shared: &Shared<'_>,
    mut simplex: Simplex,
    mut lazy: Vec<usize>,
) -> (usize, Duration, KernelStats) {
    simplex.set_deadline(shared.deadline);
    let cfg = shared.config;
    let mut local: Option<OpenNode> = None;
    let mut nodes_done = 0usize;
    let mut busy = Duration::ZERO;
    // Dense bound buffers, reused across every node this worker solves;
    // each node's sparse fixes are materialized on top of the root box.
    let mut lo_buf: Vec<f64> = Vec::with_capacity(shared.root_lo.len());
    let mut hi_buf: Vec<f64> = Vec::with_capacity(shared.root_hi.len());
    loop {
        if shared.stop.load(Ordering::Acquire) {
            if let Some(node) = local.take() {
                shared.push_node(node, false);
            }
            break;
        }
        let node = match local.take() {
            Some(node) => node,
            None => match shared.pop_or_wait() {
                Some(node) => node,
                None => break,
            },
        };
        let t0 = Instant::now();
        // Prune against the (possibly newer) incumbent.
        let inc = shared.incumbent_min();
        if inc.is_finite() && node.bound >= inc - prune_margin(inc, cfg) {
            busy += t0.elapsed();
            continue;
        }
        // Budgets. The claimed node is returned to the frontier so the
        // final bound/gap report still accounts for it.
        let over_nodes = {
            let prev = shared.nodes.fetch_add(1, Ordering::AcqRel);
            if prev >= cfg.max_nodes {
                shared.nodes.fetch_sub(1, Ordering::AcqRel);
                true
            } else {
                false
            }
        };
        if over_nodes || shared.deadline.is_some_and(|d| Instant::now() >= d) {
            if !over_nodes {
                shared.nodes.fetch_sub(1, Ordering::AcqRel);
            }
            shared.push_node(node, false);
            shared.trigger_budget();
            busy += t0.elapsed();
            break;
        }
        lo_buf.clear();
        lo_buf.extend_from_slice(shared.root_lo);
        hi_buf.clear();
        hi_buf.extend_from_slice(shared.root_hi);
        for &(j, l, h) in &node.fixes {
            lo_buf[j as usize] = l;
            hi_buf[j as usize] = h;
        }
        let mut pivots = 0usize;
        let mut activated = 0usize;
        let result = solve_lazy(
            shared.problem,
            &mut simplex,
            &mut lazy,
            &mut pivots,
            &mut activated,
            &lo_buf,
            &hi_buf,
        );
        shared.pivots.fetch_add(pivots, Ordering::Relaxed);
        shared.activated.fetch_add(activated, Ordering::Relaxed);
        let (sol, was_warm) = match result {
            Ok(pair) => pair,
            Err(LpError::Infeasible) => {
                nodes_done += 1;
                busy += t0.elapsed();
                continue;
            }
            Err(LpError::TimeLimit) => {
                shared.nodes.fetch_sub(1, Ordering::AcqRel);
                shared.push_node(node, false);
                shared.trigger_budget();
                busy += t0.elapsed();
                break;
            }
            Err(LpError::Unbounded) => {
                shared.fail(MilpError::Unbounded);
                busy += t0.elapsed();
                break;
            }
            Err(e) => {
                shared.fail(MilpError::Numerical(e));
                busy += t0.elapsed();
                break;
            }
        };
        nodes_done += 1;
        if was_warm {
            shared.warm_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.warm_misses.fetch_add(1, Ordering::Relaxed);
        }
        let bound = to_min(shared.minimize, sol.objective);
        let inc = shared.incumbent_min();
        if inc.is_finite() && bound >= inc - prune_margin(inc, cfg) {
            busy += t0.elapsed();
            continue;
        }
        match frac_var(shared.int_vars, &sol.values, cfg.int_tol, shared.obj_coeff) {
            None => {
                shared.offer_incumbent(bound, sol.values);
            }
            Some(j) => {
                if let Some(x) = round_heuristic(shared.problem, &sol.values, cfg.int_tol) {
                    let obj = to_min(shared.minimize, shared.problem.objective_value(&x));
                    shared.offer_incumbent(obj, x);
                }
                let (dive, other) = make_children(
                    shared,
                    &node.fixes,
                    j,
                    sol.values[j],
                    lo_buf[j],
                    hi_buf[j],
                    bound,
                    node.depth + 1,
                );
                shared.push_node(other, true);
                local = Some(dive);
            }
        }
        busy += t0.elapsed();
    }
    (nodes_done, busy, simplex.kernel_stats())
}

/// Branch on the fractional variable with the largest |objective
/// coefficient| (bank decisions before colors), tie-broken by
/// most-fractional.
fn frac_var(int_vars: &[usize], x: &[f64], int_tol: f64, obj_coeff: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &j in int_vars {
        let f = (x[j] - x[j].round()).abs();
        if f > int_tol {
            let dist = 0.5 - (x[j] - x[j].floor() - 0.5).abs();
            let score = obj_coeff[j] * 10.0 + dist;
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((j, score));
            }
        }
    }
    best.map(|(j, _)| j)
}

/// [`solve_milp`] with structured telemetry: the presolve reduction runs
/// under a `phase.ilp.presolve` span and the root relaxation plus tree
/// search under `phase.ilp.solve`, so per-sub-phase wall time and heap
/// attribution land where the work happens; after the solve (successful
/// or budget-exhausted) the search's [`SolveStats`] are published to
/// `obs` as `ilp.*` counters plus `ilp.root` / `ilp.solve` spans. All
/// emission happens outside the pivot and node hot loops, so a no-op
/// observer costs one branch per solve.
///
/// # Errors
///
/// See [`MilpError`].
pub fn solve_milp_with(
    problem: &Problem,
    config: &BranchConfig,
    obs: &nova_obs::Obs,
) -> Result<MilpSolution, MilpError> {
    solve_milp_hinted(problem, config, None, obs)
}

/// [`solve_milp_with`] warm-started from a previously known integer point.
///
/// The hint is validated against the *original* problem (bounds,
/// integrality, every constraint row, tolerance `config.int_tol`) and, if
/// feasible, offered as the starting incumbent before the tree search —
/// the same injection path as the root rounding heuristic. A feasible
/// hint bounds the search from above immediately, so node subtrees worse
/// than the previous solution are fathomed without being explored; an
/// infeasible or wrong-length hint is ignored. The solve result is never
/// *worse* than the hint's objective, and with budget exhaustion the hint
/// itself survives as the returned incumbent.
///
/// Intended for incremental recompilation: when only objective
/// coefficients or right-hand constants of an unchanged model *structure*
/// drift between solves, the previous solution stays feasible and usually
/// near-optimal. `stats.hint_accepted` records whether the hint was used.
///
/// Note that with a nonzero optimality gap (or the fathoming tolerances),
/// seeding an incumbent may legitimately steer the search to a *different*
/// within-gap solution than a cold solve would find; at `relative_gap = 0`
/// with zero fathoming tolerances the objective is identical either way.
///
/// # Errors
///
/// See [`MilpError`].
pub fn solve_milp_hinted_with(
    problem: &Problem,
    config: &BranchConfig,
    hint: &[f64],
    obs: &nova_obs::Obs,
) -> Result<MilpSolution, MilpError> {
    solve_milp_hinted(problem, config, Some(hint), obs)
}

fn solve_milp_hinted(
    problem: &Problem,
    config: &BranchConfig,
    hint: Option<&[f64]>,
    obs: &nova_obs::Obs,
) -> Result<MilpSolution, MilpError> {
    let res = solve_milp_inner(problem, config, hint, obs);
    if obs.enabled() {
        match &res {
            Ok(sol) => emit_stats(obs, &sol.stats),
            Err(MilpError::BudgetExhausted(stats)) => emit_stats(obs, stats),
            Err(_) => {}
        }
    }
    res
}

/// Publish one solve's statistics as observability events.
fn emit_stats(obs: &nova_obs::Obs, s: &SolveStats) {
    obs.span_dur("ilp.root", s.root_time);
    obs.span_dur("ilp.solve", s.total_time);
    obs.counter("ilp.nodes", s.nodes as u64);
    obs.counter("ilp.pivots", s.simplex_iterations as u64);
    obs.counter("ilp.refactorizations", s.refactorizations as u64);
    obs.counter("ilp.eta_pivots", s.eta_pivots as u64);
    obs.counter("ilp.activated_rows", s.activated_rows as u64);
    obs.counter("ilp.presolved_rows", s.presolved_rows as u64);
    obs.counter("ilp.cuts_added", s.cuts_added as u64);
    obs.counter("ilp.warm_hits", s.warm_hits as u64);
    obs.counter("ilp.warm_misses", s.warm_misses as u64);
    obs.counter("ilp.hint_accepted", u64::from(s.hint_accepted));
    obs.sample("ilp.pivots_per_sec", s.pivots_per_sec());
}

/// LP-relaxation rounding: solve only the root relaxation (with presolve
/// and lazy-row activation, under the configured deadline) and round the
/// fractional integers to the nearest feasible integer point. No tree
/// search is performed, so this is the cheapest way to obtain *some*
/// integer solution together with a proven bound — the staged allocator's
/// last ILP rung before giving up on the model entirely.
///
/// On success the reported `gap` is measured against the root LP bound;
/// `proven_optimal` is set only when that gap is within
/// `config.relative_gap` (e.g. an integral root).
///
/// # Errors
///
/// [`MilpError::BudgetExhausted`] when the root LP hits the deadline or
/// the rounded point is infeasible; other [`MilpError`] variants as for
/// [`solve_milp`].
pub fn solve_rounded(problem: &Problem, config: &BranchConfig) -> Result<MilpSolution, MilpError> {
    solve_rounded_inner(problem, config, &nova_obs::Obs::noop())
}

fn solve_rounded_inner(
    problem: &Problem,
    config: &BranchConfig,
    obs: &nova_obs::Obs,
) -> Result<MilpSolution, MilpError> {
    let start = Instant::now();
    let deadline = config.time_limit.map(|l| start + l);
    let minimize = problem.sense == Sense::Minimize;
    let mut stats = SolveStats {
        threads: 1,
        per_thread_nodes: vec![0],
        ..SolveStats::default()
    };
    let pre = {
        let _span = obs.span("phase.ilp.presolve");
        prepare(problem, config, &mut stats)
    }?;
    // Emits on drop at whichever return the root solve + rounding reaches.
    let _solve_span = obs.span("phase.ilp.solve");
    let work = pre.problem(problem);
    let int_vars: Vec<usize> = work
        .vars
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    let kernel = config.effective_kernel();
    stats.kernel = kernel.as_str().to_string();
    let mut simplex = Simplex::with_rows_kernel(work, Some(&pre.core), kernel);
    simplex.set_deadline(deadline);
    let mut lazy = pre.lazy.clone();
    let root_start = Instant::now();
    let mut pivots = 0usize;
    let mut activated = 0usize;
    let root = match solve_lazy(
        work,
        &mut simplex,
        &mut lazy,
        &mut pivots,
        &mut activated,
        &pre.lo,
        &pre.hi,
    ) {
        Ok((s, _)) => s,
        Err(LpError::Infeasible) => return Err(MilpError::Infeasible),
        Err(LpError::Unbounded) => return Err(MilpError::Unbounded),
        Err(LpError::TimeLimit) => {
            stats.root_time = root_start.elapsed();
            stats.total_time = start.elapsed();
            stats.absorb_kernel(&simplex.kernel_stats());
            return Err(MilpError::BudgetExhausted(Box::new(stats)));
        }
        Err(e) => return Err(MilpError::Numerical(e)),
    };
    stats.root_time = root_start.elapsed();
    stats.root_objective = root.objective;
    stats.simplex_iterations = pivots;
    stats.activated_rows = activated;
    stats.nodes = 1;
    stats.absorb_kernel(&simplex.kernel_stats());
    let integral = int_vars
        .iter()
        .all(|&j| (root.values[j] - root.values[j].round()).abs() <= config.int_tol);
    if integral {
        stats.proven_optimal = true;
        stats.cpu_time = stats.root_time;
        stats.total_time = start.elapsed();
        return Ok(MilpSolution {
            objective: problem.objective_value(&root.values),
            values: root.values,
            stats,
        });
    }
    match round_heuristic(work, &root.values, config.int_tol) {
        Some(x) => {
            let objective = problem.objective_value(&x);
            let obj_min = to_min(minimize, objective);
            let bound = to_min(minimize, root.objective);
            stats.gap = ((obj_min - bound) / obj_min.abs().max(1.0)).max(0.0);
            stats.proven_optimal = stats.gap <= config.relative_gap;
            stats.cpu_time = start.elapsed();
            stats.total_time = start.elapsed();
            Ok(MilpSolution {
                objective,
                values: x,
                stats,
            })
        }
        None => {
            stats.total_time = start.elapsed();
            Err(MilpError::BudgetExhausted(Box::new(stats)))
        }
    }
}

/// [`solve_rounded`] with the same structured telemetry as
/// [`solve_milp_with`].
///
/// # Errors
///
/// See [`solve_rounded`].
pub fn solve_rounded_with(
    problem: &Problem,
    config: &BranchConfig,
    obs: &nova_obs::Obs,
) -> Result<MilpSolution, MilpError> {
    let res = solve_rounded_inner(problem, config, obs);
    if obs.enabled() {
        match &res {
            Ok(sol) => emit_stats(obs, &sol.stats),
            Err(MilpError::BudgetExhausted(stats)) => emit_stats(obs, stats),
            Err(_) => {}
        }
    }
    res
}

/// Solve a mixed 0-1/integer problem by parallel branch and bound.
///
/// # Errors
///
/// See [`MilpError`].
///
/// # Panics
///
/// Propagates panics from worker threads (poisoned shared state is
/// unreachable otherwise).
pub fn solve_milp(problem: &Problem, config: &BranchConfig) -> Result<MilpSolution, MilpError> {
    solve_milp_inner(problem, config, None, &nova_obs::Obs::noop())
}

fn solve_milp_inner(
    problem: &Problem,
    config: &BranchConfig,
    hint: Option<&[f64]>,
    obs: &nova_obs::Obs,
) -> Result<MilpSolution, MilpError> {
    let start = Instant::now();
    let deadline = config.time_limit.map(|l| start + l);
    let minimize = problem.sense == Sense::Minimize;

    // Validate the warm-start hint against the *original* problem up
    // front (bounds, integrality, every row). A root solve that comes out
    // integral is proven optimal regardless, so acceptance is recorded
    // here rather than at the injection point below.
    let hint = hint.filter(|h| problem.is_feasible(h, config.int_tol));

    // ---- presolve: forced reductions + optional cuts ----
    let mut stats = SolveStats {
        hint_accepted: hint.is_some(),
        ..SolveStats::default()
    };
    let pre = {
        let _span = obs.span("phase.ilp.presolve");
        prepare(problem, config, &mut stats)
    }?;
    // Emits on drop at whichever return the root solve + search reaches.
    let _solve_span = obs.span("phase.ilp.solve");
    let work = pre.problem(problem);
    let root_lo = &pre.lo;
    let root_hi = &pre.hi;
    let core = &pre.core;
    let mut lazy = pre.lazy.clone();

    let int_vars: Vec<usize> = work
        .vars
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    let mut obj_coeff: Vec<f64> = vec![0.0; work.vars.len()];
    for &(v, c) in &work.objective.terms {
        obj_coeff[v.index()] += c.abs();
    }

    // ---- root relaxation on the core rows, activating lazy rows ----
    let threads = config.effective_threads();
    stats.threads = threads;
    let kernel = config.effective_kernel();
    stats.kernel = kernel.as_str().to_string();
    let mut simplex = Simplex::with_rows_kernel(work, Some(core), kernel);
    simplex.set_deadline(deadline);

    let lazy_before = lazy.clone();
    let root_start = Instant::now();
    let mut root_pivots = 0usize;
    let mut root_activated = 0usize;
    let root = match solve_lazy(
        work,
        &mut simplex,
        &mut lazy,
        &mut root_pivots,
        &mut root_activated,
        root_lo,
        root_hi,
    ) {
        Ok((s, _)) => s,
        Err(LpError::Infeasible) => return Err(MilpError::Infeasible),
        Err(LpError::Unbounded) => return Err(MilpError::Unbounded),
        Err(LpError::TimeLimit) => {
            stats.total_time = start.elapsed();
            stats.root_time = root_start.elapsed();
            stats.absorb_kernel(&simplex.kernel_stats());
            return Err(MilpError::BudgetExhausted(Box::new(stats)));
        }
        Err(e) => return Err(MilpError::Numerical(e)),
    };
    stats.root_time = root_start.elapsed();
    stats.root_objective = root.objective;
    stats.simplex_iterations += root_pivots;
    stats.activated_rows += root_activated;
    stats.nodes = 1;

    let root_incumbent = round_heuristic(work, &root.values, config.int_tol)
        .map(|x| (to_min(minimize, problem.objective_value(&x)), x));

    // Root already integral: done without spawning anything.
    if frac_var(&int_vars, &root.values, config.int_tol, &obj_coeff).is_none() {
        stats.total_time = start.elapsed();
        stats.cpu_time = stats.root_time;
        stats.proven_optimal = true;
        stats.per_thread_nodes = vec![0; threads];
        stats.absorb_kernel(&simplex.kernel_stats());
        return Ok(MilpSolution {
            objective: problem.objective_value(&root.values),
            values: root.values,
            stats,
        });
    }

    // ---- parallel tree search ----
    let shared = Shared {
        problem: work,
        root_lo,
        root_hi,
        config,
        int_vars: &int_vars,
        obj_coeff: &obj_coeff,
        minimize,
        n_workers: threads,
        deadline,
        frontier: Mutex::new(Frontier {
            heap: BinaryHeap::new(),
            idle: 0,
            done: false,
        }),
        work_cv: Condvar::new(),
        incumbent: Mutex::new(None),
        inc_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        seq: AtomicU64::new(0),
        nodes: AtomicUsize::new(1),
        pivots: AtomicUsize::new(0),
        activated: AtomicUsize::new(0),
        warm_hits: AtomicUsize::new(0),
        warm_misses: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        budget_hit: AtomicBool::new(false),
        error: Mutex::new(None),
    };
    if let Some((obj, x)) = root_incumbent {
        shared.offer_incumbent(obj, x);
    }
    // Warm start: the validated caller-supplied previous solution seeds
    // the incumbent exactly like the root rounding heuristic
    // (offer_incumbent keeps whichever is better).
    if let Some(h) = hint {
        shared.offer_incumbent(to_min(minimize, problem.objective_value(h)), h.to_vec());
    }
    {
        let j = frac_var(&int_vars, &root.values, config.int_tol, &obj_coeff)
            .expect("checked fractional above");
        let (dive, other) = make_children(
            &shared,
            &[],
            j,
            root.values[j],
            root_lo[j],
            root_hi[j],
            to_min(minimize, root.objective),
            1,
        );
        let mut f = shared.frontier.lock().unwrap();
        f.heap.push(dive);
        f.heap.push(other);
    }

    // Worker 0 inherits the root workspace (its basis warm-starts the
    // first dive); the others get fresh workspaces preloaded with the
    // rows the root solve activated.
    let worker_rows: Vec<usize> = {
        let remaining: std::collections::HashSet<usize> = lazy.iter().copied().collect();
        core.iter()
            .copied()
            .chain(
                lazy_before
                    .iter()
                    .copied()
                    .filter(|i| !remaining.contains(i)),
            )
            .collect()
    };
    let mut setups: Vec<(Simplex, Vec<usize>)> = Vec::with_capacity(threads);
    let lazy_remaining = lazy;
    for t in 0..threads {
        if t == 0 {
            continue;
        }
        setups.push((
            Simplex::with_rows_kernel(work, Some(&worker_rows), kernel),
            lazy_remaining.clone(),
        ));
    }
    setups.insert(0, (simplex, lazy_remaining));

    let per_worker: Vec<(usize, Duration, KernelStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = setups
            .into_iter()
            .map(|(sx, lz)| {
                let sh = &shared;
                scope.spawn(move || worker(sh, sx, lz))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver worker panicked"))
            .collect()
    });

    // ---- assemble the result ----
    stats.nodes = shared.nodes.load(Ordering::Acquire);
    stats.simplex_iterations += shared.pivots.load(Ordering::Acquire);
    stats.activated_rows += shared.activated.load(Ordering::Acquire);
    stats.warm_hits = shared.warm_hits.load(Ordering::Acquire);
    stats.warm_misses = shared.warm_misses.load(Ordering::Acquire);
    stats.per_thread_nodes = per_worker.iter().map(|&(n, _, _)| n).collect();
    stats.cpu_time = stats.root_time + per_worker.iter().map(|&(_, b, _)| b).sum::<Duration>();
    for (_, _, ks) in &per_worker {
        stats.absorb_kernel(ks);
    }
    stats.total_time = start.elapsed();
    let budget_hit = shared.budget_hit.load(Ordering::Acquire);
    let Shared {
        frontier,
        incumbent,
        error,
        ..
    } = shared;
    if let Some(e) = error.into_inner().unwrap() {
        return Err(e);
    }
    let frontier = frontier.into_inner().unwrap();
    let best_bound = frontier
        .heap
        .iter()
        .map(|n| n.bound)
        .fold(f64::INFINITY, f64::min);
    match incumbent.into_inner().unwrap() {
        Some((obj, values)) => {
            let exhausted = frontier.heap.is_empty() && !budget_hit;
            // Remaining open nodes whose bounds sit inside the fathoming
            // margin cannot hold a meaningfully better solution, so the
            // incumbent is still proven optimal to within the configured
            // tolerances even when the deadline interrupts the search.
            let within_margin = obj - best_bound <= prune_margin(obj, config);
            stats.proven_optimal = exhausted || within_margin;
            stats.gap = if exhausted {
                0.0
            } else {
                ((obj - best_bound) / obj.abs().max(1.0)).max(0.0)
            };
            // Recompute from the values so the reported objective is a
            // function of the solution alone, not of whether it arrived
            // via an integral LP or the rounding heuristic.
            Ok(MilpSolution {
                objective: problem.objective_value(&values),
                values,
                stats,
            })
        }
        None if budget_hit => Err(MilpError::BudgetExhausted(Box::new(stats))),
        None => Err(MilpError::Infeasible),
    }
}

fn gap_abs(incumbent: f64, rel: f64) -> f64 {
    rel * incumbent.abs().max(1.0)
}

/// How far below the incumbent a node bound must reach to stay open: the
/// configured relative gap, floored by the fathoming tolerance that
/// absorbs LP numerical residue (see [`BranchConfig::fathom_abs`]).
fn prune_margin(incumbent: f64, cfg: &BranchConfig) -> f64 {
    gap_abs(incumbent, cfg.relative_gap).max(cfg.fathom_abs + cfg.fathom_rel * incumbent.abs())
}

/// Build both children of branching on `x_j`, returning `(dive, other)`
/// where `dive` is the child nearer the LP value (explored locally first
/// for early incumbents). Children extend the parent's sparse fix list by
/// one override; `cur_lo`/`cur_hi` are the parent's materialized bounds of
/// `x_j`, preserved on the side the branch does not clamp.
#[allow(clippy::too_many_arguments)]
fn make_children(
    shared: &Shared<'_>,
    parent_fixes: &[(u32, f64, f64)],
    j: usize,
    xj: f64,
    cur_lo: f64,
    cur_hi: f64,
    bound: f64,
    depth: usize,
) -> (OpenNode, OpenNode) {
    let floor = xj.floor();
    let ceil = xj.ceil();
    let child = |lo_j: f64, hi_j: f64| {
        let mut fixes = Vec::with_capacity(parent_fixes.len() + 1);
        fixes.extend_from_slice(parent_fixes);
        fixes.push((j as u32, lo_j, hi_j));
        OpenNode {
            fixes,
            bound,
            depth,
            seq: 0,
        }
    };
    let down = child(cur_lo, floor);
    let up = child(ceil, cur_hi);
    let (mut dive, mut other) = if xj - floor <= ceil - xj {
        (down, up)
    } else {
        (up, down)
    };
    dive.seq = shared.next_seq();
    other.seq = shared.next_seq();
    (dive, other)
}

/// Round fractional integers to their nearest value and accept the point if
/// it satisfies every constraint (lazy ones included).
fn round_heuristic(problem: &Problem, x: &[f64], tol: f64) -> Option<Vec<f64>> {
    let mut r: Vec<f64> = x.to_vec();
    let mut any_frac = false;
    for (i, d) in problem.vars.iter().enumerate() {
        if d.kind == VarKind::Integer {
            let rounded = r[i].round();
            if (r[i] - rounded).abs() > tol {
                any_frac = true;
            }
            r[i] = rounded.clamp(d.lower, d.upper);
        }
    }
    if !any_frac {
        return None;
    }
    if problem.is_feasible(&r, 1e-6) {
        Some(r)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::Cmp;

    fn cfg() -> BranchConfig {
        // Single worker keeps unit tests deterministic and cheap; the
        // multi-thread paths are covered by the determinism tests below
        // and the crate's property tests.
        BranchConfig::default().with_threads(1)
    }

    #[test]
    fn knapsack() {
        let mut p = Problem::maximize();
        let x1 = p.add_binary("x1");
        let x2 = p.add_binary("x2");
        let x3 = p.add_binary("x3");
        p.add_constraint("w", 3.0 * x1 + 4.0 * x2 + 2.0 * x3, Cmp::Le, 6.0);
        p.set_objective(10.0 * x1 + 13.0 * x2 + 7.0 * x3);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!((s.objective - 20.0).abs() < 1e-5, "got {}", s.objective);
        assert!(s.stats.proven_optimal);
        assert_eq!(s.stats.threads, 1);
        assert_eq!(s.stats.per_thread_nodes.len(), 1);
    }

    #[test]
    fn hinted_solve_matches_cold_and_records_acceptance() {
        // A knapsack with a fractional root, solved cold and then re-solved
        // with the cold solution as the warm-start hint: same objective,
        // same values, and the hint is recorded as accepted.
        let build = || {
            let mut p = Problem::maximize();
            let x1 = p.add_binary("x1");
            let x2 = p.add_binary("x2");
            let x3 = p.add_binary("x3");
            p.add_constraint("w", 3.0 * x1 + 4.0 * x2 + 2.0 * x3, Cmp::Le, 6.0);
            p.set_objective(10.0 * x1 + 13.0 * x2 + 7.0 * x3);
            p
        };
        let cold = solve_milp(&build(), &cfg()).unwrap();
        let p = build();
        let warm =
            solve_milp_hinted_with(&p, &cfg(), &cold.values, &nova_obs::Obs::noop()).unwrap();
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
        assert!(warm.stats.proven_optimal);
        assert!(warm.stats.hint_accepted);
    }

    #[test]
    fn infeasible_hint_is_ignored() {
        let mut p = Problem::maximize();
        let x1 = p.add_binary("x1");
        let x2 = p.add_binary("x2");
        let x3 = p.add_binary("x3");
        p.add_constraint("w", 3.0 * x1 + 4.0 * x2 + 2.0 * x3, Cmp::Le, 6.0);
        p.set_objective(10.0 * x1 + 13.0 * x2 + 7.0 * x3);
        // All-ones violates the knapsack row; wrong length fails the
        // feasibility check outright. Either way the solve proceeds cold.
        for bad in [vec![1.0, 1.0, 1.0], vec![1.0]] {
            let s = solve_milp_hinted_with(&p, &cfg(), &bad, &nova_obs::Obs::noop()).unwrap();
            assert!((s.objective - 20.0).abs() < 1e-5, "got {}", s.objective);
            assert!(!s.stats.hint_accepted);
        }
    }

    #[test]
    fn hint_survives_zero_budget_as_incumbent() {
        // With a zero deadline the cold solve exhausts its budget before
        // finding any integer point only if the root LP also times out; to
        // keep this robust, check the weaker guarantee that a hinted solve
        // under a tiny budget never returns an objective worse than the
        // hint's.
        let build = || {
            let mut p = Problem::maximize();
            let x1 = p.add_binary("x1");
            let x2 = p.add_binary("x2");
            let x3 = p.add_binary("x3");
            p.add_constraint("w", 3.0 * x1 + 4.0 * x2 + 2.0 * x3, Cmp::Le, 6.0);
            p.set_objective(10.0 * x1 + 13.0 * x2 + 7.0 * x3);
            p
        };
        let cold = solve_milp(&build(), &cfg()).unwrap();
        let p = build();
        let mut tight = cfg();
        tight.time_limit = Some(Duration::from_millis(1));
        if let Ok(s) = solve_milp_hinted_with(&p, &tight, &cold.values, &nova_obs::Obs::noop()) {
            assert!(s.objective >= cold.objective - 1e-9);
        }
    }

    #[test]
    fn infeasible_integer() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_constraint("c", 2.0 * x, Cmp::Eq, 1.0);
        p.set_objective(LinExpr::from(x));
        let err = solve_milp(&p, &cfg()).unwrap_err();
        assert_eq!(err, MilpError::Infeasible);
    }

    #[test]
    fn lp_infeasible_detected() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_constraint("c", LinExpr::from(x), Cmp::Ge, 2.0);
        assert_eq!(solve_milp(&p, &cfg()).unwrap_err(), MilpError::Infeasible);
    }

    #[test]
    fn singleton_presolve_fixes_vars() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint("fix", LinExpr::from(x), Cmp::Eq, 1.0);
        p.add_constraint("cap", LinExpr::from(x) + y, Cmp::Le, 1.0);
        p.set_objective(-1.0 * x - 1.0 * y);
        let s = solve_milp(&p, &cfg()).unwrap();
        // The full presolve fixes x=1 and then y=0 by substitution, so both
        // rows leave the model.
        assert!(s.stats.presolved_rows >= 1);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
        assert!((s.values[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn lazy_rows_activate_only_when_needed() {
        // min -x - y with a lazy row x + y <= 1: the LP without it picks
        // (1,1), which violates the row, forcing activation.
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_lazy_constraint("cap", LinExpr::from(x) + y, Cmp::Le, 1.0);
        p.set_objective(-1.0 * x - 1.0 * y);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!((s.objective + 1.0).abs() < 1e-6, "got {}", s.objective);
        assert_eq!(s.stats.activated_rows, 1);

        // A lazy row that is never binding stays out.
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_lazy_constraint("slack", LinExpr::from(x), Cmp::Le, 5.0);
        p.set_objective(LinExpr::from(x));
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.stats.activated_rows, 0);
    }

    #[test]
    fn assignment_with_coupling() {
        let costs = [[1.0, 9.0], [8.0, 2.0], [3.0, 3.0], [7.0, 1.0]];
        let mut p = Problem::minimize();
        let mut v = vec![];
        for i in 0..4 {
            for b in 0..2 {
                v.push(p.add_binary(format!("x{i}{b}")));
            }
        }
        for i in 0..4 {
            p.add_constraint(
                format!("item{i}"),
                LinExpr::from(v[i * 2]) + v[i * 2 + 1],
                Cmp::Eq,
                1.0,
            );
        }
        for b in 0..2 {
            let e = LinExpr::sum((0..4).map(|i| v[i * 2 + b]));
            p.add_constraint(format!("bin{b}"), e, Cmp::Le, 2.0);
        }
        let mut obj = LinExpr::new();
        for i in 0..4 {
            for b in 0..2 {
                obj += costs[i][b] * v[i * 2 + b];
            }
        }
        p.set_objective(obj);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!((s.objective - 7.0).abs() < 1e-5, "got {}", s.objective);
    }

    fn random_binary_problem(rng: &mut rand::rngs::StdRng, n: usize) -> Problem {
        use rand::Rng;
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..n).map(|i| p.add_binary(format!("b{i}"))).collect();
        for c in 0..5 {
            let mut e = LinExpr::new();
            for &v in &vars {
                e.add_term(v, rng.gen_range(-2..=3) as f64);
            }
            let sense = if rng.gen_bool(0.3) { Cmp::Eq } else { Cmp::Le };
            let rhs = rng.gen_range(0..=5) as f64;
            // Randomly mark some rows lazy: results must not change.
            if rng.gen_bool(0.5) {
                p.add_lazy_constraint(format!("c{c}"), e, sense, rhs);
            } else {
                p.add_constraint(format!("c{c}"), e, sense, rhs);
            }
        }
        let mut obj = LinExpr::new();
        for &v in &vars {
            obj.add_term(v, rng.gen_range(-5..=5) as f64);
        }
        p.set_objective(obj);
        p
    }

    #[test]
    fn exhaustive_crosscheck_random_binaries() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let n = 8;
            let p = random_binary_problem(&mut rng, n);
            let mut best: Option<f64> = None;
            for mask in 0..(1u32 << n) {
                let x: Vec<f64> = (0..n)
                    .map(|i| if mask >> i & 1 == 1 { 1.0 } else { 0.0 })
                    .collect();
                if p.is_feasible(&x, 1e-9) {
                    let v = p.objective_value(&x);
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                }
            }
            let milp = solve_milp(&p, &cfg());
            match best {
                Some(b) => {
                    let s = milp.unwrap_or_else(|e| panic!("trial {trial}: {e}, expected {b}"));
                    assert!(
                        (s.objective - b).abs() < 1e-4,
                        "trial {trial}: milp {} vs brute {b}",
                        s.objective
                    );
                }
                None => {
                    assert!(milp.is_err(), "trial {trial}: expected infeasible");
                }
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let p = random_binary_problem(&mut rng, 10);
            // Exact gap makes the optimum unique up to objective value, so
            // every thread count must report the same objective.
            let base = BranchConfig {
                relative_gap: 0.0,
                ..BranchConfig::default()
            };
            let reference = solve_milp(&p, &base.clone().with_threads(1));
            for t in [2usize, 4] {
                let got = solve_milp(&p, &base.clone().with_threads(t));
                match (&reference, &got) {
                    (Ok(a), Ok(b)) => {
                        assert!(
                            (a.objective - b.objective).abs() < 1e-6,
                            "trial {trial}: {} threads gave {} vs serial {}",
                            t,
                            b.objective,
                            a.objective
                        );
                        assert_eq!(b.stats.threads, t, "trial {trial}");
                        assert_eq!(
                            b.stats.per_thread_nodes.len(),
                            t,
                            "trial {trial}: per-thread node counts"
                        );
                    }
                    (Err(MilpError::Infeasible), Err(MilpError::Infeasible)) => {}
                    (a, b) => panic!("trial {trial}: serial {a:?} vs {t} threads {b:?}"),
                }
            }
        }
    }

    #[test]
    fn presolve_differential_same_objective() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..15 {
            let p = random_binary_problem(&mut rng, 9);
            let base = BranchConfig {
                relative_gap: 0.0,
                ..BranchConfig::default()
            }
            .with_threads(1);
            let on = solve_milp(&p, &base.clone());
            let off = solve_milp(&p, &base.clone().with_presolve(false));
            let no_cuts = solve_milp(&p, &base.clone().with_cuts(false));
            for (label, got) in [("presolve off", &off), ("cuts off", &no_cuts)] {
                match (&on, got) {
                    (Ok(a), Ok(b)) => {
                        assert!(
                            (a.objective - b.objective).abs() < 1e-6,
                            "trial {trial}: {label} gave {} vs {}",
                            b.objective,
                            a.objective
                        );
                        assert!(p.is_feasible(&a.values, 1e-6), "trial {trial}");
                        assert!(p.is_feasible(&b.values, 1e-6), "trial {trial}");
                    }
                    (Err(MilpError::Infeasible), Err(MilpError::Infeasible)) => {}
                    (a, b) => panic!("trial {trial}: {label}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn budget_exhausted_carries_partial_stats() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        // Find a feasible instance and strangle the node budget so the
        // search stops before it can prove anything.
        for _ in 0..20 {
            let p = random_binary_problem(&mut rng, 10);
            let mut c = cfg();
            c.max_nodes = 1; // root only
            match solve_milp(&p, &c) {
                Err(MilpError::BudgetExhausted(stats)) => {
                    assert!(stats.nodes >= 1);
                    assert!(stats.total_time >= stats.root_time);
                    return;
                }
                // Root integral, heuristic found a point, or infeasible:
                // try another instance.
                _ => continue,
            }
        }
        panic!("no instance exercised the budget path");
    }

    #[test]
    fn time_limit_stops_inside_simplex() {
        // A zero time budget must surface as BudgetExhausted via the
        // in-pivot-loop deadline check, not hang in the root LP.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let p = random_binary_problem(&mut rng, 12);
        let mut c = cfg();
        c.time_limit = Some(Duration::ZERO);
        match solve_milp(&p, &c) {
            Err(MilpError::BudgetExhausted(stats)) => {
                assert_eq!(stats.nodes, 0, "root LP never completed");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_telemetry_populated() {
        let costs = [[1.0, 9.0], [8.0, 2.0], [3.0, 3.0], [7.0, 1.0]];
        let mut p = Problem::minimize();
        let mut v = vec![];
        for i in 0..4 {
            for b in 0..2 {
                v.push(p.add_binary(format!("x{i}{b}")));
            }
        }
        for i in 0..4 {
            p.add_constraint(
                format!("item{i}"),
                LinExpr::from(v[i * 2]) + v[i * 2 + 1],
                Cmp::Eq,
                1.0,
            );
        }
        for b in 0..2 {
            let e = LinExpr::sum((0..4).map(|i| v[i * 2 + b]));
            p.add_constraint(format!("bin{b}"), e, Cmp::Le, 2.0);
        }
        let mut obj = LinExpr::new();
        for i in 0..4 {
            for b in 0..2 {
                obj += costs[i][b] * v[i * 2 + b];
            }
        }
        p.set_objective(obj);
        let s = solve_milp(&p, &cfg()).unwrap();
        if s.stats.nodes > 1 {
            // Worker 0 inherits the warm root basis, so with one thread
            // every node LP after the root should hit the warm path.
            assert!(
                s.stats.warm_hits + s.stats.warm_misses > 0,
                "node LPs must be classified"
            );
            assert!(s.stats.warm_hit_rate() > 0.0, "expected warm hits");
        }
        assert_eq!(
            s.stats.per_thread_nodes.iter().sum::<usize>() + 1,
            s.stats.nodes,
            "per-thread nodes + root == total"
        );
    }

    #[test]
    fn rounded_solve_is_feasible_with_bound() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(19);
        let mut exercised = 0;
        for _ in 0..30 {
            let p = random_binary_problem(&mut rng, 10);
            match solve_rounded(&p, &cfg()) {
                Ok(s) => {
                    assert!(p.is_feasible(&s.values, 1e-6), "rounded point feasible");
                    assert!(s.stats.gap >= 0.0);
                    assert_eq!(s.stats.nodes, 1, "no tree search");
                    // The bound must be valid: for minimization, the root
                    // LP objective is a lower bound on the exact optimum.
                    if let Ok(exact) = solve_milp(&p, &cfg()) {
                        assert!(
                            s.stats.root_objective <= exact.objective + 1e-6,
                            "root bound {} vs exact {}",
                            s.stats.root_objective,
                            exact.objective
                        );
                        assert!(s.objective >= exact.objective - 1e-6);
                    }
                    exercised += 1;
                }
                Err(MilpError::BudgetExhausted(stats)) => {
                    // Rounding failed: still carries the root stats.
                    assert_eq!(stats.nodes, 1);
                }
                Err(MilpError::Infeasible) => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(exercised > 0, "no instance produced a rounded solution");
    }

    #[test]
    fn rounded_solve_honours_deadline() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let p = random_binary_problem(&mut rng, 12);
        let mut c = cfg();
        c.time_limit = Some(Duration::ZERO);
        match solve_rounded(&p, &c) {
            Err(MilpError::BudgetExhausted(stats)) => {
                assert_eq!(stats.nodes, 0, "root LP never completed");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn respects_time_limit_field() {
        let mut c = cfg();
        c.time_limit = Some(Duration::from_secs(30));
        let mut p = Problem::maximize();
        let x = p.add_binary("x");
        p.set_objective(LinExpr::from(x));
        let s = solve_milp(&p, &c).unwrap();
        assert_eq!(s.objective, 1.0);
    }

    #[test]
    fn effective_threads_resolution() {
        let c = BranchConfig::default().with_threads(3);
        assert_eq!(c.effective_threads(), 3);
        let auto = BranchConfig::default();
        assert!(auto.effective_threads() >= 1);
    }
}
