//! MILP presolve: bound-based row reduction plus cutting planes.
//!
//! [`presolve`] shrinks a [`Problem`] before the branch-and-bound search
//! sees it, applying only *forced* reductions — transformations implied by
//! the constraints and integrality alone — so the integer feasible set (and
//! therefore the optimal objective) is exactly preserved:
//!
//! * **singleton rows** become variable bounds and leave the LP entirely
//!   (subsuming the solver's historical singleton pass);
//! * **activity-based bound tightening** propagates row activities into
//!   tighter variable bounds, with inward rounding for integers; rows whose
//!   worst-case activity can no longer violate them are dropped as
//!   redundant, and rows forced to their bound fix every participating
//!   variable;
//! * **fixed-variable substitution** folds `lo == hi` columns into the
//!   right-hand sides, often cascading into new singletons;
//! * **coefficient-wise domination** drops a row implied, coordinate by
//!   coordinate, by another row over the same support (requires nonnegative
//!   lower bounds, which the allocator's 0-1 models satisfy);
//! * **cover cuts** strengthen the LP relaxation of knapsack-like `≤` rows
//!   over binaries: if the `k` largest coefficients already overflow the
//!   right-hand side, at most `k − 1` of those variables can be set.
//!
//! Variable *columns are never renumbered*: a fixed variable keeps its
//! column with `lower == upper`, so a solution of the reduced problem is a
//! solution of the original one verbatim and postsolve is the identity.
//! This is what keeps the solver's lexicographic incumbent tie-break — and
//! with it the allocator's exact-match determinism counters — stable under
//! presolve.
//!
//! Every pass iterates rows and terms in index order, so the reduction is
//! deterministic regardless of thread count or hash-map iteration order.

use crate::expr::Var;
use crate::problem::{Cmp, Problem, VarKind};

/// Tolerance below which a bound improvement is not worth recording.
const TIGHTEN_MIN: f64 = 1e-6;
/// Feasibility slack when comparing bounds and activities.
const FEAS_TOL: f64 = 1e-7;
/// Inward-rounding tolerance for integer bounds.
const INT_TOL: f64 = 1e-6;
/// Coefficients smaller than this are not divided by.
const COEF_TOL: f64 = 1e-9;
/// Fixpoint pass cap (each pass is `O(nnz)`; real models converge in 2-4).
const MAX_PASSES: usize = 16;
/// Pairwise domination is skipped for support buckets larger than this.
const MAX_BUCKET: usize = 64;

/// Counters describing one presolve reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Rows removed for any reason (singleton, redundant, dominated, empty).
    pub rows_dropped: usize,
    /// Rows converted into variable bounds (one live term).
    pub singleton_rows: usize,
    /// Rows dropped because their worst-case activity already satisfies them.
    pub redundant_rows: usize,
    /// Rows dropped because another row implies them coefficient-wise.
    pub dominated_rows: usize,
    /// Variable bound improvements applied (both sides counted).
    pub bounds_tightened: usize,
    /// Variables fixed (`lower == upper`) by the reduction.
    pub fixed_vars: usize,
    /// Cover-cut rows appended to the reduced problem.
    pub cuts_added: usize,
}

/// Output of [`presolve`]: the reduced problem plus the partition of its
/// rows into the working LP (`core`) and the lazily activated set (`lazy`).
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced problem. Same variable columns as the input (postsolve is
    /// the identity); rows are the surviving originals, with fixed variables
    /// substituted out, followed by any cut rows.
    pub problem: Problem,
    /// Indices of non-lazy rows of `problem` (cut rows included).
    pub core: Vec<usize>,
    /// Indices of lazy rows of `problem`.
    pub lazy: Vec<usize>,
    /// What the reduction did.
    pub stats: PresolveStats,
}

/// Marker error: presolve proved the problem has no feasible point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible;

/// Bound store with tightening helpers; every mutation keeps `lo <= hi`
/// or reports [`Infeasible`].
struct Bounds<'a> {
    lo: &'a mut [f64],
    hi: &'a mut [f64],
    int: &'a [bool],
    tightened: usize,
}

impl Bounds<'_> {
    /// Impose `x_j <= b` (rounded inward for integers). Returns whether the
    /// bound actually improved.
    fn le(&mut self, j: usize, mut b: f64) -> Result<bool, Infeasible> {
        if self.int[j] {
            b = (b + INT_TOL).floor();
        }
        if b >= self.hi[j] - TIGHTEN_MIN {
            return Ok(false);
        }
        if b < self.lo[j] - FEAS_TOL {
            return Err(Infeasible);
        }
        self.hi[j] = b.max(self.lo[j]);
        self.tightened += 1;
        Ok(true)
    }

    /// Impose `x_j >= b` (rounded inward for integers).
    fn ge(&mut self, j: usize, mut b: f64) -> Result<bool, Infeasible> {
        if self.int[j] {
            b = (b - INT_TOL).ceil();
        }
        if b <= self.lo[j] + TIGHTEN_MIN {
            return Ok(false);
        }
        if b > self.hi[j] + FEAS_TOL {
            return Err(Infeasible);
        }
        self.lo[j] = b.min(self.hi[j]);
        self.tightened += 1;
        Ok(true)
    }

    fn fixed(&self, j: usize) -> bool {
        self.lo[j] == self.hi[j]
    }
}

/// Activity range of the live (non-fixed) part of a row, tracking infinite
/// contributions separately so single-infinity residuals still tighten.
#[derive(Default, Clone, Copy)]
struct Activity {
    min: f64,
    max: f64,
    inf_min: usize,
    inf_max: usize,
}

impl Activity {
    fn add(&mut self, a: f64, lo: f64, hi: f64) {
        let (cmin, cmax) = if a > 0.0 {
            (a * lo, a * hi)
        } else {
            (a * hi, a * lo)
        };
        if cmin.is_finite() {
            self.min += cmin;
        } else {
            self.inf_min += 1;
        }
        if cmax.is_finite() {
            self.max += cmax;
        } else {
            self.inf_max += 1;
        }
    }

    /// Lower activity bound excluding one term's contribution `cmin`, or
    /// `None` when still `-inf`.
    fn min_without(&self, cmin: f64) -> Option<f64> {
        if cmin.is_finite() {
            (self.inf_min == 0).then_some(self.min - cmin)
        } else {
            (self.inf_min == 1).then_some(self.min)
        }
    }

    fn max_without(&self, cmax: f64) -> Option<f64> {
        if cmax.is_finite() {
            (self.inf_max == 0).then_some(self.max - cmax)
        } else {
            (self.inf_max == 1).then_some(self.max)
        }
    }

    fn min_bound(&self) -> f64 {
        if self.inf_min == 0 {
            self.min
        } else {
            f64::NEG_INFINITY
        }
    }

    fn max_bound(&self) -> f64 {
        if self.inf_max == 0 {
            self.max
        } else {
            f64::INFINITY
        }
    }
}

/// Reduce `p` by forced bound reasoning and (optionally) append cover cuts.
///
/// The reduced problem has exactly the same variables and optimal integer
/// objective as `p`; see the module docs for the catalogue of reductions.
///
/// # Errors
///
/// [`Infeasible`] when the reduction proves no assignment can satisfy the
/// constraints and integrality.
pub fn presolve(p: &Problem, cuts: bool) -> Result<Presolved, Infeasible> {
    let n = p.num_vars();
    let m = p.num_constraints();
    let mut stats = PresolveStats::default();
    let mut lo: Vec<f64> = p.vars.iter().map(|d| d.lower).collect();
    let mut hi: Vec<f64> = p.vars.iter().map(|d| d.upper).collect();
    let is_int: Vec<bool> = p.vars.iter().map(|d| d.kind == VarKind::Integer).collect();
    let fixed_before = lo.iter().zip(hi.iter()).filter(|(l, h)| l == h).count();
    let mut b = Bounds {
        lo: &mut lo,
        hi: &mut hi,
        int: &is_int,
        tightened: 0,
    };
    // Integer bounds start rounded inward.
    for j in 0..n {
        if b.int[j] {
            b.lo[j] = b.lo[j].ceil();
            b.hi[j] = b.hi[j].floor();
            if b.lo[j] > b.hi[j] {
                return Err(Infeasible);
            }
        }
    }

    let mut alive = vec![true; m];
    let mut changed = true;
    let mut passes = 0;
    while changed && passes < MAX_PASSES {
        changed = false;
        passes += 1;
        for (i, row_alive) in alive.iter_mut().enumerate() {
            if !*row_alive {
                continue;
            }
            let r = p.row_view(i);
            // Substitute fixed variables and measure the live remainder.
            let mut erhs = r.rhs;
            let mut live = 0usize;
            let mut last = 0usize;
            let mut act = Activity::default();
            for (k, (&c, &a)) in r.cols.iter().zip(r.vals).enumerate() {
                let j = c as usize;
                if b.fixed(j) {
                    erhs -= a * b.lo[j];
                } else {
                    live += 1;
                    last = k;
                    act.add(a, b.lo[j], b.hi[j]);
                }
            }
            if live == 0 {
                let ok = match r.cmp {
                    Cmp::Le => 0.0 <= erhs + FEAS_TOL,
                    Cmp::Ge => 0.0 >= erhs - FEAS_TOL,
                    Cmp::Eq => erhs.abs() <= FEAS_TOL,
                };
                if !ok {
                    return Err(Infeasible);
                }
                *row_alive = false;
                stats.rows_dropped += 1;
                stats.redundant_rows += 1;
                continue;
            }
            if live == 1 {
                let (c, a) = (r.cols[last], r.vals[last]);
                let j = c as usize;
                if a.abs() < COEF_TOL {
                    // Degenerate coefficient: keep the row for the LP.
                    continue;
                }
                let bound = erhs / a;
                let improved = match (r.cmp, a > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => b.le(j, bound)?,
                    (Cmp::Ge, true) | (Cmp::Le, false) => b.ge(j, bound)?,
                    (Cmp::Eq, _) => {
                        let x = b.le(j, bound)?;
                        b.ge(j, bound)? || x
                    }
                };
                changed |= improved;
                *row_alive = false;
                stats.rows_dropped += 1;
                stats.singleton_rows += 1;
                continue;
            }
            // Redundancy: the row can never be violated within the bounds.
            let redundant = match r.cmp {
                Cmp::Le => act.max_bound() <= erhs + FEAS_TOL,
                Cmp::Ge => act.min_bound() >= erhs - FEAS_TOL,
                Cmp::Eq => act.max_bound() <= erhs + FEAS_TOL && act.min_bound() >= erhs - FEAS_TOL,
            };
            if redundant {
                *row_alive = false;
                stats.rows_dropped += 1;
                stats.redundant_rows += 1;
                continue;
            }
            // Infeasibility: the row can never be satisfied.
            let impossible = match r.cmp {
                Cmp::Le => act.min_bound() > erhs + FEAS_TOL,
                Cmp::Ge => act.max_bound() < erhs - FEAS_TOL,
                Cmp::Eq => act.min_bound() > erhs + FEAS_TOL || act.max_bound() < erhs - FEAS_TOL,
            };
            if impossible {
                return Err(Infeasible);
            }
            // Activity-based tightening of each live variable.
            for (&c, &a) in r.cols.iter().zip(r.vals) {
                let j = c as usize;
                if b.fixed(j) || a.abs() < COEF_TOL {
                    continue;
                }
                let (cmin, cmax) = if a > 0.0 {
                    (a * b.lo[j], a * b.hi[j])
                } else {
                    (a * b.hi[j], a * b.lo[j])
                };
                if matches!(r.cmp, Cmp::Le | Cmp::Eq) {
                    if let Some(rest) = act.min_without(cmin) {
                        let limit = (erhs - rest) / a;
                        changed |= if a > 0.0 {
                            b.le(j, limit)?
                        } else {
                            b.ge(j, limit)?
                        };
                    }
                }
                if matches!(r.cmp, Cmp::Ge | Cmp::Eq) {
                    if let Some(rest) = act.max_without(cmax) {
                        let limit = (erhs - rest) / a;
                        changed |= if a > 0.0 {
                            b.ge(j, limit)?
                        } else {
                            b.le(j, limit)?
                        };
                    }
                }
            }
        }
    }

    // ---- coefficient-wise domination over identical supports ----
    // Live supports (fixed columns excluded) are bucketed; within a bucket
    // a row implied coordinate-by-coordinate by another is dropped. Valid
    // only when every support variable has a nonnegative lower bound.
    {
        // One arena of live-support terms with (start, len) spans per row:
        // no per-row Vec, no hash-map key allocation. Rows are grouped by
        // sorting their indices by support columns (row index breaks ties,
        // so buckets list rows in ascending order exactly as before).
        let mut sig_data: Vec<(u32, f64)> = Vec::new();
        let mut span: Vec<(u32, u32)> = vec![(0, 0); m];
        let mut erhs_of: Vec<f64> = vec![0.0; m];
        let mut order: Vec<u32> = Vec::new();
        for i in 0..m {
            if !alive[i] {
                continue;
            }
            let r = p.row_view(i);
            let mut erhs = r.rhs;
            let start = sig_data.len();
            for (&c, &a) in r.cols.iter().zip(r.vals) {
                let j = c as usize;
                if b.fixed(j) {
                    erhs -= a * b.lo[j];
                } else {
                    sig_data.push((c, a));
                }
            }
            sig_data[start..].sort_unstable_by_key(|&(c, _)| c);
            if sig_data[start..]
                .iter()
                .any(|&(c, _)| b.lo[c as usize] < 0.0)
            {
                sig_data.truncate(start);
                continue;
            }
            span[i] = (start as u32, (sig_data.len() - start) as u32);
            erhs_of[i] = erhs;
            order.push(i as u32);
        }
        let sig = |i: usize| {
            let (s, l) = span[i];
            &sig_data[s as usize..(s + l) as usize]
        };
        order.sort_unstable_by(|&x, &y| {
            let (a, c) = (sig(x as usize), sig(y as usize));
            a.iter()
                .map(|&(col, _)| col)
                .cmp(c.iter().map(|&(col, _)| col))
                .then(x.cmp(&y))
        });
        let mut s = 0;
        while s < order.len() {
            let mut e = s + 1;
            while e < order.len()
                && sig(order[s] as usize)
                    .iter()
                    .map(|&(c, _)| c)
                    .eq(sig(order[e] as usize).iter().map(|&(c, _)| c))
            {
                e += 1;
            }
            let bucket = &order[s..e];
            s = e;
            if bucket.len() < 2 || bucket.len() > MAX_BUCKET {
                continue;
            }
            for xi in 0..bucket.len() {
                let i = bucket[xi] as usize;
                if !alive[i] {
                    continue;
                }
                for &k in &bucket[xi + 1..] {
                    let k = k as usize;
                    if !alive[k] || !alive[i] {
                        continue;
                    }
                    if let Some(d) = dominated(p, i, k, sig(i), sig(k), &erhs_of)? {
                        alive[d] = false;
                        stats.rows_dropped += 1;
                        stats.dominated_rows += 1;
                    }
                }
            }
        }
    }

    stats.bounds_tightened = b.tightened;
    stats.fixed_vars = lo
        .iter()
        .zip(hi.iter())
        .filter(|(l, h)| l == h)
        .count()
        .saturating_sub(fixed_before);

    // ---- materialize the reduced problem ----
    let mut out = p.clone_shell();
    for j in 0..n {
        out.set_bounds(Var(j as u32), lo[j], hi[j]);
    }
    let mut core = Vec::new();
    let mut lazy = Vec::new();
    // `push_row_raw` must see the final rhs, so the live terms are staged
    // in one buffer (reused across rows) while the substitutions adjust
    // `erhs`.
    let mut terms: Vec<(u32, f64)> = Vec::new();
    for (i, &row_alive) in alive.iter().enumerate() {
        if !row_alive {
            continue;
        }
        let r = p.row_view(i);
        let mut meta = p.row_meta(i);
        let mut erhs = r.rhs;
        let idx = out.num_constraints();
        terms.clear();
        for (&c, &a) in r.cols.iter().zip(r.vals) {
            let j = c as usize;
            if lo[j] == hi[j] {
                erhs -= a * lo[j];
            } else {
                terms.push((c, a));
            }
        }
        meta.rhs = erhs;
        out.push_row_raw(meta, terms.iter().copied());
        if meta.lazy {
            lazy.push(idx);
        } else {
            core.push(idx);
        }
    }

    // ---- cover cuts on knapsack-like binary ≤-rows ----
    if cuts {
        let n_rows = out.num_constraints();
        let mut covers: Vec<(Vec<u32>, f64)> = Vec::new();
        let mut terms: Vec<(f64, u32)> = Vec::new();
        for i in 0..n_rows {
            let r = out.row_view(i);
            if r.cmp != Cmp::Le || r.len() < 2 {
                continue;
            }
            let binary = r.cols.iter().zip(r.vals).all(|(&c, &a)| {
                let j = c as usize;
                a > COEF_TOL && is_int[j] && lo[j] >= 0.0 && hi[j] <= 1.0 && lo[j] < hi[j]
            });
            if !binary || r.rhs <= 0.0 {
                continue;
            }
            terms.clear();
            terms.extend(r.cols.iter().zip(r.vals).map(|(&c, &a)| (a, c)));
            // Largest coefficients first; column index breaks ties so the
            // cut is independent of input order.
            terms.sort_unstable_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            let mut sum = 0.0;
            let mut k = 0;
            while k < terms.len() && sum <= r.rhs + FEAS_TOL {
                sum += terms[k].0;
                k += 1;
            }
            // Cover of the k largest coefficients: at most k-1 of them can
            // be 1. Only worth adding when it tightens the LP relaxation.
            if k >= 2 && sum > r.rhs + FEAS_TOL && ((k - 1) as f64) < r.rhs - TIGHTEN_MIN {
                covers.push((terms[..k].iter().map(|&(_, c)| c).collect(), (k - 1) as f64));
            }
        }
        for (cols, rhs) in covers {
            let g = out.group("cover_cut");
            let idx = out.num_constraints();
            let mut row = out.row(g);
            for &c in &cols {
                row.term(Var(c), 1.0);
            }
            row.finish(Cmp::Le, rhs);
            core.push(idx);
            stats.cuts_added += 1;
        }
    }

    Ok(Presolved {
        problem: out,
        core,
        lazy,
        stats,
    })
}

/// Does row `i` imply row `k` (or vice versa) coefficient-wise? Both rows
/// share the same live support with nonnegative variables. Returns the row
/// to drop, or `Err` when two equality rows over identical coefficients
/// demand different right-hand sides.
fn dominated(
    p: &Problem,
    i: usize,
    k: usize,
    a: &[(u32, f64)],
    c: &[(u32, f64)],
    erhs: &[f64],
) -> Result<Option<usize>, Infeasible> {
    let (ri, rk) = (p.row_view(i), p.row_view(k));
    if ri.cmp != rk.cmp {
        return Ok(None);
    }
    debug_assert_eq!(a.len(), c.len());
    let mut a_ge = true; // every coeff of i >= coeff of k
    let mut c_ge = true;
    for (&(_, ai), &(_, ci)) in a.iter().zip(c.iter()) {
        if ai < ci - COEF_TOL {
            a_ge = false;
        }
        if ci < ai - COEF_TOL {
            c_ge = false;
        }
    }
    match ri.cmp {
        Cmp::Le => {
            // i: Σa·x ≤ ra implies k: Σc·x ≤ rc when a ≥ c and ra ≤ rc.
            if a_ge && erhs[i] <= erhs[k] + FEAS_TOL {
                return Ok(Some(k));
            }
            if c_ge && erhs[k] <= erhs[i] + FEAS_TOL {
                return Ok(Some(i));
            }
        }
        Cmp::Ge => {
            // i: Σa·x ≥ ra implies k: Σc·x ≥ rc when c ≥ a... i.e. k's lhs
            // dominates from above; drop the weaker (smaller-rhs) row.
            if c_ge && erhs[k] <= erhs[i] + FEAS_TOL {
                return Ok(Some(k));
            }
            if a_ge && erhs[i] <= erhs[k] + FEAS_TOL {
                return Ok(Some(i));
            }
        }
        Cmp::Eq => {
            if a_ge && c_ge {
                // Identical coefficients: rhs must agree.
                if (erhs[i] - erhs[k]).abs() > FEAS_TOL {
                    return Err(Infeasible);
                }
                return Ok(Some(k));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    #[test]
    fn singleton_rows_become_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint("fix", LinExpr::from(x), Cmp::Eq, 1.0);
        p.add_constraint("cap", LinExpr::from(x) + y, Cmp::Le, 1.0);
        let r = presolve(&p, true).unwrap();
        // `fix` pins x=1; substitution turns `cap` into y <= 0, fixing y.
        assert_eq!(r.problem.num_constraints(), 0);
        assert_eq!(r.stats.singleton_rows, 2);
        assert_eq!(r.stats.fixed_vars, 2);
        assert_eq!(r.problem.var_data(x).lower, 1.0);
        assert_eq!(r.problem.var_data(y).upper, 0.0);
    }

    #[test]
    fn infeasible_singleton_detected() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        p.add_constraint("c", 2.0 * x, Cmp::Eq, 1.0);
        assert_eq!(presolve(&p, false).unwrap_err(), Infeasible);
    }

    #[test]
    fn redundant_row_dropped() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint("loose", LinExpr::from(x) + y, Cmp::Le, 5.0);
        p.add_constraint("tight", LinExpr::from(x) + y, Cmp::Le, 1.0);
        let r = presolve(&p, false).unwrap();
        assert_eq!(r.problem.num_constraints(), 1);
        assert!(r.stats.redundant_rows + r.stats.dominated_rows >= 1);
    }

    #[test]
    fn bound_tightening_forces_vars() {
        // x + y >= 2 over binaries forces x = y = 1.
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint("force", LinExpr::from(x) + y, Cmp::Ge, 2.0);
        let r = presolve(&p, false).unwrap();
        assert_eq!(r.problem.var_data(x).lower, 1.0);
        assert_eq!(r.problem.var_data(y).lower, 1.0);
        assert_eq!(r.problem.num_constraints(), 0);
    }

    #[test]
    fn domination_drops_weaker_le_row() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        let z = p.add_binary("z");
        // Same support and coefficients; the tighter rhs implies the looser.
        p.add_constraint("strong", LinExpr::from(x) + y + z, Cmp::Le, 1.0);
        p.add_constraint("weak", LinExpr::from(x) + y + z, Cmp::Le, 2.0);
        let r = presolve(&p, false).unwrap();
        assert_eq!(r.stats.dominated_rows, 1);
        assert_eq!(r.problem.num_constraints(), 1);
        assert_eq!(r.problem.row_view(0).rhs, 1.0);
    }

    #[test]
    fn cover_cut_added_for_fractional_knapsack() {
        // 1·a + 1·b + 1·c <= 2.5 admits the cover {a,b,c}: at most 2 set.
        let mut p = Problem::minimize();
        let a = p.add_binary("a");
        let bb = p.add_binary("b");
        let c = p.add_binary("c");
        p.add_constraint("knap", LinExpr::from(a) + bb + c, Cmp::Le, 2.5);
        let r = presolve(&p, true).unwrap();
        assert_eq!(r.stats.cuts_added, 1);
        let cut = r.problem.row_view(r.problem.num_constraints() - 1);
        assert_eq!(cut.rhs, 2.0);
        assert_eq!(cut.len(), 3);
        // And the cut is not added when it would be implied.
        let mut q = Problem::minimize();
        let a = q.add_binary("a");
        let bb = q.add_binary("b");
        q.add_constraint("knap", LinExpr::from(a) + bb, Cmp::Le, 1.0);
        let r = presolve(&q, true).unwrap();
        assert_eq!(r.stats.cuts_added, 0);
    }

    #[test]
    fn lazy_partition_preserved() {
        let mut p = Problem::minimize();
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        let z = p.add_binary("z");
        p.add_constraint("core", LinExpr::from(x) + y, Cmp::Le, 1.0);
        p.add_lazy_constraint("lz", LinExpr::from(y) + z, Cmp::Le, 1.0);
        let r = presolve(&p, false).unwrap();
        assert_eq!(r.core.len(), 1);
        assert_eq!(r.lazy.len(), 1);
        assert!(r.problem.row_view(r.lazy[0]).lazy);
    }

    #[test]
    fn feasible_set_identical_on_integer_points() {
        // Brute-force equivalence over all 0-1 points of a small model.
        let mut p = Problem::minimize();
        let v: Vec<Var> = (0..4).map(|i| p.add_binary(format!("v{i}"))).collect();
        p.add_constraint("a", 2.0 * v[0] + v[1] + v[2], Cmp::Le, 2.5);
        p.add_constraint("b", LinExpr::from(v[1]) + v[2] + v[3], Cmp::Ge, 1.0);
        p.add_lazy_constraint("c", LinExpr::from(v[0]) + v[3], Cmp::Le, 1.0);
        let r = presolve(&p, true).unwrap();
        for mask in 0..16u32 {
            let x: Vec<f64> = (0..4)
                .map(|i| if mask >> i & 1 == 1 { 1.0 } else { 0.0 })
                .collect();
            assert_eq!(
                p.is_feasible(&x, 1e-9),
                r.problem.is_feasible(&x, 1e-9),
                "mask {mask:04b}"
            );
        }
    }
}
