//! Differential tests between the sparse-LU and dense basis kernels.
//!
//! The sparse kernel (Markowitz LU + eta file + devex pricing) and the
//! dense product-form inverse must agree on every solve: same LP
//! objectives, same branch-and-bound incumbents, same
//! feasible/infeasible verdicts. These tests push random bounded LPs and
//! small MILPs through both kernels explicitly (via
//! [`Simplex::with_rows_kernel`] / [`BranchConfig::with_kernel`]) so
//! they are independent of the `NOVA_ILP_KERNEL` environment variable.

use ilp::{solve_milp, BranchConfig, Cmp, KernelKind, LinExpr, Problem, Simplex};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandLp {
    n: usize,
    rows: Vec<(Vec<i8>, u8, i8)>, // coeffs, cmp (0/1/2), rhs
    obj: Vec<i8>,
    bounds: Vec<(u8, u8)>, // lower, width
}

fn lp_strategy() -> impl Strategy<Value = RandLp> {
    (2usize..=8).prop_flat_map(|n| {
        let row = (proptest::collection::vec(-3i8..=3, n), 0u8..3, -2i8..=8);
        (
            Just(n),
            proptest::collection::vec(row, 1..6),
            proptest::collection::vec(-5i8..=5, n),
            proptest::collection::vec((0u8..3, 1u8..4), n),
        )
            .prop_map(|(n, rows, obj, bounds)| RandLp {
                n,
                rows,
                obj,
                bounds,
            })
    })
}

/// Build a bounded continuous LP from the random description.
fn build_lp(rp: &RandLp) -> Problem {
    let mut p = Problem::minimize();
    let vars: Vec<_> = (0..rp.n)
        .map(|i| {
            let (lo, w) = rp.bounds[i];
            p.add_var(format!("x{i}"), lo as f64, (lo + w) as f64)
        })
        .collect();
    for (k, (coeffs, cmp, rhs)) in rp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            e.add_term(*v, *c as f64);
        }
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        p.add_constraint(format!("c{k}"), e, cmp, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (v, c) in vars.iter().zip(&rp.obj) {
        obj.add_term(*v, *c as f64);
    }
    p.set_objective(obj);
    p
}

/// Build a small 0-1 MILP over the same random row structure. The
/// objective is perturbed by distinct dyadic weights (exact in binary
/// floating point) so the optimal vector is unique: two binary vectors
/// can only tie if they agree on every perturbed coordinate. Without
/// this, equally-optimal incumbents would be search-order dependent —
/// each kernel finds one tie member and fathoms the subtree holding the
/// other, so the vectors could legitimately differ.
fn build_milp(rp: &RandLp) -> Problem {
    let mut p = Problem::minimize();
    let vars: Vec<_> = (0..rp.n).map(|i| p.add_binary(format!("b{i}"))).collect();
    for (k, (coeffs, cmp, rhs)) in rp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            e.add_term(*v, *c as f64);
        }
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        p.add_constraint(format!("c{k}"), e, cmp, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (i, (v, c)) in vars.iter().zip(&rp.obj).enumerate() {
        obj.add_term(*v, *c as f64 + (0.5f64).powi(i as i32 + 3));
    }
    p.set_objective(obj);
    p
}

fn lp_solve(p: &Problem, kind: KernelKind) -> Result<f64, ilp::LpError> {
    let core: Vec<usize> = (0..p.num_constraints()).collect();
    let mut sx = Simplex::with_rows_kernel(p, Some(&core), kind);
    sx.solve().map(|s| s.objective)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Same random bounded LP through both kernels: identical
    /// feasibility verdicts and equal objectives within tolerance.
    #[test]
    fn lp_dense_equals_sparse(rp in lp_strategy()) {
        let p = build_lp(&rp);
        let sparse = lp_solve(&p, KernelKind::Sparse);
        let dense = lp_solve(&p, KernelKind::Dense);
        match (sparse, dense) {
            (Ok(a), Ok(b)) => prop_assert!(
                (a - b).abs() < 1e-5,
                "sparse {a} vs dense {b}"
            ),
            (Err(ilp::LpError::Infeasible), Err(ilp::LpError::Infeasible)) => {}
            (a, b) => prop_assert!(false, "sparse {a:?} vs dense {b:?}"),
        }
    }

    /// Branch-and-bound on small MILPs: both kernels must land on the
    /// same objective AND the same incumbent vector (the exact-gap
    /// lexicographic incumbent rule pins ties down, so with fathoming
    /// tolerances disabled the searches are bit-for-bit comparable) at
    /// every thread count.
    #[test]
    fn milp_dense_equals_sparse(rp in lp_strategy(), threads in 1usize..=4) {
        let p = build_milp(&rp);
        let mut cfg = BranchConfig::default().with_threads(threads);
        cfg.relative_gap = 0.0;
        cfg.fathom_abs = 0.0;
        cfg.fathom_rel = 0.0;
        let sparse = solve_milp(&p, &cfg.clone().with_kernel(Some(KernelKind::Sparse)));
        let dense = solve_milp(&p, &cfg.with_kernel(Some(KernelKind::Dense)));
        match (&sparse, &dense) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.objective - b.objective).abs() < 1e-6,
                    "sparse {} vs dense {}", a.objective, b.objective);
                let ra: Vec<i64> = a.values.iter().map(|v| v.round() as i64).collect();
                let rb: Vec<i64> = b.values.iter().map(|v| v.round() as i64).collect();
                prop_assert_eq!(ra, rb,
                    "incumbent integer solutions diverged between kernels");
                prop_assert_eq!(a.stats.kernel.as_str(), "sparse");
                prop_assert_eq!(b.stats.kernel.as_str(), "dense");
            }
            (Err(ilp::MilpError::Infeasible), Err(ilp::MilpError::Infeasible)) => {}
            (a, b) => prop_assert!(false, "sparse {a:?} vs dense {b:?}"),
        }
    }

    /// Warm-started `resolve_with_bounds` on the sparse kernel tracks a
    /// cold dense solve under random bound fixings — the eta file and
    /// refactorizations must not drift the warm path away from the
    /// reference answer.
    #[test]
    fn warm_sparse_tracks_cold_dense(
        rp in lp_strategy(),
        fixings in proptest::collection::vec((0usize..8, any::<bool>()), 0..16),
    ) {
        let p = build_lp(&rp);
        let core: Vec<usize> = (0..p.num_constraints()).collect();
        let mut warm = Simplex::with_rows_kernel(&p, Some(&core), KernelKind::Sparse);
        // Refactorize after every eta so the warm path crosses many
        // factorization boundaries even on tiny problems.
        warm.set_refactor_interval(1);
        let n = p.num_vars();
        let mut lo: Vec<f64> = (0..n).map(|i| rp.bounds[i].0 as f64).collect();
        let mut hi: Vec<f64> =
            (0..n).map(|i| (rp.bounds[i].0 + rp.bounds[i].1) as f64).collect();
        if warm.solve_with_bounds(&lo, &hi).is_err() {
            return Ok(());
        }
        for (j, up) in fixings {
            let j = j % n;
            let v = if up { hi[j] } else { lo[j] };
            lo[j] = v;
            hi[j] = v;
            let w = warm.resolve_with_bounds(&lo, &hi);
            let c = Simplex::with_rows_kernel(&p, Some(&core), KernelKind::Dense)
                .solve_with_bounds(&lo, &hi);
            match (w, c) {
                (Ok(a), Ok(b)) => prop_assert!(
                    (a.objective - b.objective).abs() < 1e-5,
                    "warm sparse {} vs cold dense {}", a.objective, b.objective
                ),
                (Err(ilp::LpError::Infeasible), Err(ilp::LpError::Infeasible)) => {}
                (a, b) => prop_assert!(false, "warm {a:?} vs cold {b:?}"),
            }
        }
    }
}

/// `add_rows` immediately after a refactorization must preserve dual
/// feasibility: the appended block enters the factorization (not a
/// rebuilt inverse), and the following warm dual-simplex resolve has to
/// reach the same optimum as a cold solve of the full system.
#[test]
fn add_rows_after_refactorization_preserves_dual_feasibility() {
    // max x + y + z  s.t.  x + y <= 4, y + z <= 4  (0 <= each <= 3)
    let mut p = Problem::maximize();
    let x = p.add_var("x", 0.0, 3.0);
    let y = p.add_var("y", 0.0, 3.0);
    let z = p.add_var("z", 0.0, 3.0);
    p.add_constraint("r0", LinExpr::from(x) + y, Cmp::Le, 4.0);
    p.add_constraint("r1", LinExpr::from(y) + z, Cmp::Le, 4.0);
    // Lazy cuts activated later via add_rows.
    p.add_lazy_constraint("cut0", LinExpr::from(x) + z, Cmp::Le, 3.0);
    p.add_lazy_constraint("cut1", LinExpr::from(x) + y + z, Cmp::Le, 5.0);
    p.set_objective(LinExpr::from(x) + y + z);

    let core = [0usize, 1];
    let mut sx = Simplex::with_rows_kernel(&p, Some(&core), KernelKind::Sparse);
    // Force a refactorization on every pivot so add_rows always appends
    // to a freshly refactorized basis (the regression scenario).
    sx.set_refactor_interval(1);
    let lo = [0.0, 0.0, 0.0];
    let hi = [3.0, 3.0, 3.0];
    let relaxed = sx.solve_with_bounds(&lo, &hi).expect("relaxation solves");
    assert!(relaxed.objective >= 6.0 - 1e-7, "relaxation too weak");

    sx.add_rows(&p, &[2, 3]);
    let tightened = sx.resolve_with_bounds(&lo, &hi).expect("warm resolve");
    assert!(
        sx.last_solve_was_warm(),
        "resolve after add_rows fell back to a cold solve"
    );

    let full: Vec<usize> = (0..p.num_constraints()).collect();
    let cold = Simplex::with_rows_kernel(&p, Some(&full), KernelKind::Dense)
        .solve_with_bounds(&lo, &hi)
        .expect("cold reference solves");
    assert!(
        (tightened.objective - cold.objective).abs() < 1e-7,
        "warm {} vs cold {}",
        tightened.objective,
        cold.objective
    );
    // The warm answer must satisfy the activated cuts.
    assert!(p.is_feasible(&tightened.values, 1e-7));
}
