//! Property tests for the MILP solver: brute-force cross-checks over
//! random 0-1 programs, warm/cold equivalence, and lazy-row transparency.

use ilp::{solve_milp, BranchConfig, Cmp, LinExpr, Problem, Simplex};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandProblem {
    n: usize,
    rows: Vec<(Vec<i8>, u8, i8, bool)>, // coeffs, cmp (0/1/2), rhs, lazy
    obj: Vec<i8>,
}

fn problem_strategy() -> impl Strategy<Value = RandProblem> {
    (2usize..=7).prop_flat_map(|n| {
        let row = (
            proptest::collection::vec(-3i8..=3, n),
            0u8..3,
            -2i8..=6,
            any::<bool>(),
        );
        (
            Just(n),
            proptest::collection::vec(row, 1..5),
            proptest::collection::vec(-5i8..=5, n),
        )
            .prop_map(|(n, rows, obj)| RandProblem { n, rows, obj })
    })
}

fn build(rp: &RandProblem) -> Problem {
    let mut p = Problem::minimize();
    let vars: Vec<_> = (0..rp.n).map(|i| p.add_binary(format!("b{i}"))).collect();
    for (k, (coeffs, cmp, rhs, lazy)) in rp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            e.add_term(*v, *c as f64);
        }
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        if *lazy {
            p.add_lazy_constraint(format!("c{k}"), e, cmp, *rhs as f64);
        } else {
            p.add_constraint(format!("c{k}"), e, cmp, *rhs as f64);
        }
    }
    let mut obj = LinExpr::new();
    for (v, c) in vars.iter().zip(&rp.obj) {
        obj.add_term(*v, *c as f64);
    }
    p.set_objective(obj);
    p
}

fn brute_force(p: &Problem) -> Option<f64> {
    let n = p.num_vars();
    let mut best: Option<f64> = None;
    for mask in 0..(1u32 << n) {
        let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        if p.is_feasible(&x, 1e-9) {
            let v = p.objective_value(&x);
            best = Some(best.map_or(v, |b: f64| b.min(v)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn milp_matches_brute_force(rp in problem_strategy()) {
        let p = build(&rp);
        let expect = brute_force(&p);
        let got = solve_milp(&p, &BranchConfig::default());
        match expect {
            Some(b) => {
                let s = got.unwrap_or_else(|e| panic!("solver said {e}, brute force found {b}"));
                prop_assert!((s.objective - b).abs() < 1e-4,
                    "solver {} vs brute force {b}", s.objective);
            }
            None => prop_assert!(got.is_err(), "solver found a solution to an infeasible program"),
        }
    }

    #[test]
    fn parallel_matches_serial(rp in problem_strategy(), threads in 2usize..=4) {
        // With an exact gap the optimum objective is unique, so the
        // parallel search must reproduce the serial one bit-for-bit in
        // objective (values may differ only among exact ties, which the
        // lexicographic incumbent rule also pins down).
        let p = build(&rp);
        let mut cfg = BranchConfig::default().with_threads(1);
        cfg.relative_gap = 0.0;
        let serial = solve_milp(&p, &cfg);
        let par = solve_milp(&p, &cfg.clone().with_threads(threads));
        match (&serial, &par) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.objective - b.objective).abs() < 1e-6,
                    "serial {} vs {} threads {}", a.objective, threads, b.objective);
                prop_assert_eq!(b.stats.threads, threads);
                prop_assert!(b.stats.proven_optimal);
            }
            (Err(ilp::MilpError::Infeasible), Err(ilp::MilpError::Infeasible)) => {}
            (a, b) => prop_assert!(false, "serial {a:?} vs parallel {b:?}"),
        }
    }

    #[test]
    fn warm_equals_cold_under_random_fixings(
        rp in problem_strategy(),
        fixings in proptest::collection::vec((0usize..7, any::<bool>()), 0..20),
    ) {
        let p = build(&rp);
        // Only exercise the LP layer: strip lazy flags by rebuilding core.
        let core: Vec<usize> = (0..p.num_constraints()).collect();
        let mut warm = Simplex::with_rows(&p, Some(&core));
        let n = p.num_vars();
        let mut lo = vec![0.0; n];
        let mut hi = vec![1.0; n];
        if warm.solve_with_bounds(&lo, &hi).is_err() {
            return Ok(());
        }
        for (j, up) in fixings {
            let j = j % n;
            let v = if up { 1.0 } else { 0.0 };
            lo[j] = v;
            hi[j] = v;
            let w = warm.resolve_with_bounds(&lo, &hi);
            let c = Simplex::with_rows(&p, Some(&core)).solve_with_bounds(&lo, &hi);
            match (w, c) {
                (Ok(a), Ok(b)) => prop_assert!(
                    (a.objective - b.objective).abs() < 1e-5,
                    "warm {} vs cold {}", a.objective, b.objective
                ),
                (Err(ilp::LpError::Infeasible), Err(ilp::LpError::Infeasible)) => {}
                (a, b) => prop_assert!(false, "warm {a:?} vs cold {b:?}"),
            }
            // Occasionally unfix to exercise bound loosening.
            if j.is_multiple_of(3) {
                lo[j] = 0.0;
                hi[j] = 1.0;
            }
        }
    }
}
