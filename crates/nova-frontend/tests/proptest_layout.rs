//! Property tests for the layout algebra.

use nova_frontend::ast::LayoutExpr;
use nova_frontend::layout::{resolve, LayoutEnv};
use nova_frontend::Span;
use proptest::prelude::*;

/// Random layout expressions over bitfields and gaps.
fn layout_strategy() -> impl Strategy<Value = LayoutExpr> {
    let leaf = prop_oneof![
        (1u32..=32).prop_map(
            |w| LayoutExpr::Body(vec![nova_frontend::ast::LayoutItem::Bits(
                format!("f{w}"),
                w
            )])
        ),
        (1u32..=40).prop_map(LayoutExpr::Gap),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| LayoutExpr::Concat(Box::new(a), Box::new(b)))
    })
}

fn size_of(e: &LayoutExpr) -> u32 {
    match e {
        LayoutExpr::Gap(n) => *n,
        LayoutExpr::Body(items) => items
            .iter()
            .map(|i| match i {
                nova_frontend::ast::LayoutItem::Bits(_, w) => *w,
                nova_frontend::ast::LayoutItem::Gap(w) => *w,
                _ => 0,
            })
            .sum(),
        LayoutExpr::Concat(a, b) => size_of(a) + size_of(b),
        LayoutExpr::Name(..) => 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn concat_sizes_are_additive(e in layout_strategy()) {
        let env = LayoutEnv::new();
        let l = resolve(&e, &env).unwrap();
        prop_assert_eq!(l.size_bits, size_of(&e));
    }

    #[test]
    fn leaves_are_in_bounds_and_ordered(e in layout_strategy()) {
        let env = LayoutEnv::new();
        let l = resolve(&e, &env).unwrap();
        let mut last_end = 0;
        for (name, offset, width) in l.leaves() {
            prop_assert!(offset >= last_end, "field {} overlaps its predecessor", name);
            prop_assert!(offset + width <= l.size_bits);
            prop_assert!((1..=32).contains(&width));
            last_end = offset + width;
        }
    }

    #[test]
    fn shifting_embeds_consistently(e in layout_strategy(), pad in 1u32..64) {
        // {pad} ## e places every leaf of e exactly pad bits later.
        let env = LayoutEnv::new();
        let base = resolve(&e, &env).unwrap();
        let shifted = resolve(
            &LayoutExpr::Concat(Box::new(LayoutExpr::Gap(pad)), Box::new(e.clone())),
            &env,
        )
        .unwrap();
        let b: Vec<_> = base.leaves();
        let s: Vec<_> = shifted.leaves();
        prop_assert_eq!(b.len(), s.len());
        for ((bn, bo, bw), (sn, so, sw)) in b.iter().zip(&s) {
            prop_assert_eq!(bn, sn);
            prop_assert_eq!(bo + pad, *so);
            prop_assert_eq!(bw, sw);
        }
    }
}

#[test]
fn named_layouts_resolve_through_env() {
    let src = r#"
        layout inner = { a: 8, b: 8 };
        layout outer = { pre: 16, mid: inner, post: inner };
        fun main() { 0 }
    "#;
    let prog = nova_frontend::parse(src).unwrap();
    let mut env = LayoutEnv::new();
    for item in &prog.items {
        if let nova_frontend::ast::StmtKind::Layout(n, e) = &item.kind {
            let l = resolve(e, &env).unwrap();
            env.insert(n.clone(), l);
        }
    }
    let outer = &env["outer"];
    assert_eq!(outer.size_bits, 48);
    let leaves = outer.leaves();
    assert_eq!(leaves[0], ("pre".to_string(), 0, 16));
    assert_eq!(leaves[1], ("mid.a".to_string(), 16, 8));
    assert_eq!(leaves[4], ("post.b".to_string(), 40, 8));
    let _ = Span::default();
}
