//! Hand-written lexer for Nova source text.

use crate::error::{Diagnostic, Span};
use std::fmt;

/// Lexical token kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok {
    // Literals and names.
    /// Unsigned 32-bit literal (decimal or `0x` hex).
    Word,
    /// Identifier.
    Ident,
    // Keywords.
    /// `fun`
    Fun,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `layout`
    Layout,
    /// `overlay`
    Overlay,
    /// `pack`
    Pack,
    /// `unpack`
    Unpack,
    /// `try`
    Try,
    /// `handle`
    Handle,
    /// `raise`
    Raise,
    /// `true`
    True,
    /// `false`
    False,
    /// `const`
    Const,
    /// `word` (type)
    WordTy,
    /// `bool` (type)
    BoolTy,
    /// `packed` (type constructor)
    Packed,
    /// `unpacked` (type constructor)
    Unpacked,
    /// `exn` (exception type constructor)
    Exn,
    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `<-`
    LeftArrow,
    /// `##`
    HashHash,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `^`
    Caret,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Word => "word literal",
            Tok::Ident => "identifier",
            Tok::Fun => "'fun'",
            Tok::Let => "'let'",
            Tok::If => "'if'",
            Tok::Else => "'else'",
            Tok::While => "'while'",
            Tok::Layout => "'layout'",
            Tok::Overlay => "'overlay'",
            Tok::Pack => "'pack'",
            Tok::Unpack => "'unpack'",
            Tok::Try => "'try'",
            Tok::Handle => "'handle'",
            Tok::Raise => "'raise'",
            Tok::True => "'true'",
            Tok::False => "'false'",
            Tok::Const => "'const'",
            Tok::WordTy => "'word'",
            Tok::BoolTy => "'bool'",
            Tok::Packed => "'packed'",
            Tok::Unpacked => "'unpacked'",
            Tok::Exn => "'exn'",
            Tok::LParen => "'('",
            Tok::RParen => "')'",
            Tok::LBrace => "'{'",
            Tok::RBrace => "'}'",
            Tok::LBracket => "'['",
            Tok::RBracket => "']'",
            Tok::Comma => "','",
            Tok::Semi => "';'",
            Tok::Colon => "':'",
            Tok::Dot => "'.'",
            Tok::Assign => "'='",
            Tok::LeftArrow => "'<-'",
            Tok::HashHash => "'##'",
            Tok::Pipe => "'|'",
            Tok::PipePipe => "'||'",
            Tok::Amp => "'&'",
            Tok::AmpAmp => "'&&'",
            Tok::Caret => "'^'",
            Tok::Plus => "'+'",
            Tok::Minus => "'-'",
            Tok::Star => "'*'",
            Tok::Shl => "'<<'",
            Tok::Shr => "'>>'",
            Tok::EqEq => "'=='",
            Tok::NotEq => "'!='",
            Tok::Lt => "'<'",
            Tok::Le => "'<='",
            Tok::Gt => "'>'",
            Tok::Ge => "'>='",
            Tok::Bang => "'!'",
            Tok::Tilde => "'~'",
            Tok::Eof => "end of input",
        };
        f.write_str(s)
    }
}

/// A token with its span and, for literals/identifiers, its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind.
    pub tok: Tok,
    /// Source range.
    pub span: Span,
    /// Literal value for [`Tok::Word`].
    pub value: u32,
    /// Text for [`Tok::Ident`].
    pub text: String,
}

/// Tokenize `source`.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on unterminated comments, malformed numbers, or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        let lo = i as u32;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(Diagnostic::new(
                            "unterminated block comment",
                            Span::new(start as u32, n as u32),
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let value = if c == b'0' && i + 1 < n && (bytes[i + 1] | 0x20) == b'x' {
                    i += 2;
                    let hex_start = i;
                    while i < n && (bytes[i].is_ascii_hexdigit() || bytes[i] == b'_') {
                        i += 1;
                    }
                    let text: String = source[hex_start..i].chars().filter(|&c| c != '_').collect();
                    if text.is_empty() {
                        return Err(Diagnostic::new(
                            "hex literal needs digits",
                            Span::new(start as u32, i as u32),
                        ));
                    }
                    u32::from_str_radix(&text, 16).map_err(|_| {
                        Diagnostic::new(
                            "hex literal out of 32-bit range",
                            Span::new(start as u32, i as u32),
                        )
                    })?
                } else {
                    while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                    let text: String = source[start..i].chars().filter(|&c| c != '_').collect();
                    text.parse::<u32>().map_err(|_| {
                        Diagnostic::new(
                            "decimal literal out of 32-bit range",
                            Span::new(start as u32, i as u32),
                        )
                    })?
                };
                out.push(Token {
                    tok: Tok::Word,
                    span: Span::new(lo, i as u32),
                    value,
                    text: String::new(),
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                let tok = match text {
                    "fun" => Tok::Fun,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "layout" => Tok::Layout,
                    "overlay" => Tok::Overlay,
                    "pack" => Tok::Pack,
                    "unpack" => Tok::Unpack,
                    "try" => Tok::Try,
                    "handle" => Tok::Handle,
                    "raise" => Tok::Raise,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "const" => Tok::Const,
                    "word" => Tok::WordTy,
                    "bool" => Tok::BoolTy,
                    "packed" => Tok::Packed,
                    "unpacked" => Tok::Unpacked,
                    "exn" => Tok::Exn,
                    _ => Tok::Ident,
                };
                out.push(Token {
                    tok,
                    span: Span::new(lo, i as u32),
                    value: 0,
                    text: if tok == Tok::Ident {
                        text.to_string()
                    } else {
                        String::new()
                    },
                });
            }
            _ => {
                let two = if i + 1 < n { &source[i..i + 2] } else { "" };
                let (tok, len) = match two {
                    "<-" => (Tok::LeftArrow, 2),
                    "##" => (Tok::HashHash, 2),
                    "||" => (Tok::PipePipe, 2),
                    "&&" => (Tok::AmpAmp, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    _ => match c {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b',' => (Tok::Comma, 1),
                        b';' => (Tok::Semi, 1),
                        b':' => (Tok::Colon, 1),
                        b'.' => (Tok::Dot, 1),
                        b'=' => (Tok::Assign, 1),
                        b'|' => (Tok::Pipe, 1),
                        b'&' => (Tok::Amp, 1),
                        b'^' => (Tok::Caret, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b'!' => (Tok::Bang, 1),
                        b'~' => (Tok::Tilde, 1),
                        _ => {
                            return Err(Diagnostic::new(
                                format!("unexpected character {:?}", c as char),
                                Span::new(lo, lo + 1),
                            ))
                        }
                    },
                };
                i += len;
                out.push(Token {
                    tok,
                    span: Span::new(lo, i as u32),
                    value: 0,
                    text: String::new(),
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(n as u32, n as u32),
        value: 0,
        text: String::new(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("fun f let layout overlay"),
            vec![
                Tok::Fun,
                Tok::Ident,
                Tok::Let,
                Tok::Layout,
                Tok::Overlay,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        let ts = lex("42 0x2A 1_000 0xDEAD_BEEF").unwrap();
        assert_eq!(ts[0].value, 42);
        assert_eq!(ts[1].value, 42);
        assert_eq!(ts[2].value, 1000);
        assert_eq!(ts[3].value, 0xDEAD_BEEF);
    }

    #[test]
    fn number_overflow_rejected() {
        assert!(lex("4294967296").is_err());
        assert!(lex("0x1_0000_0000").is_err());
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            kinds("<- << <= <"),
            vec![Tok::LeftArrow, Tok::Shl, Tok::Le, Tok::Lt, Tok::Eof]
        );
        assert!(lex("#").is_err());
        assert_eq!(kinds("##"), vec![Tok::HashHash, Tok::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // line\nb /* block\n */ c"),
            vec![Tok::Ident; 3]
                .into_iter()
                .chain([Tok::Eof])
                .collect::<Vec<_>>()
        );
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn spans_are_tight() {
        let ts = lex("ab cd").unwrap();
        assert_eq!((ts[0].span.lo, ts[0].span.hi), (0, 2));
        assert_eq!((ts[1].span.lo, ts[1].span.hi), (3, 5));
    }
}
