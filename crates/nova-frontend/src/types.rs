//! The semantic types of Nova (§3.1).
//!
//! Nova's type system is stratified into *types* (this module) and
//! *layouts* ([`crate::layout`]). Types are structural: `packed(l)` is a
//! synonym for `word[n]`, which in turn is the tuple of `n` words, and
//! `unpacked(l)` is the record of `l`'s spread-out bitfields. Records and
//! tuples never exist at run time — the compiler flattens them into
//! word-sized leaves (§3.1 "flattening of records").

use crate::layout::{Item, Layout, VALUE_FIELD};
use std::fmt;

/// A Nova type after elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit word.
    Word,
    /// Boolean (encoded as control flow downstream).
    Bool,
    /// Tuple; `Tuple([])` is unit; `word[n]`/`packed(l)` elaborate here.
    Tuple(Vec<Type>),
    /// Record with named fields, in declaration order.
    Record(Vec<(String, Type)>),
    /// Exception accepting a payload (field name, type); positional
    /// payloads use `"0"`, `"1"`, ... as names.
    Exn(Vec<(String, Type)>),
    /// A function value (only ever bound to statically known functions).
    Fun(Box<FunSig>),
    /// The type of expressions that do not return (`raise`).
    Never,
}

/// Signature of a function type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunSig {
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
    /// Whether call sites use named (record) arguments.
    pub named: bool,
    /// Result type.
    pub result: Type,
}

impl Type {
    /// The unit type (empty tuple).
    pub fn unit() -> Type {
        Type::Tuple(Vec::new())
    }

    /// `word[n]` — tuple of `n` words.
    pub fn words(n: u32) -> Type {
        Type::Tuple(vec![Type::Word; n as usize])
    }

    /// Number of word-sized leaves after flattening, or `None` if the type
    /// contains non-flattenable parts (functions, exceptions count as one
    /// compile-time slot each but have no runtime words).
    pub fn word_count(&self) -> Option<u32> {
        match self {
            Type::Word => Some(1),
            Type::Bool => Some(1),
            Type::Tuple(ts) => ts.iter().map(|t| t.word_count()).sum(),
            Type::Record(fs) => fs.iter().map(|(_, t)| t.word_count()).sum(),
            Type::Exn(_) | Type::Fun(_) => None,
            Type::Never => Some(0),
        }
    }

    /// Structural equality modulo `Never` (which unifies with anything)
    /// and singleton tuples (which flatten to their element, §3.1).
    pub fn compatible(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Never, _) | (_, Type::Never) => true,
            (Type::Tuple(a), b) if a.len() == 1 && !matches!(b, Type::Tuple(_)) => {
                a[0].compatible(b)
            }
            (a, Type::Tuple(b)) if b.len() == 1 && !matches!(a, Type::Tuple(_)) => {
                a.compatible(&b[0])
            }
            (Type::Word, Type::Word) | (Type::Bool, Type::Bool) => true,
            (Type::Tuple(a), Type::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.compatible(y))
            }
            (Type::Record(a), Type::Record(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((n1, x), (n2, y))| n1 == n2 && x.compatible(y))
            }
            (Type::Exn(a), Type::Exn(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((n1, x), (n2, y))| n1 == n2 && x.compatible(y))
            }
            (Type::Fun(a), Type::Fun(b)) => {
                a.named == b.named
                    && a.params.len() == b.params.len()
                    && a.params
                        .iter()
                        .zip(&b.params)
                        .all(|((_, x), (_, y))| x.compatible(y))
                    && a.result.compatible(&b.result)
            }
            _ => false,
        }
    }

    /// The join of two branch types: `Never` defers to the other side.
    pub fn join(self, other: Type) -> Option<Type> {
        if matches!(self, Type::Never) {
            return Some(other);
        }
        if matches!(other, Type::Never) {
            return Some(self);
        }
        if self.compatible(&other) {
            Some(self)
        } else {
            None
        }
    }

    /// The type of a record field, if this is a record that has it.
    pub fn field(&self, name: &str) -> Option<&Type> {
        match self {
            Type::Record(fs) => fs.iter().find(|(n, _)| n == name).map(|(_, t)| t),
            _ => None,
        }
    }
}

/// The `unpacked(l)` record type of a layout: every bitfield spread into a
/// word, sub-layouts into nested records, and each overlay into a record
/// with one field per alternative (§3.2: unpacking generates *all*
/// alternatives).
pub fn unpacked_type(l: &Layout) -> Type {
    let mut fields = Vec::new();
    for item in &l.items {
        match item {
            Item::Bits { name, .. } => fields.push((name.clone(), Type::Word)),
            Item::Sub { name, layout } => fields.push((name.clone(), unpacked_type(layout))),
            Item::Overlay { name, alts } => {
                let alt_fields = alts
                    .iter()
                    .map(|(alt, al)| (alt.clone(), alt_view_type(al)))
                    .collect();
                fields.push((name.clone(), Type::Record(alt_fields)));
            }
            Item::Gap { .. } => {}
        }
    }
    Type::Record(fields)
}

/// The type of one overlay alternative's view: a bare-width alternative
/// (`whole : 8`) is just a word; anything else is its unpacked record.
pub fn alt_view_type(l: &Layout) -> Type {
    if let [Item::Bits { name, .. }] = l.items.as_slice() {
        if name == VALUE_FIELD {
            return Type::Word;
        }
    }
    unpacked_type(l)
}

/// The `packed(l)` type: `word[l.words()]`.
pub fn packed_type(l: &Layout) -> Type {
    Type::words(l.words())
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Word => f.write_str("word"),
            Type::Bool => f.write_str("bool"),
            Type::Tuple(ts) => {
                f.write_str("(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")
            }
            Type::Record(fs) => {
                f.write_str("[")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                f.write_str("]")
            }
            Type::Exn(ps) => {
                f.write_str("exn(")?;
                for (i, (n, t)) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                f.write_str(")")
            }
            Type::Fun(sig) => {
                write!(f, "fun({} params) -> {}", sig.params.len(), sig.result)
            }
            Type::Never => f.write_str("never"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LayoutExpr;
    use crate::layout::{resolve, LayoutEnv};

    fn lay(items: &str) -> Layout {
        let src = format!("layout t = {items}; fun main() {{ 0 }}");
        let prog = crate::parser::parse(&src).unwrap();
        if let crate::ast::StmtKind::Layout(_, e) = &prog.items[0].kind {
            resolve(e, &LayoutEnv::new()).unwrap()
        } else {
            panic!("no layout")
        }
    }

    #[test]
    fn word_count_flattens() {
        let t = Type::Record(vec![
            ("a".into(), Type::Word),
            ("b".into(), Type::Tuple(vec![Type::Word, Type::Word])),
        ]);
        assert_eq!(t.word_count(), Some(3));
        assert_eq!(Type::unit().word_count(), Some(0));
    }

    #[test]
    fn unpacked_record_structure() {
        let l = lay("{ version: 4, priority: 4, rest: 24 }");
        let t = unpacked_type(&l);
        assert_eq!(
            t,
            Type::Record(vec![
                ("version".into(), Type::Word),
                ("priority".into(), Type::Word),
                ("rest".into(), Type::Word),
            ])
        );
    }

    #[test]
    fn overlay_unpacks_all_alternatives() {
        let l = lay("{ verpri: overlay { whole: 8 | parts: { version: 4, priority: 4 } }, x: 24 }");
        let t = unpacked_type(&l);
        let verpri = t.field("verpri").unwrap();
        assert_eq!(verpri.field("whole"), Some(&Type::Word));
        let parts = verpri.field("parts").unwrap();
        assert_eq!(parts.field("version"), Some(&Type::Word));
    }

    #[test]
    fn packed_is_word_tuple() {
        let l = lay("{ a: 32, b: 16 }");
        assert_eq!(packed_type(&l), Type::words(2));
    }

    #[test]
    fn never_joins() {
        assert_eq!(Type::Never.join(Type::Word), Some(Type::Word));
        assert_eq!(Type::Word.join(Type::Never), Some(Type::Word));
        assert_eq!(Type::Word.join(Type::Bool), None);
    }

    #[test]
    fn gaps_have_no_field() {
        let src = "layout g = { a: 8 } ## {24} ## { b: 8 }; fun main() { 0 }";
        let prog = crate::parser::parse(src).unwrap();
        if let crate::ast::StmtKind::Layout(_, e) = &prog.items[0].kind {
            let l = resolve(e, &LayoutEnv::new()).unwrap();
            let t = unpacked_type(&l);
            assert_eq!(
                t,
                Type::Record(vec![("a".into(), Type::Word), ("b".into(), Type::Word)])
            );
            let _: &LayoutExpr = e;
        }
    }
}
