//! Recursive-descent parser for Nova.
//!
//! Grammar highlights (see the paper, §3):
//!
//! ```text
//! program  := item*
//! item     := layout-def | const-def | fun-def
//! fun-def  := "fun" ident params block          (contiguous defs = one group)
//! params   := "(" p, ... ")" | "[" p, ... "]"   (positional vs named)
//! stmt     := "let" pat (":" type)? "=" expr ";"
//!           | "layout" ident "=" layout ";"
//!           | "const" ident "=" expr ";"
//!           | space "(" expr ")" "<-" expr ";"
//!           | "while" "(" expr ")" block
//!           | expr ";"?
//! expr     := precedence-climbing over || && cmp | ^ & shift addsub unary postfix
//! primary  := literal | ident | call | tuple | record | if | try | raise
//!           | "unpack" "[" layout "]" "(" expr ")"
//!           | "pack" "[" layout "]" expr
//!           | space "(" expr ")"                (memory read)
//! layout   := latom ("##" latom)*
//! latom    := ident | "{" n "}" | "{" items "}"
//! ```

use crate::ast::*;
use crate::error::{Diagnostic, Span};
use crate::lexer::{lex, Tok, Token};

/// Parse a whole Nova program.
///
/// # Errors
///
/// Returns the first syntax error with its source span.
pub fn parse(source: &str) -> Result<Program, Diagnostic> {
    parse_with(source, &nova_obs::Obs::noop())
}

/// [`parse`] with structured telemetry: emits `frontend.lex` and
/// `frontend.parse` spans plus a `frontend.lex.tokens` counter.
///
/// # Errors
///
/// Returns the first syntax error with its source span.
pub fn parse_with(source: &str, obs: &nova_obs::Obs) -> Result<Program, Diagnostic> {
    let tokens = {
        let _span = obs.span("frontend.lex");
        lex(source)?
    };
    obs.counter("frontend.lex.tokens", tokens.len() as u64);
    let _span = obs.span("frontend.parse");
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> Tok {
        self.tokens[self.pos].tok
    }

    fn peek2(&self) -> Tok {
        self.tokens.get(self.pos + 1).map_or(Tok::Eof, |t| t.tok)
    }

    fn here(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, Diagnostic> {
        if self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                format!("expected {tok}, found {}", self.peek()),
                self.here(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), Diagnostic> {
        let t = self.expect(Tok::Ident)?;
        Ok((t.text, t.span))
    }

    fn id(&mut self) -> NodeId {
        self.next_id += 1;
        NodeId(self.next_id - 1)
    }

    fn mk(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr {
            id: self.id(),
            span,
            kind,
        }
    }

    // ---------------- program & items ----------------

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut items = Vec::new();
        while self.peek() != Tok::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Stmt, Diagnostic> {
        match self.peek() {
            Tok::Layout => self.layout_stmt(),
            Tok::Const => self.const_stmt(),
            Tok::Fun => self.fun_group(),
            other => Err(Diagnostic::new(
                format!("expected 'layout', 'const' or 'fun' at top level, found {other}"),
                self.here(),
            )),
        }
    }

    fn layout_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.here();
        self.expect(Tok::Layout)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::Assign)?;
        let body = self.layout_expr()?;
        let end = self.here();
        self.expect(Tok::Semi)?;
        Ok(Stmt {
            span: start.to(end),
            kind: StmtKind::Layout(name, body),
        })
    }

    fn const_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.here();
        self.expect(Tok::Const)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::Assign)?;
        let value = self.expr()?;
        let end = self.here();
        self.expect(Tok::Semi)?;
        Ok(Stmt {
            span: start.to(end),
            kind: StmtKind::Const(name, value),
        })
    }

    fn fun_group(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.here();
        let mut defs = Vec::new();
        while self.peek() == Tok::Fun {
            defs.push(self.fun_def()?);
        }
        let span = defs.last().map_or(start, |d| start.to(d.span));
        Ok(Stmt {
            span,
            kind: StmtKind::Funs(defs),
        })
    }

    fn fun_def(&mut self) -> Result<FunDef, Diagnostic> {
        let start = self.here();
        self.expect(Tok::Fun)?;
        let (name, _) = self.ident()?;
        let (params, named_params) = match self.peek() {
            Tok::LParen => (self.param_list(Tok::LParen, Tok::RParen)?, false),
            Tok::LBracket => (self.param_list(Tok::LBracket, Tok::RBracket)?, true),
            other => {
                return Err(Diagnostic::new(
                    format!("expected parameter list, found {other}"),
                    self.here(),
                ))
            }
        };
        let result = if self.eat(Tok::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        let header_end = self.here();
        let body = self.block()?;
        Ok(FunDef {
            name,
            params,
            named_params,
            result,
            body,
            span: start.to(header_end),
        })
    }

    fn param_list(
        &mut self,
        open: Tok,
        close: Tok,
    ) -> Result<Vec<(String, Option<TypeExpr>)>, Diagnostic> {
        self.expect(open)?;
        let mut params = Vec::new();
        if self.peek() != close {
            loop {
                let (name, _) = self.ident()?;
                let ty = if self.eat(Tok::Colon) {
                    Some(self.type_expr()?)
                } else {
                    None
                };
                params.push((name, ty));
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(close)?;
        Ok(params)
    }

    // ---------------- blocks & statements ----------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        let mut tail = None;
        while self.peek() != Tok::RBrace {
            if self.eat(Tok::Semi) {
                continue; // stray semicolons are harmless
            }
            match self.peek() {
                Tok::Let => stmts.push(self.let_stmt()?),
                Tok::Layout => stmts.push(self.layout_stmt()?),
                Tok::Const => stmts.push(self.const_stmt()?),
                Tok::Fun => stmts.push(self.fun_group()?),
                Tok::While => stmts.push(self.while_stmt()?),
                // `x = e;` — assignment to an existing temporary.
                Tok::Ident if self.peek2() == Tok::Assign => {
                    let start = self.here();
                    let (name, _) = self.ident()?;
                    self.expect(Tok::Assign)?;
                    let value = self.expr()?;
                    let end = self.here();
                    self.expect(Tok::Semi)?;
                    stmts.push(Stmt {
                        span: start.to(end),
                        kind: StmtKind::Assign(name, value),
                    });
                }
                _ => {
                    let start = self.here();
                    let e = self.expr()?;
                    // `space(addr) <- value;` — a memory write.
                    if self.peek() == Tok::LeftArrow {
                        if let ExprKind::MemRead(space, addr) = e.kind {
                            self.bump();
                            let value = self.expr()?;
                            let end = self.here();
                            self.expect(Tok::Semi)?;
                            stmts.push(Stmt {
                                span: start.to(end),
                                kind: StmtKind::MemWrite(space, *addr, value),
                            });
                            continue;
                        }
                        return Err(Diagnostic::new(
                            "'<-' is only valid after a memory expression like sram(a)",
                            self.here(),
                        ));
                    }
                    if self.eat(Tok::Semi) {
                        stmts.push(Stmt {
                            span: start.to(e.span),
                            kind: StmtKind::Expr(e),
                        });
                    } else if self.peek() == Tok::RBrace {
                        tail = Some(Box::new(e));
                    } else if matches!(
                        e.kind,
                        ExprKind::If(..) | ExprKind::Try(..) | ExprKind::BlockExpr(..)
                    ) {
                        // Block-like expressions may stand alone without ';'.
                        stmts.push(Stmt {
                            span: start.to(e.span),
                            kind: StmtKind::Expr(e),
                        });
                    } else {
                        return Err(Diagnostic::new(
                            format!("expected ';' or '}}', found {}", self.peek()),
                            self.here(),
                        ));
                    }
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Block { stmts, tail })
    }

    fn let_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.here();
        self.expect(Tok::Let)?;
        let pat = self.pattern()?;
        let ty = if self.eat(Tok::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        self.expect(Tok::Assign)?;
        let value = self.expr()?;
        let end = self.here();
        self.expect(Tok::Semi)?;
        Ok(Stmt {
            span: start.to(end),
            kind: StmtKind::Let(pat, ty, value),
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.here();
        self.expect(Tok::While)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt {
            span: start,
            kind: StmtKind::While(cond, body),
        })
    }

    fn pattern(&mut self) -> Result<Pattern, Diagnostic> {
        match self.peek() {
            Tok::LParen => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    let (n, _) = self.ident()?;
                    names.push(n);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Pattern::Tuple(names))
            }
            Tok::Ident => {
                let (n, _) = self.ident()?;
                if n == "_" {
                    Ok(Pattern::Wild)
                } else {
                    Ok(Pattern::Var(n))
                }
            }
            other => Err(Diagnostic::new(
                format!("expected pattern, found {other}"),
                self.here(),
            )),
        }
    }

    // ---------------- types ----------------

    fn type_expr(&mut self) -> Result<TypeExpr, Diagnostic> {
        match self.peek() {
            Tok::WordTy => {
                self.bump();
                if self.eat(Tok::LBracket) {
                    let n = self.expect(Tok::Word)?.value;
                    self.expect(Tok::RBracket)?;
                    Ok(TypeExpr::Words(n))
                } else {
                    Ok(TypeExpr::Word)
                }
            }
            Tok::BoolTy => {
                self.bump();
                Ok(TypeExpr::Bool)
            }
            Tok::Packed => {
                self.bump();
                self.expect(Tok::LParen)?;
                let l = self.layout_expr()?;
                self.expect(Tok::RParen)?;
                Ok(TypeExpr::Packed(l))
            }
            Tok::Unpacked => {
                self.bump();
                self.expect(Tok::LParen)?;
                let l = self.layout_expr()?;
                self.expect(Tok::RParen)?;
                Ok(TypeExpr::Unpacked(l))
            }
            Tok::Exn => {
                self.bump();
                let mut tys = Vec::new();
                if self.eat(Tok::LParen) {
                    if self.peek() != Tok::RParen {
                        loop {
                            tys.push(self.type_expr()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                }
                Ok(TypeExpr::Exn(tys))
            }
            Tok::LParen => {
                self.bump();
                let mut tys = Vec::new();
                if self.peek() != Tok::RParen {
                    loop {
                        tys.push(self.type_expr()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(TypeExpr::Tuple(tys))
            }
            Tok::LBracket => {
                self.bump();
                let mut fields = Vec::new();
                if self.peek() != Tok::RBracket {
                    loop {
                        let (n, _) = self.ident()?;
                        self.expect(Tok::Colon)?;
                        fields.push((n, self.type_expr()?));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(TypeExpr::Record(fields))
            }
            other => Err(Diagnostic::new(
                format!("expected type, found {other}"),
                self.here(),
            )),
        }
    }

    // ---------------- layouts ----------------

    fn layout_expr(&mut self) -> Result<LayoutExpr, Diagnostic> {
        let mut l = self.layout_atom()?;
        while self.eat(Tok::HashHash) {
            let r = self.layout_atom()?;
            l = LayoutExpr::Concat(Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn layout_atom(&mut self) -> Result<LayoutExpr, Diagnostic> {
        match self.peek() {
            Tok::Ident => {
                let (n, sp) = self.ident()?;
                Ok(LayoutExpr::Name(n, sp))
            }
            Tok::LBrace => {
                self.bump();
                // `{n}` is an anonymous gap; `{name: ...}` is a body.
                if self.peek() == Tok::Word && self.peek2() == Tok::RBrace {
                    let n = self.bump().value;
                    self.expect(Tok::RBrace)?;
                    return Ok(LayoutExpr::Gap(n));
                }
                let mut items = Vec::new();
                if self.peek() != Tok::RBrace {
                    loop {
                        items.push(self.layout_item()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(LayoutExpr::Body(items))
            }
            other => Err(Diagnostic::new(
                format!("expected layout, found {other}"),
                self.here(),
            )),
        }
    }

    fn layout_item(&mut self) -> Result<LayoutItem, Diagnostic> {
        // `{n}` gap inside a body.
        if self.peek() == Tok::LBrace {
            self.bump();
            let n = self.expect(Tok::Word)?.value;
            self.expect(Tok::RBrace)?;
            return Ok(LayoutItem::Gap(n));
        }
        let (name, _) = self.ident()?;
        self.expect(Tok::Colon)?;
        match self.peek() {
            Tok::Word => {
                let w = self.bump().value;
                Ok(LayoutItem::Bits(name, w))
            }
            Tok::Overlay => {
                self.bump();
                self.expect(Tok::LBrace)?;
                let mut alts = Vec::new();
                loop {
                    let (alt, _) = self.ident()?;
                    self.expect(Tok::Colon)?;
                    let l = self.layout_alt_body()?;
                    alts.push((alt, l));
                    if !self.eat(Tok::Pipe) {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(LayoutItem::Overlay(name, alts))
            }
            _ => {
                let l = self.layout_expr()?;
                Ok(LayoutItem::Sub(name, l))
            }
        }
    }

    /// Overlay alternative body: a bit width, a named layout, or a body.
    fn layout_alt_body(&mut self) -> Result<LayoutExpr, Diagnostic> {
        if self.peek() == Tok::Word {
            let w = self.bump().value;
            // A bare width inside an overlay means a single unnamed... no:
            // the paper names the alternative itself (`whole : 8`), the
            // width becoming the whole alternative. Represent as a body
            // with a single bitfield named like the alternative is not
            // possible here, so use a Gap-sized leaf: a one-field body
            // whose field name is "" is awkward — instead use Bits with
            // the reserved name "$value".
            return Ok(LayoutExpr::Body(vec![LayoutItem::Bits("$value".into(), w)]));
        }
        self.layout_expr()
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Tok::PipePipe {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                span,
                ExprKind::Binop(BinOp::OrElse, Box::new(lhs), Box::new(rhs)),
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Tok::AmpAmp {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                span,
                ExprKind::Binop(BinOp::AndAlso, Box::new(lhs), Box::new(rhs)),
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.bitor_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.bitor_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(self.mk(span, ExprKind::Binop(op, Box::new(lhs), Box::new(rhs))))
    }

    fn bitor_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.bitxor_expr()?;
        while self.peek() == Tok::Pipe {
            self.bump();
            let rhs = self.bitxor_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                span,
                ExprKind::Binop(BinOp::Or, Box::new(lhs), Box::new(rhs)),
            );
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.bitand_expr()?;
        while self.peek() == Tok::Caret {
            self.bump();
            let rhs = self.bitand_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                span,
                ExprKind::Binop(BinOp::Xor, Box::new(lhs), Box::new(rhs)),
            );
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.shift_expr()?;
        while self.peek() == Tok::Amp {
            self.bump();
            let rhs = self.shift_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                span,
                ExprKind::Binop(BinOp::And, Box::new(lhs), Box::new(rhs)),
            );
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(span, ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(span, ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.here();
        let op = match self.peek() {
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::Complement),
            Tok::Minus => Some(UnOp::Neg),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary_expr()?;
            let span = start.to(e.span);
            return Ok(self.mk(span, ExprKind::Unop(op, Box::new(e))));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.primary_expr()?;
        while self.eat(Tok::Dot) {
            let (field, sp) = self.ident()?;
            let span = e.span.to(sp);
            e = self.mk(span, ExprKind::Field(Box::new(e), field));
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.here();
        match self.peek() {
            Tok::Word => {
                let t = self.bump();
                Ok(self.mk(t.span, ExprKind::Word(t.value)))
            }
            Tok::True => {
                let t = self.bump();
                Ok(self.mk(t.span, ExprKind::Bool(true)))
            }
            Tok::False => {
                let t = self.bump();
                Ok(self.mk(t.span, ExprKind::Bool(false)))
            }
            Tok::If => self.if_expr(),
            Tok::Try => self.try_expr(),
            Tok::Raise => {
                self.bump();
                let (name, _) = self.ident()?;
                let args = self.call_args()?;
                let span = start.to(self.tokens[self.pos.saturating_sub(1)].span);
                Ok(self.mk(span, ExprKind::Raise(name, args)))
            }
            Tok::Unpack => {
                self.bump();
                self.expect(Tok::LBracket)?;
                let l = self.layout_expr()?;
                self.expect(Tok::RBracket)?;
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                let span = start.to(e.span);
                Ok(self.mk(span, ExprKind::Unpack(l, Box::new(e))))
            }
            Tok::Pack => {
                self.bump();
                self.expect(Tok::LBracket)?;
                let l = self.layout_expr()?;
                self.expect(Tok::RBracket)?;
                let e = self.expr()?;
                let span = start.to(e.span);
                Ok(self.mk(span, ExprKind::Pack(l, Box::new(e))))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(Tok::RParen) {
                    // unit: empty tuple
                    return Ok(self.mk(start, ExprKind::Tuple(vec![])));
                }
                let first = self.expr()?;
                if self.eat(Tok::Comma) {
                    let mut es = vec![first];
                    loop {
                        es.push(self.expr()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    let end = self.here();
                    self.expect(Tok::RParen)?;
                    Ok(self.mk(start.to(end), ExprKind::Tuple(es)))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut fields = Vec::new();
                if self.peek() != Tok::RBracket {
                    loop {
                        let (n, _) = self.ident()?;
                        self.expect(Tok::Assign)?;
                        fields.push((n, self.expr()?));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                let end = self.here();
                self.expect(Tok::RBracket)?;
                Ok(self.mk(start.to(end), ExprKind::Record(fields)))
            }
            Tok::LBrace => {
                let b = self.block()?;
                Ok(self.mk(start, ExprKind::BlockExpr(b)))
            }
            Tok::Ident => {
                let (name, sp) = self.ident()?;
                // Memory spaces look like function calls.
                let space = match name.as_str() {
                    "sram" => Some(MemSpace::Sram),
                    "sdram" => Some(MemSpace::Sdram),
                    "scratch" => Some(MemSpace::Scratch),
                    _ => None,
                };
                if let Some(space) = space {
                    self.expect(Tok::LParen)?;
                    let addr = self.expr()?;
                    let end = self.here();
                    self.expect(Tok::RParen)?;
                    return Ok(self.mk(sp.to(end), ExprKind::MemRead(space, Box::new(addr))));
                }
                if let Some(intr) = Intrinsic::from_name(&name) {
                    self.expect(Tok::LParen)?;
                    let mut args = Vec::new();
                    if self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.here();
                    self.expect(Tok::RParen)?;
                    return Ok(self.mk(sp.to(end), ExprKind::Intrinsic(intr, args)));
                }
                if self.peek() == Tok::LParen || self.peek() == Tok::LBracket {
                    let args = self.call_args()?;
                    let span = sp.to(self.tokens[self.pos.saturating_sub(1)].span);
                    return Ok(self.mk(span, ExprKind::Call(name, args)));
                }
                Ok(self.mk(sp, ExprKind::Var(name)))
            }
            other => Err(Diagnostic::new(
                format!("expected expression, found {other}"),
                self.here(),
            )),
        }
    }

    fn if_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.here();
        self.expect(Tok::If)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        // Allow both `if (c) { .. }` and `if (c) expr else expr`.
        let then_blk = self.block_or_expr()?;
        let else_blk = if self.eat(Tok::Else) {
            if self.peek() == Tok::If {
                // else-if chains: wrap the nested if as a block.
                let e = self.if_expr()?;
                Some(Block {
                    stmts: vec![],
                    tail: Some(Box::new(e)),
                })
            } else {
                Some(self.block_or_expr()?)
            }
        } else {
            None
        };
        Ok(self.mk(start, ExprKind::If(Box::new(cond), then_blk, else_blk)))
    }

    fn block_or_expr(&mut self) -> Result<Block, Diagnostic> {
        if self.peek() == Tok::LBrace {
            self.block()
        } else {
            let e = self.expr()?;
            Ok(Block {
                stmts: vec![],
                tail: Some(Box::new(e)),
            })
        }
    }

    fn try_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.here();
        self.expect(Tok::Try)?;
        let body = self.block()?;
        let mut handlers = Vec::new();
        while self.peek() == Tok::Handle {
            let hstart = self.here();
            self.bump();
            let (name, _) = self.ident()?;
            let (params, named) = match self.peek() {
                Tok::LParen => {
                    let mut ps = Vec::new();
                    self.bump();
                    if self.peek() != Tok::RParen {
                        loop {
                            ps.push(self.ident()?.0);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    (ps, false)
                }
                Tok::LBracket => {
                    let mut ps = Vec::new();
                    self.bump();
                    if self.peek() != Tok::RBracket {
                        loop {
                            ps.push(self.ident()?.0);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RBracket)?;
                    (ps, true)
                }
                other => {
                    return Err(Diagnostic::new(
                        format!("expected handler parameter list, found {other}"),
                        self.here(),
                    ))
                }
            };
            let hbody = self.block()?;
            handlers.push(Handler {
                name,
                params,
                named,
                body: hbody,
                span: hstart,
            });
        }
        if handlers.is_empty() {
            return Err(Diagnostic::new("'try' needs at least one 'handle'", start));
        }
        Ok(self.mk(start, ExprKind::Try(body, handlers)))
    }

    fn call_args(&mut self) -> Result<Args, Diagnostic> {
        match self.peek() {
            Tok::LParen => {
                self.bump();
                let mut args = Vec::new();
                if self.peek() != Tok::RParen {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Args::Positional(args))
            }
            Tok::LBracket => {
                self.bump();
                let mut args = Vec::new();
                if self.peek() != Tok::RBracket {
                    loop {
                        let (n, _) = self.ident()?;
                        self.expect(Tok::Assign)?;
                        args.push((n, self.expr()?));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Args::Named(args))
            }
            other => Err(Diagnostic::new(
                format!("expected argument list, found {other}"),
                self.here(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|d| panic!("{}", d.render(src)))
    }

    #[test]
    fn minimal_program() {
        let p = parse_ok("fun main() { 42 }");
        assert_eq!(p.items.len(), 1);
        match &p.items[0].kind {
            StmtKind::Funs(fs) => {
                assert_eq!(fs[0].name, "main");
                assert!(fs[0].body.tail.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ipv6_layout_from_paper() {
        let src = r#"
            layout ipv6_address = { a1: 32, a2: 32, a3: 32, a4: 32 };
            layout ipv6_header = {
                version: 4, priority: 4, flow_label: 24,
                payload_length: 16, next_header: 8, hop_limit: 8,
                src_address: ipv6_address, dst_address: ipv6_address
            };
            fun main() { 0 }
        "#;
        let p = parse_ok(src);
        assert_eq!(p.static_stats().layouts, 2);
    }

    #[test]
    fn overlay_syntax_from_paper() {
        let src = r#"
            layout h = {
                verpri: overlay { whole: 8 | parts: { version: 4, priority: 4 } },
                flow_label: 24
            };
            fun main() { 0 }
        "#;
        parse_ok(src);
    }

    #[test]
    fn layout_concat_and_gaps() {
        let src = r#"
            layout lyt = { x: 16, y: 32, z: 8 };
            fun main(pdata: word[3]) {
                let u = unpack[lyt ## {40}](pdata);
                let v = unpack[{16} ## lyt ## {24}](pdata);
                u.x + v.y
            }
        "#;
        let p = parse_ok(src);
        assert_eq!(p.static_stats().unpacks, 2);
    }

    #[test]
    fn memory_read_write() {
        let src = r#"
            fun main() {
                let (a, b, c, d) = sram(100);
                let (e, f) = sdram(200);
                sram(300) <- (b, a, d, c);
                scratch(4) <- (e + f);
                0
            }
        "#;
        parse_ok(src);
    }

    #[test]
    fn try_handle_raise_from_paper() {
        let src = r#"
            fun g [q: word, x1: exn(word, word), x2: exn()] {
                if (q == 0) raise x2 ()
                else raise x1 (1, 2)
            }
            fun main() {
                try {
                    g[q = 3, x2 = X2, x1 = X1]
                } handle X1 (b, c) { b + c }
                  handle X2 () { 0 }
            }
        "#;
        let p = parse_ok(src);
        let s = p.static_stats();
        assert_eq!(s.raises, 2);
        assert_eq!(s.handles, 2);
    }

    #[test]
    fn precedence() {
        // 1 + 2 << 3 parses as (1+2) << 3; & binds tighter than |.
        let p = parse_ok("fun main() { let x = 1 + 2 << 3; let y = 4 | 2 & 1; x + y }");
        let _ = p;
    }

    #[test]
    fn pack_unpack_expressions() {
        let src = r#"
            layout p = { a: 16, b: 32, c: 16 };
            fun f(p1: packed(p), p2: packed(p)) {
                let u1 = unpack[p](p1);
                let u2 = unpack[p](p2);
                (if (u1.c > 10) u1 else u2).b
            }
        "#;
        // field access on parenthesized if
        let p = parse_ok(src);
        assert_eq!(p.static_stats().unpacks, 2);
    }

    #[test]
    fn while_and_const() {
        parse_ok("const N = 10; fun main() { let i = 0; while (i < N) { let j = i; }; 0 }");
    }

    #[test]
    fn error_reports_position() {
        let err = parse("fun main( { 0 }").unwrap_err();
        assert!(err.render("fun main( { 0 }").contains("1:"));
    }

    #[test]
    fn intrinsics_parse() {
        parse_ok(
            "fun main() { let (n, a) = rx_packet(); let h = hash(n); tx_packet(a, n); ctx_swap(); h }",
        );
    }

    #[test]
    fn unit_and_tuples() {
        parse_ok("fun main() { let u = (); let t = (1, 2, 3); 0 }");
    }
}
