//! Abstract syntax of Nova programs.
//!
//! Nova (§3 of the paper) is a lexically scoped, strict, statically typed
//! language with records, tuples, layouts, functions restricted to
//! tail-recursion, and lexically scoped exceptions. The AST is produced by
//! the parser ([`crate::parse`]) and annotated by [`crate::typecheck`] through side
//! tables keyed by [`NodeId`].

use crate::error::Span;
use std::fmt;

/// Unique id of an expression node (key of the type-checker's side tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// External memory spaces addressable from Nova (mirrors the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// External SRAM (word addressed).
    Sram,
    /// External SDRAM (quad-word bursts).
    Sdram,
    /// On-chip scratch.
    Scratch,
}

impl MemSpace {
    /// The surface-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            MemSpace::Sram => "sram",
            MemSpace::Sdram => "sdram",
            MemSpace::Scratch => "scratch",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (wrapping 32-bit)
    Add,
    /// `-`
    Sub,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    AndAlso,
    /// `||` (short-circuit)
    OrElse,
}

impl BinOp {
    /// Does the operator yield `bool`?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `!` on bool
    Not,
    /// `~` bitwise complement on word
    Complement,
    /// `-` two's complement negation
    Neg,
}

/// Surface types, as written in annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `word`
    Word,
    /// `bool`
    Bool,
    /// `word[n]`
    Words(u32),
    /// `packed(layout-expr)`
    Packed(LayoutExpr),
    /// `unpacked(layout-expr)`
    Unpacked(LayoutExpr),
    /// `(t1, t2, ...)`
    Tuple(Vec<TypeExpr>),
    /// `[x: t1, y: t2]`
    Record(Vec<(String, TypeExpr)>),
    /// `exn(t1, ...)` — an exception taking the given payload
    Exn(Vec<TypeExpr>),
}

/// A layout expression: a named layout, an anonymous gap `{n}`, an inline
/// body, or a `##` concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutExpr {
    /// Reference to a named layout.
    Name(String, Span),
    /// `{n}` — an unnamed n-bit gap.
    Gap(u32),
    /// Inline layout body `{ f: 8, g: sub, ... }`.
    Body(Vec<LayoutItem>),
    /// `l1 ## l2` — sequential concatenation.
    Concat(Box<LayoutExpr>, Box<LayoutExpr>),
}

/// One item of a layout body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutItem {
    /// `name : width` — a bitfield.
    Bits(String, u32),
    /// `name : layout-expr` — a named sub-layout.
    Sub(String, LayoutExpr),
    /// `name : overlay { alt1 : l1 | alt2 : l2 }`.
    Overlay(String, Vec<(String, LayoutExpr)>),
    /// `{n}` inside a body — anonymous gap.
    Gap(u32),
}

/// Binding patterns on the left of `let`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Single variable.
    Var(String),
    /// Tuple of variables: `(a, b, c)`.
    Tuple(Vec<String>),
    /// Wildcard `_` (value discarded).
    Wild,
}

/// Call arguments: positional `f(a, b)` or named-record `f[x = a, y = b]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Args {
    /// Positional (tuple) arguments.
    Positional(Vec<Expr>),
    /// Named (record) arguments.
    Named(Vec<(String, Expr)>),
}

impl Args {
    /// Number of arguments.
    pub fn len(&self) -> usize {
        match self {
            Args::Positional(v) => v.len(),
            Args::Named(v) => v.len(),
        }
    }

    /// True when no arguments are supplied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An expression with identity and location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Side-table key.
    pub id: NodeId,
    /// Source range.
    pub span: Span,
    /// The actual expression.
    pub kind: ExprKind,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Word literal.
    Word(u32),
    /// Bool literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unop(UnOp, Box<Expr>),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Record construction `[x = e, ...]`.
    Record(Vec<(String, Expr)>),
    /// Field projection `e.f`.
    Field(Box<Expr>, String),
    /// `if (c) blk else blk` — with no `else`, the result is unit.
    If(Box<Expr>, Block, Option<Block>),
    /// Function call.
    Call(String, Args),
    /// Aggregate memory read `sram(addr)`; arity from binding context.
    MemRead(MemSpace, Box<Expr>),
    /// `unpack[l](e)`.
    Unpack(LayoutExpr, Box<Expr>),
    /// `pack[l] rec`.
    Pack(LayoutExpr, Box<Expr>),
    /// `raise X args`.
    Raise(String, Args),
    /// `try { .. } handle X (..) { .. } ...`.
    Try(Block, Vec<Handler>),
    /// Braced block used as an expression.
    BlockExpr(Block),
    /// Built-in operation (`hash`, `csr_read`, `rx_packet`, ...).
    Intrinsic(Intrinsic, Vec<Expr>),
}

/// Built-in hardware operations exposed as functions (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `hash(w) -> word` — hardware hash unit.
    Hash,
    /// `bit_test_set(addr, w) -> word` — atomic SRAM test-and-set.
    BitTestSet,
    /// `csr_read(n) -> word`.
    CsrRead,
    /// `csr_write(n, w)`.
    CsrWrite,
    /// `rx_packet() -> (word, word)` — (length bytes, sdram word address).
    RxPacket,
    /// `tx_packet(addr, len)`.
    TxPacket,
    /// `ctx_swap()` — voluntary yield.
    CtxSwap,
}

impl Intrinsic {
    /// Look up an intrinsic by its surface name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "hash" => Intrinsic::Hash,
            "bit_test_set" => Intrinsic::BitTestSet,
            "csr_read" => Intrinsic::CsrRead,
            "csr_write" => Intrinsic::CsrWrite,
            "rx_packet" => Intrinsic::RxPacket,
            "tx_packet" => Intrinsic::TxPacket,
            "ctx_swap" => Intrinsic::CtxSwap,
            _ => return None,
        })
    }

    /// Number of word arguments.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Hash => 1,
            Intrinsic::BitTestSet => 2,
            Intrinsic::CsrRead => 1,
            Intrinsic::CsrWrite => 2,
            Intrinsic::RxPacket => 0,
            Intrinsic::TxPacket => 2,
            Intrinsic::CtxSwap => 0,
        }
    }
}

/// An exception handler arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Handler {
    /// Exception name introduced lexically by this `try`.
    pub name: String,
    /// Payload binders: named (record style) or positional.
    pub params: Vec<String>,
    /// Whether the params were written record-style `[a, b]` (named) or
    /// tuple-style `(a, b)` (positional).
    pub named: bool,
    /// Handler body.
    pub body: Block,
    /// Location of the handler head.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Source range.
    pub span: Span,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let pat (: ty)? = expr;`
    Let(Pattern, Option<TypeExpr>, Expr),
    /// `layout name = body;` (local or top-level)
    Layout(String, LayoutExpr),
    /// `const NAME = expr;` — compile-time word constant.
    Const(String, Expr),
    /// A group of contiguous (mutually recursive) function definitions.
    Funs(Vec<FunDef>),
    /// `x = expr;` — assignment to a previously `let`-bound temporary.
    /// CPS conversion eliminates these (§4.2: the IR is SSA for
    /// temporaries), turning control-flow joins into continuation
    /// parameters.
    Assign(String, Expr),
    /// `space(addr) <- expr;` — aggregate memory write.
    MemWrite(MemSpace, Expr, Expr),
    /// Expression evaluated for effect.
    Expr(Expr),
    /// `while (cond) { body }`.
    While(Expr, Block),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Function name.
    pub name: String,
    /// Parameters: name plus optional annotation.
    pub params: Vec<(String, Option<TypeExpr>)>,
    /// Whether the parameter list was record-style (`[..]`, call-by-name)
    /// or tuple-style (`(..)`, positional).
    pub named_params: bool,
    /// Optional result annotation.
    pub result: Option<TypeExpr>,
    /// Body.
    pub body: Block,
    /// Location of the header.
    pub span: Span,
}

/// A block `{ stmt* expr? }` whose value is the trailing expression (unit
/// if absent).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Result expression.
    pub tail: Option<Box<Expr>>,
}

/// A whole program: top-level statements (layouts, consts, functions). The
/// entry point is the function named `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in order.
    pub items: Vec<Stmt>,
}

impl Program {
    /// Count syntactic features for the Figure-5 static statistics:
    /// `(layouts, packs, unpacks, raises, handles)`.
    pub fn static_stats(&self) -> StaticStats {
        let mut s = StaticStats::default();
        for item in &self.items {
            stmt_stats(item, &mut s);
        }
        s
    }
}

/// Figure-5 static statistics of a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticStats {
    /// Number of `layout` definitions.
    pub layouts: usize,
    /// Number of `pack[..]` uses.
    pub packs: usize,
    /// Number of `unpack[..]` uses.
    pub unpacks: usize,
    /// Number of `raise` sites.
    pub raises: usize,
    /// Number of `handle` arms.
    pub handles: usize,
    /// Number of function definitions.
    pub functions: usize,
}

fn stmt_stats(stmt: &Stmt, s: &mut StaticStats) {
    match &stmt.kind {
        StmtKind::Layout(..) => s.layouts += 1,
        StmtKind::Let(_, _, e)
        | StmtKind::Const(_, e)
        | StmtKind::Expr(e)
        | StmtKind::Assign(_, e) => expr_stats(e, s),
        StmtKind::Funs(fs) => {
            for f in fs {
                s.functions += 1;
                block_stats(&f.body, s);
            }
        }
        StmtKind::MemWrite(_, a, v) => {
            expr_stats(a, s);
            expr_stats(v, s);
        }
        StmtKind::While(c, b) => {
            expr_stats(c, s);
            block_stats(b, s);
        }
    }
}

fn block_stats(b: &Block, s: &mut StaticStats) {
    for st in &b.stmts {
        stmt_stats(st, s);
    }
    if let Some(t) = &b.tail {
        expr_stats(t, s);
    }
}

fn expr_stats(e: &Expr, s: &mut StaticStats) {
    match &e.kind {
        ExprKind::Pack(_, inner) => {
            s.packs += 1;
            expr_stats(inner, s);
        }
        ExprKind::Unpack(_, inner) => {
            s.unpacks += 1;
            expr_stats(inner, s);
        }
        ExprKind::Raise(_, args) => {
            s.raises += 1;
            args_stats(args, s);
        }
        ExprKind::Try(b, handlers) => {
            block_stats(b, s);
            for h in handlers {
                s.handles += 1;
                block_stats(&h.body, s);
            }
        }
        ExprKind::Binop(_, a, b) => {
            expr_stats(a, s);
            expr_stats(b, s);
        }
        ExprKind::Unop(_, a) | ExprKind::Field(a, _) | ExprKind::MemRead(_, a) => expr_stats(a, s),
        ExprKind::Tuple(es) | ExprKind::Intrinsic(_, es) => {
            for e in es {
                expr_stats(e, s);
            }
        }
        ExprKind::Record(fs) => {
            for (_, e) in fs {
                expr_stats(e, s);
            }
        }
        ExprKind::If(c, t, f) => {
            expr_stats(c, s);
            block_stats(t, s);
            if let Some(f) = f {
                block_stats(f, s);
            }
        }
        ExprKind::Call(_, args) => args_stats(args, s),
        ExprKind::BlockExpr(b) => block_stats(b, s),
        ExprKind::Word(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
    }
}

fn args_stats(args: &Args, s: &mut StaticStats) {
    match args {
        Args::Positional(es) => {
            for e in es {
                expr_stats(e, s);
            }
        }
        Args::Named(fs) => {
            for (_, e) in fs {
                expr_stats(e, s);
            }
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
