//! Diagnostics with source positions.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the spanned region.
    pub lo: u32,
    /// One past the last byte.
    pub hi: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(lo: u32, hi: u32) -> Self {
        Span { lo, hi }
    }

    /// The span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// A compile-time diagnostic: message plus source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// Render with `line:col` coordinates resolved against `source`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.lo);
        format!("{line}:{col}: {}", self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.span.lo, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// 1-based line and column of byte offset `pos` in `source`.
pub fn line_col(source: &str, pos: u32) -> (u32, u32) {
    let pos = (pos as usize).min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in source.char_indices() {
        if i >= pos {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn render_uses_line_col() {
        let d = Diagnostic::new("bad thing", Span::new(3, 4));
        assert_eq!(d.render("ab\ncd"), "2:1: bad thing");
    }

    #[test]
    fn span_union() {
        let a = Span::new(3, 5);
        let b = Span::new(1, 4);
        assert_eq!(a.to(b), Span::new(1, 5));
    }
}
