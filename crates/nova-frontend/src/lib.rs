//! Front end of the Nova language from "Taming the IXP Network Processor"
//! (PLDI 2003).
//!
//! Nova (§3) is a lexically scoped, strict, statically typed, call-by-value
//! language for packet processing: records and tuples (flattened at compile
//! time), a layout sublanguage for bit-level packet formats (with overlays,
//! gaps, and `##` concatenation), functions restricted to tail recursion
//! (no stack), lexically scoped exceptions, and direct syntax for the
//! IXP's memories and hardware units.
//!
//! Pipeline: [`parse`] → [`check`] produces a [`Program`] plus [`TypeInfo`]
//! side tables; the `nova-cps` crate converts those to CPS.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     layout hdr = { version: 4, rest: 28 };
//!     fun main() {
//!         let (w) = sram(0);
//!         let u = unpack[hdr]((w));
//!         if (u.version == 6) 1 else 0
//!     }
//! "#;
//! let program = nova_frontend::parse(src)?;
//! let info = nova_frontend::check(&program)?;
//! assert_eq!(program.static_stats().layouts, 1);
//! # Ok::<(), nova_frontend::Diagnostic>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod error;
pub mod layout;
mod lexer;
mod parser;
pub mod typecheck;
pub mod types;

pub use ast::{Program, StaticStats};
pub use error::{line_col, Diagnostic, Span};
pub use lexer::{lex, Tok, Token};
pub use parser::{parse, parse_with};
pub use typecheck::{check, check_with, TypeInfo};
pub use types::{FunSig, Type};
