//! Resolved layouts: the semantics of Nova's layout sublanguage (§3.2).
//!
//! A layout statically describes the arrangement of bitfields within a byte
//! stream. Surface syntax ([`crate::ast::LayoutExpr`]) supports named
//! layouts, inline bodies, anonymous gaps `{n}`, overlays (alternative
//! views of the same bit range), and `##` concatenation. Elaboration
//! ([`resolve`]) turns surface syntax into a [`Layout`] tree with *absolute*
//! bit offsets from the start of the packed value — exactly what the
//! `unpack`/`pack` code generator needs for its shift/mask sequences.
//!
//! Bit numbering is big-endian network order: offset 0 is the most
//! significant bit of word 0, offset 32 the MSB of word 1, and so on.

use crate::ast::{LayoutExpr, LayoutItem};
use crate::error::{Diagnostic, Span};
use std::collections::HashMap;
use std::fmt;

/// The reserved field name produced by an overlay alternative that is a
/// bare width (e.g. `whole : 8`): the alternative itself is the value.
pub const VALUE_FIELD: &str = "$value";

/// A fully resolved layout: total size plus items at absolute bit offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Total size in bits.
    pub size_bits: u32,
    /// Items in declaration order.
    pub items: Vec<Item>,
}

/// One resolved layout item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A named bitfield at `offset` of `width` bits.
    Bits {
        /// Field name.
        name: String,
        /// Absolute bit offset from the start of the layout.
        offset: u32,
        /// Width in bits (1..=32).
        width: u32,
    },
    /// A named sub-layout (its items already carry absolute offsets).
    Sub {
        /// Field name.
        name: String,
        /// The sub-layout (offsets absolute w.r.t. the outer layout).
        layout: Layout,
    },
    /// Alternative views of the same bit range. Unpacking materializes
    /// every alternative; packing takes exactly one.
    Overlay {
        /// Field name of the overlay group.
        name: String,
        /// Alternatives: name plus resolved view (same absolute range).
        alts: Vec<(String, Layout)>,
    },
    /// An anonymous gap (no field, occupies bits).
    Gap {
        /// Absolute bit offset.
        offset: u32,
        /// Width in bits.
        width: u32,
    },
}

impl Layout {
    /// Number of 32-bit words needed to hold the packed value.
    pub fn words(&self) -> u32 {
        self.size_bits.div_ceil(32)
    }

    /// Look up a top-level item by field name.
    pub fn item(&self, name: &str) -> Option<&Item> {
        self.items.iter().find(|i| match i {
            Item::Bits { name: n, .. }
            | Item::Sub { name: n, .. }
            | Item::Overlay { name: n, .. } => n == name,
            Item::Gap { .. } => false,
        })
    }

    /// All leaf bitfields reachable through subs and overlays, as
    /// `(dotted.path, offset, width)` triples. Overlay alternatives appear
    /// under `group.alt`.
    pub fn leaves(&self) -> Vec<(String, u32, u32)> {
        let mut out = Vec::new();
        self.collect_leaves("", &mut out);
        out
    }

    fn collect_leaves(&self, prefix: &str, out: &mut Vec<(String, u32, u32)>) {
        for item in &self.items {
            match item {
                Item::Bits {
                    name,
                    offset,
                    width,
                } => {
                    out.push((join_path(prefix, name), *offset, *width));
                }
                Item::Sub { name, layout } => {
                    layout.collect_leaves(&join_path(prefix, name), out);
                }
                Item::Overlay { name, alts } => {
                    for (alt, l) in alts {
                        l.collect_leaves(&join_path(&join_path(prefix, name), alt), out);
                    }
                }
                Item::Gap { .. } => {}
            }
        }
    }
}

fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layout<{} bits>", self.size_bits)
    }
}

/// Named-layout environment used during resolution.
pub type LayoutEnv = HashMap<String, Layout>;

/// Resolve a surface layout expression against an environment of named
/// layouts, producing absolute bit offsets.
///
/// # Errors
///
/// Reports unknown layout names, zero/oversized bitfields, and overlay
/// alternatives of unequal size.
pub fn resolve(expr: &LayoutExpr, env: &LayoutEnv) -> Result<Layout, Diagnostic> {
    resolve_at(expr, env, 0)
}

fn resolve_at(expr: &LayoutExpr, env: &LayoutEnv, base: u32) -> Result<Layout, Diagnostic> {
    match expr {
        LayoutExpr::Name(name, span) => {
            let l = env
                .get(name)
                .ok_or_else(|| Diagnostic::new(format!("unknown layout '{name}'"), *span))?;
            Ok(shift(l, base))
        }
        LayoutExpr::Gap(width) => Ok(Layout {
            size_bits: *width,
            items: vec![Item::Gap {
                offset: base,
                width: *width,
            }],
        }),
        LayoutExpr::Body(items) => {
            let mut out = Vec::new();
            let mut off = base;
            for item in items {
                match item {
                    LayoutItem::Bits(name, width) => {
                        check_width(name, *width)?;
                        out.push(Item::Bits {
                            name: clone_name(name),
                            offset: off,
                            width: *width,
                        });
                        off += width;
                    }
                    LayoutItem::Gap(width) => {
                        out.push(Item::Gap {
                            offset: off,
                            width: *width,
                        });
                        off += width;
                    }
                    LayoutItem::Sub(name, sub) => {
                        let l = resolve_at(sub, env, off)?;
                        off += l.size_bits;
                        out.push(Item::Sub {
                            name: clone_name(name),
                            layout: l,
                        });
                    }
                    LayoutItem::Overlay(name, alts) => {
                        let mut resolved = Vec::new();
                        let mut width = None;
                        for (alt, sub) in alts {
                            let l = resolve_at(sub, env, off)?;
                            match width {
                                None => width = Some(l.size_bits),
                                Some(w) if w != l.size_bits => {
                                    return Err(Diagnostic::new(
                                        format!(
                                            "overlay '{name}' alternatives differ in size: {w} vs {} bits",
                                            l.size_bits
                                        ),
                                        Span::default(),
                                    ))
                                }
                                _ => {}
                            }
                            resolved.push((alt.clone(), l));
                        }
                        let w = width.unwrap_or(0);
                        out.push(Item::Overlay {
                            name: clone_name(name),
                            alts: resolved,
                        });
                        off += w;
                    }
                }
            }
            Ok(Layout {
                size_bits: off - base,
                items: out,
            })
        }
        LayoutExpr::Concat(a, b) => {
            let la = resolve_at(a, env, base)?;
            let lb = resolve_at(b, env, base + la.size_bits)?;
            let mut items = la.items;
            items.extend(lb.items);
            Ok(Layout {
                size_bits: la.size_bits + lb.size_bits,
                items,
            })
        }
    }
}

fn clone_name(n: &str) -> String {
    n.to_string()
}

fn check_width(name: &str, width: u32) -> Result<(), Diagnostic> {
    if width == 0 || width > 32 {
        return Err(Diagnostic::new(
            format!("bitfield '{name}' has illegal width {width} (must be 1..=32)"),
            Span::default(),
        ));
    }
    Ok(())
}

/// Shift all offsets of a layout by `base` (used when a named layout is
/// embedded at a nonzero position).
fn shift(l: &Layout, base: u32) -> Layout {
    if base == 0 {
        return l.clone();
    }
    Layout {
        size_bits: l.size_bits,
        items: l
            .items
            .iter()
            .map(|item| match item {
                Item::Bits {
                    name,
                    offset,
                    width,
                } => Item::Bits {
                    name: name.clone(),
                    offset: offset + base,
                    width: *width,
                },
                Item::Sub { name, layout } => Item::Sub {
                    name: name.clone(),
                    layout: shift(layout, base),
                },
                Item::Overlay { name, alts } => Item::Overlay {
                    name: name.clone(),
                    alts: alts
                        .iter()
                        .map(|(a, l)| (a.clone(), shift(l, base)))
                        .collect(),
                },
                Item::Gap { offset, width } => Item::Gap {
                    offset: offset + base,
                    width: *width,
                },
            })
            .collect(),
    }
}

/// The word-level pieces a bitfield occupies: `(word_index, shift, mask,
/// bits)` such that the field value is assembled as
/// `Σ ((word >> shift) & mask) << accumulated-bits` from first piece to
/// last. A field of width ≤ 32 spans at most two words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldPiece {
    /// Index of the 32-bit word within the packed value.
    pub word: u32,
    /// Right-shift to bring the piece to the low bits.
    pub shift: u32,
    /// Number of bits this piece contributes.
    pub bits: u32,
}

/// Decompose the extraction of a field at absolute `offset`/`width` into
/// word-level pieces, most significant piece first.
pub fn field_pieces(offset: u32, width: u32) -> Vec<FieldPiece> {
    assert!(
        (1..=32).contains(&width),
        "field width {width} out of range"
    );
    let first_word = offset / 32;
    let first_bit = offset % 32; // from MSB
    let avail = 32 - first_bit;
    if width <= avail {
        vec![FieldPiece {
            word: first_word,
            shift: avail - width,
            bits: width,
        }]
    } else {
        let hi_bits = avail;
        let lo_bits = width - avail;
        vec![
            FieldPiece {
                word: first_word,
                shift: 0,
                bits: hi_bits,
            },
            FieldPiece {
                word: first_word + 1,
                shift: 32 - lo_bits,
                bits: lo_bits,
            },
        ]
    }
}

/// Extract a field value from packed words (reference semantics used by
/// tests and by the constant folder).
pub fn extract(words: &[u32], offset: u32, width: u32) -> u32 {
    let mut value = 0u64;
    for p in field_pieces(offset, width) {
        let piece = (words[p.word as usize] >> p.shift) & mask(p.bits);
        value = (value << p.bits) | piece as u64;
    }
    value as u32
}

/// Deposit a field value into packed words (reference semantics).
pub fn deposit(words: &mut [u32], offset: u32, width: u32, value: u32) {
    let pieces = field_pieces(offset, width);
    let mut remaining = width;
    for p in &pieces {
        remaining -= p.bits;
        let piece = (value >> remaining) & mask(p.bits);
        let m = mask(p.bits) << p.shift;
        let w = &mut words[p.word as usize];
        *w = (*w & !m) | (piece << p.shift);
    }
}

/// A mask of `bits` low-order ones (`bits ≤ 32`).
pub fn mask(bits: u32) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn layout_of(src: &str, name: &str) -> Layout {
        let prog = parse(src).unwrap();
        let mut env = LayoutEnv::new();
        for item in &prog.items {
            if let crate::ast::StmtKind::Layout(n, e) = &item.kind {
                let l = resolve(e, &env).unwrap();
                env.insert(n.clone(), l);
            }
        }
        env.get(name).unwrap().clone()
    }

    const IPV6: &str = r#"
        layout ipv6_address = { a1: 32, a2: 32, a3: 32, a4: 32 };
        layout ipv6_header = {
            version: 4, priority: 4, flow_label: 24,
            payload_length: 16, next_header: 8, hop_limit: 8,
            src_address: ipv6_address, dst_address: ipv6_address
        };
        fun main() { 0 }
    "#;

    #[test]
    fn ipv6_header_is_ten_words() {
        let l = layout_of(IPV6, "ipv6_header");
        assert_eq!(l.size_bits, 320);
        assert_eq!(l.words(), 10); // the paper: packed(ipv6_header) = word[10]
    }

    #[test]
    fn offsets_are_absolute() {
        let l = layout_of(IPV6, "ipv6_header");
        let leaves = l.leaves();
        let find = |p: &str| leaves.iter().find(|(n, _, _)| n == p).cloned().unwrap();
        assert_eq!(find("version"), ("version".into(), 0, 4));
        assert_eq!(find("priority"), ("priority".into(), 4, 4));
        assert_eq!(find("flow_label"), ("flow_label".into(), 8, 24));
        assert_eq!(find("payload_length"), ("payload_length".into(), 32, 16));
        assert_eq!(find("hop_limit"), ("hop_limit".into(), 56, 8));
        assert_eq!(find("src_address.a1"), ("src_address.a1".into(), 64, 32));
        assert_eq!(find("dst_address.a4"), ("dst_address.a4".into(), 288, 32));
    }

    #[test]
    fn overlay_alternatives_share_bits() {
        let src = r#"
            layout h = {
                verpri: overlay { whole: 8 | parts: { version: 4, priority: 4 } },
                flow_label: 24
            };
            fun main() { 0 }
        "#;
        let l = layout_of(src, "h");
        assert_eq!(l.size_bits, 32);
        let leaves = l.leaves();
        let find = |p: &str| leaves.iter().find(|(n, _, _)| n == p).cloned().unwrap();
        assert_eq!(
            find("verpri.whole.$value"),
            ("verpri.whole.$value".into(), 0, 8)
        );
        assert_eq!(
            find("verpri.parts.version"),
            ("verpri.parts.version".into(), 0, 4)
        );
        assert_eq!(
            find("verpri.parts.priority"),
            ("verpri.parts.priority".into(), 4, 4)
        );
        assert_eq!(find("flow_label"), ("flow_label".into(), 8, 24));
    }

    #[test]
    fn overlay_size_mismatch_rejected() {
        let src = r#"
            layout bad = { o: overlay { a: 8 | b: 16 } };
            fun main() { 0 }
        "#;
        let prog = parse(src).unwrap();
        let env = LayoutEnv::new();
        if let crate::ast::StmtKind::Layout(_, e) = &prog.items[0].kind {
            assert!(resolve(e, &env).is_err());
        } else {
            panic!("expected layout");
        }
    }

    #[test]
    fn concat_and_gap_shift_offsets() {
        // The paper's alignment example: lyt at offsets 0, 16, 24.
        let src = r#"
            layout lyt = { x: 16, y: 32, z: 8 };
            fun main() { 0 }
        "#;
        let lyt = layout_of(src, "lyt");
        assert_eq!(lyt.size_bits, 56);
        let env: LayoutEnv = [("lyt".to_string(), lyt)].into_iter().collect();
        use crate::ast::LayoutExpr as LE;
        let name = |s: &str| LE::Name(s.into(), Span::default());
        // {16} ## lyt ## {24} — 96 bits total, x at offset 16.
        let e = LE::Concat(
            Box::new(LE::Concat(Box::new(LE::Gap(16)), Box::new(name("lyt")))),
            Box::new(LE::Gap(24)),
        );
        let l = resolve(&e, &env).unwrap();
        assert_eq!(l.size_bits, 96);
        let leaves = l.leaves();
        assert_eq!(leaves[0], ("x".to_string(), 16, 16));
        assert_eq!(leaves[1], ("y".to_string(), 32, 32));
        assert_eq!(leaves[2], ("z".to_string(), 64, 8));
    }

    #[test]
    fn field_pieces_straddle() {
        // A 24-bit field starting at bit 16 straddles words 0 and 1.
        let ps = field_pieces(16, 24);
        assert_eq!(ps.len(), 2);
        assert_eq!(
            ps[0],
            FieldPiece {
                word: 0,
                shift: 0,
                bits: 16
            }
        );
        assert_eq!(
            ps[1],
            FieldPiece {
                word: 1,
                shift: 24,
                bits: 8
            }
        );
        // Fully contained field.
        let ps = field_pieces(8, 24);
        assert_eq!(
            ps,
            vec![FieldPiece {
                word: 0,
                shift: 0,
                bits: 24
            }]
        );
    }

    #[test]
    fn extract_deposit_roundtrip() {
        let mut words = [0u32; 3];
        deposit(&mut words, 16, 24, 0xABCDEF);
        assert_eq!(extract(&words, 16, 24), 0xABCDEF);
        // MSB-first: the high byte of the field sits in the low half of w0.
        assert_eq!(words[0] & 0xFFFF, 0xABCD);
        assert_eq!(words[1] >> 24, 0xEF);
        // Depositing must not clobber neighbours.
        deposit(&mut words, 0, 16, 0x1234);
        assert_eq!(extract(&words, 16, 24), 0xABCDEF);
        assert_eq!(extract(&words, 0, 16), 0x1234);
    }

    #[test]
    fn extract_full_word_aligned() {
        let words = [0xDEADBEEFu32, 0x12345678];
        assert_eq!(extract(&words, 0, 32), 0xDEADBEEF);
        assert_eq!(extract(&words, 32, 32), 0x12345678);
        assert_eq!(extract(&words, 28, 8), 0xF1);
    }
}
