//! Type checking and elaboration.
//!
//! Walks the AST once, resolving layouts, constants, functions and
//! exceptions, and records everything later phases need in a [`TypeInfo`]
//! side table keyed by [`NodeId`]:
//!
//! * the [`Type`] of every expression;
//! * the resolved [`Layout`] of every `pack`/`unpack`;
//! * the word arity of every memory read (§2.2: aggregate sizes are
//!   determined by binding context);
//! * the value of every compile-time constant.
//!
//! The checker also enforces Nova's §3.1 restrictions: recursive calls
//! (calls to functions whose bodies are still being checked, including the
//! whole mutually recursive group) are only legal in tail position, which
//! is what lets the compiler run without a stack; all other calls are
//! inlined later by de-proceduralization.

use crate::ast::*;
use crate::error::{Diagnostic, Span};
use crate::layout::{self, Layout, LayoutEnv};
use crate::types::{alt_view_type, packed_type, unpacked_type, FunSig, Type};
use std::collections::{HashMap, HashSet};

/// Everything the middle end needs to know about a checked program.
#[derive(Debug, Default)]
pub struct TypeInfo {
    /// Type of every expression node.
    pub expr: HashMap<NodeId, Type>,
    /// Resolved layout of every `pack`/`unpack` node.
    pub layouts: HashMap<NodeId, Layout>,
    /// Word count of every memory-read node.
    pub read_words: HashMap<NodeId, u32>,
    /// Value of every `const` definition's right-hand side.
    pub const_values: HashMap<NodeId, u32>,
    /// Final signature of every function definition, keyed by
    /// `(name, header span start)` — unique because definitions cannot
    /// overlap.
    pub fun_sigs: HashMap<(String, u32), FunSig>,
}

/// Type-check a parsed program.
///
/// # Errors
///
/// Returns the first type error with its source span.
pub fn check(program: &Program) -> Result<TypeInfo, Diagnostic> {
    check_with(program, &nova_obs::Obs::noop())
}

/// [`check`] with structured telemetry: the whole elaboration runs under
/// a `frontend.elaborate` span, every layout resolution is timed as a
/// `frontend.layout` span, and the number of resolved layout sites is
/// published as `frontend.layout.resolved`.
///
/// # Errors
///
/// Returns the first type error with its source span.
pub fn check_with(program: &Program, obs: &nova_obs::Obs) -> Result<TypeInfo, Diagnostic> {
    let _span = obs.span("frontend.elaborate");
    let mut cx = Checker {
        info: TypeInfo::default(),
        scopes: vec![Scope::default()],
        in_progress: HashSet::new(),
        obs: obs.clone(),
    };
    for item in &program.items {
        cx.check_stmt(item)?;
    }
    obs.counter("frontend.layout.resolved", cx.info.layouts.len() as u64);
    // The entry point: `fun main()` with no parameters.
    match cx.lookup("main") {
        Some(Binding::Value(Type::Fun(sig))) if sig.params.is_empty() => {}
        Some(Binding::Value(Type::Fun(_))) => {
            return Err(Diagnostic::new(
                "'main' must take no parameters",
                Span::default(),
            ))
        }
        _ => {
            return Err(Diagnostic::new(
                "program has no 'main' function",
                Span::default(),
            ))
        }
    }
    Ok(cx.info)
}

#[derive(Debug, Clone)]
enum Binding {
    Value(Type),
    Const(u32),
    Layout(Layout),
}

#[derive(Debug, Default)]
struct Scope {
    bindings: HashMap<String, Binding>,
}

struct Checker {
    info: TypeInfo,
    scopes: Vec<Scope>,
    /// Functions whose bodies are on the checking stack (self + group):
    /// calls to these must be tail calls.
    in_progress: HashSet<String>,
    obs: nova_obs::Obs,
}

impl Checker {
    fn lookup(&self, name: &str) -> Option<Binding> {
        for s in self.scopes.iter().rev() {
            if let Some(b) = s.bindings.get(name) {
                return Some(b.clone());
            }
        }
        None
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .unwrap()
            .bindings
            .insert(name.to_string(), b);
    }

    fn layout_env(&self) -> LayoutEnv {
        let mut env = LayoutEnv::new();
        for s in &self.scopes {
            for (n, b) in &s.bindings {
                if let Binding::Layout(l) = b {
                    env.insert(n.clone(), l.clone());
                }
            }
        }
        env
    }

    fn resolve_layout(&self, e: &LayoutExpr, span: Span) -> Result<Layout, Diagnostic> {
        let _span = self.obs.span("frontend.layout");
        layout::resolve(e, &self.layout_env()).map_err(|d| {
            if d.span == Span::default() {
                Diagnostic::new(d.message, span)
            } else {
                d
            }
        })
    }

    fn elab_type(&self, t: &TypeExpr, span: Span) -> Result<Type, Diagnostic> {
        Ok(match t {
            TypeExpr::Word => Type::Word,
            TypeExpr::Bool => Type::Bool,
            TypeExpr::Words(n) => Type::words(*n),
            TypeExpr::Packed(l) => packed_type(&self.resolve_layout(l, span)?),
            TypeExpr::Unpacked(l) => unpacked_type(&self.resolve_layout(l, span)?),
            TypeExpr::Tuple(ts) => Type::Tuple(
                ts.iter()
                    .map(|t| self.elab_type(t, span))
                    .collect::<Result<_, _>>()?,
            ),
            TypeExpr::Record(fs) => Type::Record(
                fs.iter()
                    .map(|(n, t)| Ok((n.clone(), self.elab_type(t, span)?)))
                    .collect::<Result<_, Diagnostic>>()?,
            ),
            TypeExpr::Exn(ts) => Type::Exn(
                ts.iter()
                    .enumerate()
                    .map(|(i, t)| Ok((i.to_string(), self.elab_type(t, span)?)))
                    .collect::<Result<_, Diagnostic>>()?,
            ),
        })
    }

    // ---------------- statements ----------------

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), Diagnostic> {
        match &stmt.kind {
            StmtKind::Layout(name, e) => {
                let l = self.resolve_layout(e, stmt.span)?;
                self.bind(name, Binding::Layout(l));
                Ok(())
            }
            StmtKind::Const(name, e) => {
                let v = self.eval_const(e)?;
                self.info.const_values.insert(e.id, v);
                self.info.expr.insert(e.id, Type::Word);
                self.bind(name, Binding::Const(v));
                Ok(())
            }
            StmtKind::Funs(defs) => self.check_fun_group(defs),
            StmtKind::Let(pat, ann, value) => self.check_let(pat, ann.as_ref(), value, stmt.span),
            StmtKind::Assign(name, value) => {
                let cur = match self.lookup(name) {
                    Some(Binding::Value(t)) => t,
                    Some(_) => {
                        return Err(Diagnostic::new(
                            format!("'{name}' is not an assignable temporary"),
                            stmt.span,
                        ))
                    }
                    None => {
                        return Err(Diagnostic::new(
                            format!("assignment to unbound variable '{name}'"),
                            stmt.span,
                        ))
                    }
                };
                let vt = self.check_expr(value, false)?;
                if !vt.compatible(&cur) {
                    return Err(Diagnostic::new(
                        format!("'{name}' has type {cur}, cannot assign {vt}"),
                        stmt.span,
                    ));
                }
                Ok(())
            }
            StmtKind::MemWrite(space, addr, value) => {
                let at = self.check_expr(addr, false)?;
                self.require(&at, &Type::Word, addr.span, "memory address")?;
                let vt = self.check_expr(value, false)?;
                let n = vt.word_count().ok_or_else(|| {
                    Diagnostic::new(
                        format!("cannot store a value of type {vt} to memory"),
                        value.span,
                    )
                })?;
                check_burst(*space, n, value.span)?;
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.check_expr(e, false)?;
                Ok(())
            }
            StmtKind::While(cond, body) => {
                let ct = self.check_expr(cond, false)?;
                self.require(&ct, &Type::Bool, cond.span, "while condition")?;
                self.scopes.push(Scope::default());
                self.check_block_value(body, false)?;
                self.scopes.pop();
                Ok(())
            }
        }
    }

    fn check_fun_group(&mut self, defs: &[FunDef]) -> Result<(), Diagnostic> {
        // Pre-declare signatures. Unannotated parameters default to `word`;
        // unannotated results are inferred from the body (recursive tail
        // calls contribute `Never`, so inference converges in one pass).
        let mut sigs = Vec::new();
        for d in defs {
            let mut params = Vec::new();
            for (n, ann) in &d.params {
                let t = match ann {
                    Some(t) => self.elab_type(t, d.span)?,
                    None => Type::Word,
                };
                params.push((n.clone(), t));
            }
            let result = match &d.result {
                Some(t) => self.elab_type(t, d.span)?,
                None => Type::Never, // placeholder; patched after checking
            };
            sigs.push(FunSig {
                params,
                named: d.named_params,
                result,
            });
        }
        for (d, s) in defs.iter().zip(&sigs) {
            if self.in_progress.contains(&d.name) {
                return Err(Diagnostic::new(
                    format!(
                        "function '{}' shadows an enclosing function being defined",
                        d.name
                    ),
                    d.span,
                ));
            }
            self.bind(&d.name, Binding::Value(Type::Fun(Box::new(s.clone()))));
        }
        // Only calls that participate in a cycle are recursion; calls to
        // other group members are ordinary forward calls that will be
        // inlined. Build the syntactic call graph, find its strongly
        // connected components, and check SCCs in callee-first order.
        let n = defs.len();
        let group_idx: HashMap<&str, usize> = defs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.as_str(), i))
            .collect();
        let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for (i, d) in defs.iter().enumerate() {
            group_calls_block(&d.body, &group_idx, &mut edges[i]);
        }
        // Reachability closure (groups are tiny).
        let mut reach = edges.clone();
        loop {
            let mut changed = false;
            for i in 0..n {
                let cur: Vec<usize> = reach[i].iter().copied().collect();
                for j in cur {
                    let next: Vec<usize> = reach[j].iter().copied().collect();
                    for k in next {
                        if reach[i].insert(k) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let same_scc = |i: usize, j: usize| {
            i == j && reach[i].contains(&i)
                || i != j && reach[i].contains(&j) && reach[j].contains(&i)
        };
        // Topological order over the SCC condensation: repeatedly take a
        // definition all of whose non-SCC callees are already done.
        let mut order: Vec<usize> = Vec::new();
        let mut done = vec![false; n];
        while order.len() < n {
            let mut progressed = false;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let ready = edges[i]
                    .iter()
                    .all(|&j| done[j] || same_scc(i, j) || j == i);
                if ready {
                    done[i] = true;
                    order.push(i);
                    progressed = true;
                }
            }
            assert!(progressed, "SCC scheduling stuck");
        }
        let mut results: Vec<Option<Type>> = vec![None; n];
        let mut processed = vec![false; n];
        for &start in &order {
            if processed[start] {
                continue;
            }
            let scc: Vec<usize> = (0..n)
                .filter(|&j| j == start || same_scc(start, j))
                .collect();
            // Recursion (tail-only) applies within this SCC.
            let mut inserted = Vec::new();
            for &i in &scc {
                if self.in_progress.insert(defs[i].name.clone()) {
                    inserted.push(defs[i].name.clone());
                }
            }
            for &i in &scc {
                let (d, sig) = (&defs[i], &sigs[i]);
                self.scopes.push(Scope::default());
                for (pn, pt) in &sig.params {
                    self.bind(pn, Binding::Value(pt.clone()));
                }
                let body_ty = self.check_block_value(&d.body, true)?;
                self.scopes.pop();
                let result = if matches!(sig.result, Type::Never) {
                    body_ty
                } else {
                    if !body_ty.compatible(&sig.result) {
                        return Err(Diagnostic::new(
                            format!(
                                "function '{}' returns {body_ty} but is annotated {}",
                                d.name, sig.result
                            ),
                            d.span,
                        ));
                    }
                    sig.result.clone()
                };
                results[i] = Some(result);
            }
            // Fixpoint within the SCC: a body ending in a tail call to an
            // SCC member (typed `Never`) returns what the callee returns.
            loop {
                let mut changed = false;
                for &i in &scc {
                    let mut r = results[i].clone().unwrap();
                    for &c in &edges[i] {
                        if scc.contains(&c) {
                            let cr = results[c].clone().unwrap();
                            r = r.join(cr.clone()).ok_or_else(|| {
                                Diagnostic::new(
                                    format!(
                                        "function '{}' returns {} but tail-calls a function returning {cr}",
                                        defs[i].name,
                                        results[i].clone().unwrap()
                                    ),
                                    defs[i].span,
                                )
                            })?;
                        }
                    }
                    if Some(&r) != results[i].as_ref() {
                        results[i] = Some(r);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for name in inserted {
                self.in_progress.remove(&name);
            }
            for &i in &scc {
                let final_sig = FunSig {
                    params: sigs[i].params.clone(),
                    named: sigs[i].named,
                    result: results[i].clone().unwrap(),
                };
                self.info
                    .fun_sigs
                    .insert((defs[i].name.clone(), defs[i].span.lo), final_sig.clone());
                self.bind(
                    &defs[i].name,
                    Binding::Value(Type::Fun(Box::new(final_sig))),
                );
                processed[i] = true;
            }
        }
        Ok(())
    }

    fn check_let(
        &mut self,
        pat: &Pattern,
        ann: Option<&TypeExpr>,
        value: &Expr,
        span: Span,
    ) -> Result<(), Diagnostic> {
        let ann_ty = ann.map(|t| self.elab_type(t, span)).transpose()?;
        // Memory reads need their arity from the binding context.
        let vt = if let ExprKind::MemRead(space, addr) = &value.kind {
            let n = match (pat, &ann_ty) {
                (Pattern::Tuple(names), _) => names.len() as u32,
                (_, Some(t)) => t.word_count().ok_or_else(|| {
                    Diagnostic::new(
                        format!("memory read cannot produce a value of type {t}"),
                        value.span,
                    )
                })?,
                _ => {
                    return Err(Diagnostic::new(
                        "a memory read needs a tuple pattern or a type annotation \
                         to determine how many words to transfer",
                        value.span,
                    ))
                }
            };
            check_burst(*space, n, value.span)?;
            let at = self.check_expr(addr, false)?;
            self.require(&at, &Type::Word, addr.span, "memory address")?;
            self.info.read_words.insert(value.id, n);
            let t = Type::words(n);
            self.info.expr.insert(value.id, t.clone());
            t
        } else {
            self.check_expr(value, false)?
        };
        if let Some(want) = &ann_ty {
            if !vt.compatible(want) {
                return Err(Diagnostic::new(
                    format!("let binding annotated {want} but initializer has type {vt}"),
                    span,
                ));
            }
        }
        let bound_ty = ann_ty.unwrap_or(vt);
        match pat {
            Pattern::Var(n) => self.bind(n, Binding::Value(bound_ty)),
            Pattern::Wild => {}
            Pattern::Tuple(names) => match bound_ty {
                Type::Tuple(ts) if ts.len() == names.len() => {
                    for (n, t) in names.iter().zip(ts) {
                        if n != "_" {
                            self.bind(n, Binding::Value(t));
                        }
                    }
                }
                other => {
                    return Err(Diagnostic::new(
                        format!(
                            "tuple pattern of {} names cannot match a value of type {other}",
                            names.len()
                        ),
                        span,
                    ))
                }
            },
        }
        Ok(())
    }

    // ---------------- blocks & expressions ----------------

    /// Check a block; `tail` says whether the block's value is in tail
    /// position of the enclosing function.
    fn check_block_value(&mut self, b: &Block, tail: bool) -> Result<Type, Diagnostic> {
        self.scopes.push(Scope::default());
        let mut result = Type::unit();
        for s in &b.stmts {
            self.check_stmt(s)?;
        }
        if let Some(t) = &b.tail {
            result = self.check_expr(t, tail)?;
        } else if let Some(Stmt {
            kind: StmtKind::Expr(e),
            ..
        }) = b.stmts.last()
        {
            // A trailing block-like statement (if/try without semicolon)
            // is not the block value, but a `raise`-only statement makes
            // the block diverge.
            if matches!(self.info.expr.get(&e.id), Some(Type::Never)) {
                result = Type::Never;
            }
        }
        self.scopes.pop();
        Ok(result)
    }

    fn check_expr(&mut self, e: &Expr, tail: bool) -> Result<Type, Diagnostic> {
        let t = self.check_expr_inner(e, tail)?;
        self.info.expr.insert(e.id, t.clone());
        Ok(t)
    }

    fn check_expr_inner(&mut self, e: &Expr, tail: bool) -> Result<Type, Diagnostic> {
        match &e.kind {
            ExprKind::Word(_) => Ok(Type::Word),
            ExprKind::Bool(_) => Ok(Type::Bool),
            ExprKind::Var(name) => match self.lookup(name) {
                Some(Binding::Value(t)) => Ok(t),
                Some(Binding::Const(_)) => Ok(Type::Word),
                Some(Binding::Layout(_)) => Err(Diagnostic::new(
                    format!("'{name}' is a layout, not a value"),
                    e.span,
                )),
                None => Err(Diagnostic::new(
                    format!("unbound variable '{name}'"),
                    e.span,
                )),
            },
            ExprKind::Binop(op, a, b) => {
                let ta = self.check_expr(a, false)?;
                let tb = self.check_expr(b, false)?;
                match op {
                    BinOp::AndAlso | BinOp::OrElse => {
                        self.require(&ta, &Type::Bool, a.span, "logical operand")?;
                        self.require(&tb, &Type::Bool, b.span, "logical operand")?;
                        Ok(Type::Bool)
                    }
                    _ if op.is_comparison() => {
                        self.require(&ta, &Type::Word, a.span, "comparison operand")?;
                        self.require(&tb, &Type::Word, b.span, "comparison operand")?;
                        Ok(Type::Bool)
                    }
                    _ => {
                        self.require(&ta, &Type::Word, a.span, "arithmetic operand")?;
                        self.require(&tb, &Type::Word, b.span, "arithmetic operand")?;
                        Ok(Type::Word)
                    }
                }
            }
            ExprKind::Unop(op, a) => {
                let ta = self.check_expr(a, false)?;
                match op {
                    UnOp::Not => {
                        self.require(&ta, &Type::Bool, a.span, "'!' operand")?;
                        Ok(Type::Bool)
                    }
                    UnOp::Complement | UnOp::Neg => {
                        self.require(&ta, &Type::Word, a.span, "unary operand")?;
                        Ok(Type::Word)
                    }
                }
            }
            ExprKind::Tuple(es) => Ok(Type::Tuple(
                es.iter()
                    .map(|e| self.check_expr(e, false))
                    .collect::<Result<_, _>>()?,
            )),
            ExprKind::Record(fs) => {
                let mut fields = Vec::new();
                let mut seen = HashSet::new();
                for (n, fe) in fs {
                    if !seen.insert(n.clone()) {
                        return Err(Diagnostic::new(
                            format!("duplicate record field '{n}'"),
                            fe.span,
                        ));
                    }
                    fields.push((n.clone(), self.check_expr(fe, false)?));
                }
                Ok(Type::Record(fields))
            }
            ExprKind::Field(base, name) => {
                let bt = self.check_expr(base, false)?;
                bt.field(name).cloned().ok_or_else(|| {
                    Diagnostic::new(format!("type {bt} has no field '{name}'"), e.span)
                })
            }
            ExprKind::If(cond, then_b, else_b) => {
                let ct = self.check_expr(cond, false)?;
                self.require(&ct, &Type::Bool, cond.span, "if condition")?;
                let tt = self.check_block_value(then_b, tail)?;
                match else_b {
                    Some(eb) => {
                        let et = self.check_block_value(eb, tail)?;
                        tt.clone().join(et.clone()).ok_or_else(|| {
                            Diagnostic::new(format!("if branches disagree: {tt} vs {et}"), e.span)
                        })
                    }
                    None => Ok(Type::unit()),
                }
            }
            ExprKind::Call(name, args) => self.check_call(name, args, tail, e.span),
            ExprKind::MemRead(..) => Err(Diagnostic::new(
                "memory reads may only appear as the right-hand side of a 'let'",
                e.span,
            )),
            ExprKind::Unpack(le, arg) => {
                let l = self.resolve_layout(le, e.span)?;
                let at = self.check_expr(arg, false)?;
                let want = packed_type(&l);
                if !at.compatible(&want) {
                    return Err(Diagnostic::new(
                        format!("unpack expects {want} but argument has type {at}"),
                        arg.span,
                    ));
                }
                let t = unpacked_type(&l);
                self.info.layouts.insert(e.id, l);
                Ok(t)
            }
            ExprKind::Pack(le, arg) => {
                let l = self.resolve_layout(le, e.span)?;
                let at = self.check_expr(arg, false)?;
                check_pack_shape(&l, &at, arg.span)?;
                let t = packed_type(&l);
                self.info.layouts.insert(e.id, l);
                Ok(t)
            }
            ExprKind::Raise(name, args) => {
                let b = self.lookup(name).ok_or_else(|| {
                    Diagnostic::new(format!("unbound exception '{name}'"), e.span)
                })?;
                let payload = match b {
                    Binding::Value(Type::Exn(p)) => p,
                    _ => {
                        return Err(Diagnostic::new(
                            format!("'{name}' is not an exception"),
                            e.span,
                        ))
                    }
                };
                self.check_args_against(args, &payload, e.span, "raise")?;
                Ok(Type::Never)
            }
            ExprKind::Try(body, handlers) => {
                // Handlers introduce exception names lexically in the body.
                self.scopes.push(Scope::default());
                for h in handlers {
                    let payload: Vec<(String, Type)> = h
                        .params
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (if h.named { p.clone() } else { i.to_string() }, Type::Word))
                        .collect();
                    self.bind(&h.name, Binding::Value(Type::Exn(payload)));
                }
                let bt = self.check_block_value(body, tail)?;
                self.scopes.pop();
                let mut result = bt;
                for h in handlers {
                    self.scopes.push(Scope::default());
                    for p in &h.params {
                        self.bind(p, Binding::Value(Type::Word));
                    }
                    let ht = self.check_block_value(&h.body, tail)?;
                    self.scopes.pop();
                    result = result.clone().join(ht.clone()).ok_or_else(|| {
                        Diagnostic::new(
                            format!(
                                "handler '{}' returns {ht}, but the try returns {result}",
                                h.name
                            ),
                            h.span,
                        )
                    })?;
                }
                Ok(result)
            }
            ExprKind::BlockExpr(b) => self.check_block_value(b, tail),
            ExprKind::Intrinsic(intr, args) => {
                if args.len() != intr.arity() {
                    return Err(Diagnostic::new(
                        format!(
                            "intrinsic takes {} arguments, {} supplied",
                            intr.arity(),
                            args.len()
                        ),
                        e.span,
                    ));
                }
                for a in args {
                    let t = self.check_expr(a, false)?;
                    self.require(&t, &Type::Word, a.span, "intrinsic argument")?;
                }
                Ok(match intr {
                    Intrinsic::Hash | Intrinsic::BitTestSet | Intrinsic::CsrRead => Type::Word,
                    Intrinsic::CsrWrite | Intrinsic::TxPacket | Intrinsic::CtxSwap => Type::unit(),
                    Intrinsic::RxPacket => Type::Tuple(vec![Type::Word, Type::Word]),
                })
            }
        }
    }

    fn check_call(
        &mut self,
        name: &str,
        args: &Args,
        tail: bool,
        span: Span,
    ) -> Result<Type, Diagnostic> {
        let b = self
            .lookup(name)
            .ok_or_else(|| Diagnostic::new(format!("unbound function '{name}'"), span))?;
        let sig = match b {
            Binding::Value(Type::Fun(sig)) => *sig,
            Binding::Value(other) => {
                return Err(Diagnostic::new(
                    format!("'{name}' has type {other} and cannot be called"),
                    span,
                ))
            }
            _ => return Err(Diagnostic::new(format!("'{name}' is not a function"), span)),
        };
        let recursive = self.in_progress.contains(name);
        if recursive && !tail {
            return Err(Diagnostic::new(
                format!("recursive call to '{name}' must be in tail position (§3.1: no stack)"),
                span,
            ));
        }
        self.check_args_against(args, &sig.params, span, "call")?;
        if recursive {
            // A tail call transfers control; it contributes `Never` so
            // result inference for the group converges.
            Ok(Type::Never)
        } else {
            Ok(sig.result)
        }
    }

    fn check_args_against(
        &mut self,
        args: &Args,
        params: &[(String, Type)],
        span: Span,
        what: &str,
    ) -> Result<(), Diagnostic> {
        match args {
            Args::Positional(es) => {
                if es.len() != params.len() {
                    return Err(Diagnostic::new(
                        format!(
                            "{what} expects {} arguments, {} supplied",
                            params.len(),
                            es.len()
                        ),
                        span,
                    ));
                }
                for (a, (pname, pt)) in es.iter().zip(params) {
                    let at = self.check_expr(a, false)?;
                    if !at.compatible(pt) {
                        return Err(Diagnostic::new(
                            format!("argument '{pname}' expects {pt}, got {at}"),
                            a.span,
                        ));
                    }
                }
            }
            Args::Named(fs) => {
                if fs.len() != params.len() {
                    return Err(Diagnostic::new(
                        format!(
                            "{what} expects {} arguments, {} supplied",
                            params.len(),
                            fs.len()
                        ),
                        span,
                    ));
                }
                for (n, a) in fs {
                    let pt = params
                        .iter()
                        .find(|(pn, _)| pn == n)
                        .map(|(_, t)| t)
                        .ok_or_else(|| {
                            Diagnostic::new(format!("no parameter named '{n}'"), a.span)
                        })?;
                    let at = self.check_expr(a, false)?;
                    if !at.compatible(pt) {
                        return Err(Diagnostic::new(
                            format!("argument '{n}' expects {pt}, got {at}"),
                            a.span,
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn require(&self, got: &Type, want: &Type, span: Span, what: &str) -> Result<(), Diagnostic> {
        if got.compatible(want) {
            Ok(())
        } else {
            Err(Diagnostic::new(
                format!("{what} must be {want}, got {got}"),
                span,
            ))
        }
    }

    // ---------------- constant evaluation ----------------

    fn eval_const(&self, e: &Expr) -> Result<u32, Diagnostic> {
        match &e.kind {
            ExprKind::Word(v) => Ok(*v),
            ExprKind::Var(n) => match self.lookup(n) {
                Some(Binding::Const(v)) => Ok(v),
                _ => Err(Diagnostic::new(
                    format!("'{n}' is not a compile-time constant"),
                    e.span,
                )),
            },
            ExprKind::Binop(op, a, b) => {
                let x = self.eval_const(a)?;
                let y = self.eval_const(b)?;
                Ok(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => {
                        if y >= 32 {
                            0
                        } else {
                            x << y
                        }
                    }
                    BinOp::Shr => {
                        if y >= 32 {
                            0
                        } else {
                            x >> y
                        }
                    }
                    _ => {
                        return Err(Diagnostic::new(
                            "comparisons are not allowed in constants",
                            e.span,
                        ))
                    }
                })
            }
            ExprKind::Unop(UnOp::Complement, a) => Ok(!self.eval_const(a)?),
            ExprKind::Unop(UnOp::Neg, a) => Ok(self.eval_const(a)?.wrapping_neg()),
            _ => Err(Diagnostic::new(
                "expression is not a compile-time constant",
                e.span,
            )),
        }
    }
}

/// Collect calls to group members occurring anywhere in a block (used for
/// the tail-call result fixpoint; over-approximation is harmless because
/// non-tail group calls are rejected elsewhere).
fn group_calls_block(
    b: &crate::ast::Block,
    group: &HashMap<&str, usize>,
    out: &mut HashSet<usize>,
) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Let(_, _, e)
            | StmtKind::Const(_, e)
            | StmtKind::Expr(e)
            | StmtKind::Assign(_, e) => group_calls_expr(e, group, out),
            StmtKind::MemWrite(_, a, v) => {
                group_calls_expr(a, group, out);
                group_calls_expr(v, group, out);
            }
            StmtKind::While(c, body) => {
                group_calls_expr(c, group, out);
                group_calls_block(body, group, out);
            }
            StmtKind::Layout(..) | StmtKind::Funs(..) => {}
        }
    }
    if let Some(t) = &b.tail {
        group_calls_expr(t, group, out);
    }
}

fn group_calls_expr(e: &Expr, group: &HashMap<&str, usize>, out: &mut HashSet<usize>) {
    match &e.kind {
        ExprKind::Call(name, args) => {
            if let Some(&i) = group.get(name.as_str()) {
                out.insert(i);
            }
            match args {
                Args::Positional(es) => {
                    for a in es {
                        group_calls_expr(a, group, out);
                    }
                }
                Args::Named(fs) => {
                    for (_, a) in fs {
                        group_calls_expr(a, group, out);
                    }
                }
            }
        }
        ExprKind::Raise(_, args) => match args {
            Args::Positional(es) => {
                for a in es {
                    group_calls_expr(a, group, out);
                }
            }
            Args::Named(fs) => {
                for (_, a) in fs {
                    group_calls_expr(a, group, out);
                }
            }
        },
        ExprKind::If(c, t, f) => {
            group_calls_expr(c, group, out);
            group_calls_block(t, group, out);
            if let Some(f) = f {
                group_calls_block(f, group, out);
            }
        }
        ExprKind::Try(b, hs) => {
            group_calls_block(b, group, out);
            for h in hs {
                group_calls_block(&h.body, group, out);
            }
        }
        ExprKind::BlockExpr(b) => group_calls_block(b, group, out),
        ExprKind::Binop(_, a, b) => {
            group_calls_expr(a, group, out);
            group_calls_expr(b, group, out);
        }
        ExprKind::Unop(_, a)
        | ExprKind::Field(a, _)
        | ExprKind::MemRead(_, a)
        | ExprKind::Unpack(_, a)
        | ExprKind::Pack(_, a) => group_calls_expr(a, group, out),
        ExprKind::Tuple(es) | ExprKind::Intrinsic(_, es) => {
            for a in es {
                group_calls_expr(a, group, out);
            }
        }
        ExprKind::Record(fs) => {
            for (_, a) in fs {
                group_calls_expr(a, group, out);
            }
        }
        ExprKind::Word(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
    }
}

fn check_burst(space: MemSpace, n: u32, span: Span) -> Result<(), Diagnostic> {
    let ok = match space {
        MemSpace::Sram | MemSpace::Scratch => (1..=8).contains(&n),
        MemSpace::Sdram => matches!(n, 2 | 4 | 6 | 8),
    };
    if ok {
        Ok(())
    } else {
        Err(Diagnostic::new(
            format!(
                "{} transactions move {} words, {n} requested",
                space.name(),
                if space == MemSpace::Sdram {
                    "an even number (2..=8) of"
                } else {
                    "1..=8"
                }
            ),
            span,
        ))
    }
}

/// Check that a record value of type `t` can be packed with layout `l`:
/// bitfields take words, sub-layouts take matching records, overlays take a
/// record with exactly one alternative (§3.2).
fn check_pack_shape(l: &Layout, t: &Type, span: Span) -> Result<(), Diagnostic> {
    use crate::layout::Item;
    let fields = match t {
        Type::Record(fs) => fs,
        other => {
            return Err(Diagnostic::new(
                format!("pack expects a record, got {other}"),
                span,
            ))
        }
    };
    let mut required = 0;
    for item in &l.items {
        match item {
            Item::Bits { name, .. } => {
                required += 1;
                let ft = t.field(name).ok_or_else(|| {
                    Diagnostic::new(format!("pack record is missing field '{name}'"), span)
                })?;
                if !ft.compatible(&Type::Word) {
                    return Err(Diagnostic::new(
                        format!("pack field '{name}' must be word, got {ft}"),
                        span,
                    ));
                }
            }
            Item::Sub { name, layout } => {
                required += 1;
                let ft = t.field(name).ok_or_else(|| {
                    Diagnostic::new(format!("pack record is missing field '{name}'"), span)
                })?;
                check_pack_shape(layout, ft, span)?;
            }
            Item::Overlay { name, alts } => {
                required += 1;
                let ft = t.field(name).ok_or_else(|| {
                    Diagnostic::new(format!("pack record is missing overlay '{name}'"), span)
                })?;
                let chosen = match ft {
                    Type::Record(fs) if fs.len() == 1 => &fs[0],
                    other => {
                        return Err(Diagnostic::new(
                            format!("overlay '{name}' needs exactly one alternative, got {other}"),
                            span,
                        ))
                    }
                };
                let alt_layout = alts.iter().find(|(a, _)| *a == chosen.0).map(|(_, l)| l);
                let alt_layout = alt_layout.ok_or_else(|| {
                    Diagnostic::new(
                        format!("overlay '{name}' has no alternative '{}'", chosen.0),
                        span,
                    )
                })?;
                let want = alt_view_type(alt_layout);
                if matches!(want, Type::Word) {
                    if !chosen.1.compatible(&Type::Word) {
                        return Err(Diagnostic::new(
                            format!("overlay alternative '{}' must be word", chosen.0),
                            span,
                        ));
                    }
                } else {
                    check_pack_shape(alt_layout, &chosen.1, span)?;
                }
            }
            Item::Gap { .. } => {}
        }
    }
    if fields.len() != required {
        return Err(Diagnostic::new(
            format!(
                "pack record has {} fields but the layout requires {required}",
                fields.len()
            ),
            span,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_ok(src: &str) -> TypeInfo {
        let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
        check(&p).unwrap_or_else(|d| panic!("check: {}", d.render(src)))
    }

    fn check_err(src: &str) -> Diagnostic {
        let p = parse(src).unwrap_or_else(|d| panic!("parse: {}", d.render(src)));
        check(&p).unwrap_err()
    }

    #[test]
    fn minimal() {
        check_ok("fun main() { 42 }");
    }

    #[test]
    fn needs_main() {
        let d = check_err("fun helper() { 0 }");
        assert!(d.message.contains("main"));
    }

    #[test]
    fn unbound_variable() {
        let d = check_err("fun main() { x }");
        assert!(d.message.contains("unbound"));
    }

    #[test]
    fn memory_read_arity_from_tuple_pattern() {
        let info = check_ok("fun main() { let (a, b, c) = sram(4); a + b + c }");
        assert!(info.read_words.values().any(|&n| n == 3));
    }

    #[test]
    fn memory_read_arity_from_annotation() {
        let src = r#"
            layout h = { a: 32, b: 32 };
            fun main() { let p: packed(h) = sram(0); let u = unpack[h](p); u.a + u.b }
        "#;
        let info = check_ok(src);
        assert!(info.read_words.values().any(|&n| n == 2));
    }

    #[test]
    fn memory_read_without_context_rejected() {
        let d = check_err("fun main() { let x = sram(0); x }");
        assert!(d.message.contains("tuple pattern or a type annotation"));
    }

    #[test]
    fn sdram_odd_burst_rejected() {
        let d = check_err("fun main() { let (a, b, c) = sdram(0); a }");
        assert!(d.message.contains("even"));
    }

    #[test]
    fn unpack_type_and_field_access() {
        let src = r#"
            layout h = { version: 4, rest: 28 };
            fun main() {
                let (w) = sram(0);
                let u = unpack[h]((w));
                if (u.version == 6) 1 else 0
            }
        "#;
        // `(w)` single-name tuple pattern reads one word; unpack of 1 word.
        check_ok(src);
    }

    #[test]
    fn pack_overlay_exactly_one_alternative() {
        let src = r#"
            layout h = { verpri: overlay { whole: 8 | parts: { version: 4, priority: 4 } }, f: 24 };
            fun main() {
                let x = pack[h] [ verpri = [ whole = 0x60 ], f = 0 ];
                let y = pack[h] [ verpri = [ parts = [ version = 6, priority = 0 ] ], f = 0 ];
                0
            }
        "#;
        check_ok(src);
        let bad = r#"
            layout h = { verpri: overlay { whole: 8 | parts: { version: 4, priority: 4 } }, f: 24 };
            fun main() {
                let x = pack[h] [ verpri = [ whole = 1, parts = [ version = 6, priority = 0 ] ], f = 0 ];
                0
            }
        "#;
        let p = parse(bad).unwrap();
        assert!(check(&p).is_err());
    }

    #[test]
    fn recursion_must_be_tail() {
        check_ok("fun main() { loop(0) } fun loop(i) { if (i < 10) loop(i + 1) else i }");
        let d = check_err("fun main() { bad(3) } fun bad(i) { 1 + bad(i) }");
        assert!(d.message.contains("tail position"));
    }

    #[test]
    fn mutual_recursion_tail_only() {
        check_ok(
            "fun main() { even(10) }
             fun even(n) { if (n == 0) 1 else odd(n - 1) }
             fun odd(n) { if (n == 0) 0 else even(n - 1) }",
        );
    }

    #[test]
    fn exceptions_are_lexical() {
        let src = r#"
            fun main() {
                try { raise X (1, 2) }
                handle X (a, b) { a + b }
            }
        "#;
        check_ok(src);
        let d = check_err("fun main() { raise X (1) }");
        assert!(d.message.contains("unbound exception"));
    }

    #[test]
    fn exceptions_as_arguments() {
        let src = r#"
            fun g [v: word, err: exn(word)] {
                if (v == 0) raise err (7) else v
            }
            fun main() {
                try { g[v = 0, err = E] }
                handle E (code) { code }
            }
        "#;
        check_ok(src);
    }

    #[test]
    fn if_branches_must_agree() {
        let d = check_err("fun main() { if (1 == 1) 4 else (1, 2) }");
        assert!(d.message.contains("disagree"));
    }

    #[test]
    fn consts_fold() {
        let info = check_ok("const A = 3; const B = A << 4; fun main() { B }");
        assert!(info.const_values.values().any(|&v| v == 0x30));
    }

    #[test]
    fn bool_conditions_required() {
        let d = check_err("fun main() { if (1) 2 else 3 }");
        assert!(d.message.contains("must be bool"));
    }

    #[test]
    fn record_flattening_word_counts() {
        let src = r#"
            fun main() {
                let r = [x = 1, y = (2, 3)];
                sram(0) <- r;
                0
            }
        "#;
        check_ok(src); // record of 3 words stores fine
    }

    #[test]
    fn mem_write_of_nonwords_rejected() {
        let d = check_err("fun main() { sram(0) <- (); 0 }");
        assert!(d.message.contains("1..=8"));
    }
}
