//! Streaming JSON-lines recorder.

use crate::{Event, EventKind, Recorder};
use std::io::Write;
use std::sync::Mutex;

/// Streams one JSON object per event to any writer (DESIGN.md §8 gives
/// the schema):
///
/// ```json
/// {"at_ns":12345,"kind":"span","name":"phase.ilp","dur_ns":678}
/// {"at_ns":12400,"kind":"counter","name":"ilp.pivots","delta":3633}
/// {"at_ns":12500,"kind":"sample","name":"sim.channel.sram.occupancy","value":0.38}
/// ```
///
/// Writes are line-buffered behind a mutex; a failed write disables the
/// recorder (telemetry must never abort a compile).
pub struct JsonLinesRecorder {
    out: Mutex<Option<Box<dyn Write + Send>>>,
}

impl JsonLinesRecorder {
    /// Stream to `w`.
    pub fn new(w: impl Write + Send + 'static) -> Self {
        JsonLinesRecorder {
            out: Mutex::new(Some(Box::new(w))),
        }
    }

    /// Stream to standard error.
    pub fn stderr() -> Self {
        JsonLinesRecorder::new(std::io::stderr())
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl Recorder for JsonLinesRecorder {
    fn record(&self, event: Event) {
        let mut line = String::with_capacity(96);
        line.push_str(&format!("{{\"at_ns\":{},\"kind\":", event.at_ns));
        match event.kind {
            EventKind::Span { dur_ns } => {
                line.push_str("\"span\",\"name\":\"");
                escape(&event.name, &mut line);
                line.push_str(&format!("\",\"dur_ns\":{dur_ns}}}"));
            }
            EventKind::Counter { delta } => {
                line.push_str("\"counter\",\"name\":\"");
                escape(&event.name, &mut line);
                line.push_str(&format!("\",\"delta\":{delta}}}"));
            }
            EventKind::Sample { value } => {
                line.push_str("\"sample\",\"name\":\"");
                escape(&event.name, &mut line);
                if value.is_finite() {
                    line.push_str(&format!("\",\"value\":{value}}}"));
                } else {
                    line.push_str("\",\"value\":null}");
                }
            }
        }
        line.push('\n');
        let mut guard = self.out.lock().expect("jsonl lock");
        if let Some(w) = guard.as_mut() {
            if w.write_all(line.as_bytes()).is_err() {
                *guard = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use std::sync::{Arc, Mutex as StdMutex};

    #[derive(Clone, Default)]
    struct Buf(Arc<StdMutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn one_json_object_per_event() {
        let buf = Buf::default();
        let obs = Obs::new(JsonLinesRecorder::new(buf.clone()));
        obs.counter("ilp.pivots", 7);
        obs.sample("occ", 0.5);
        obs.span("phase.ilp").end();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"counter\""), "{}", lines[0]);
        assert!(lines[0].contains("\"delta\":7"), "{}", lines[0]);
        assert!(lines[1].contains("\"value\":0.5"), "{}", lines[1]);
        assert!(lines[2].contains("\"dur_ns\":"), "{}", lines[2]);
        for l in lines {
            assert!(
                l.starts_with('{') && l.ends_with('}'),
                "not a JSON object: {l}"
            );
        }
    }
}
