//! In-memory event collection and aggregation.

use crate::summary::{CounterSummary, SampleSummary, SpanSummary, Summary};
use crate::{Event, EventKind, Recorder};
use std::sync::{Arc, Mutex};

/// Collects every event in memory. Cloning shares the underlying buffer,
/// so a driver can hand one clone to the pipeline and keep another to
/// read the results back:
///
/// ```
/// use nova_obs::{MemoryRecorder, Obs};
/// let rec = MemoryRecorder::new();
/// let obs = Obs::new(rec.clone());
/// obs.counter("ilp.pivots", 42);
/// assert_eq!(rec.summary().counter_total("ilp.pivots"), Some(42));
/// ```
#[derive(Clone, Default)]
pub struct MemoryRecorder {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// Snapshot of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("recorder lock").clone()
    }

    /// Drop all recorded events (e.g. between per-workload runs).
    pub fn clear(&self) {
        self.events.lock().expect("recorder lock").clear();
    }

    /// Aggregate everything recorded so far into a [`Summary`]: spans
    /// summed by name, counters totalled, samples reduced to
    /// count/min/max/mean/p50/p95. Name order is first-appearance order.
    pub fn summary(&self) -> Summary {
        let events = self.events.lock().expect("recorder lock");
        let mut spans: Vec<SpanSummary> = Vec::new();
        let mut counters: Vec<CounterSummary> = Vec::new();
        let mut samples: Vec<(String, Vec<f64>)> = Vec::new();
        for e in events.iter() {
            match e.kind {
                EventKind::Span { dur_ns } => match spans.iter_mut().find(|s| s.name == e.name) {
                    Some(s) => {
                        s.count += 1;
                        s.total_ns += dur_ns;
                    }
                    None => spans.push(SpanSummary {
                        name: e.name.clone(),
                        count: 1,
                        total_ns: dur_ns,
                    }),
                },
                EventKind::Counter { delta } => {
                    match counters.iter_mut().find(|c| c.name == e.name) {
                        Some(c) => c.total += delta,
                        None => counters.push(CounterSummary {
                            name: e.name.clone(),
                            total: delta,
                        }),
                    }
                }
                EventKind::Sample { value } => {
                    match samples.iter_mut().find(|(n, _)| *n == e.name) {
                        Some((_, vs)) => vs.push(value),
                        None => samples.push((e.name.clone(), vec![value])),
                    }
                }
            }
        }
        let samples = samples
            .into_iter()
            .map(|(name, mut vs)| {
                vs.sort_by(|a, b| a.total_cmp(b));
                let count = vs.len();
                let sum: f64 = vs.iter().sum();
                let pct = |p: f64| vs[(((count - 1) as f64) * p).round() as usize];
                SampleSummary {
                    name,
                    count,
                    min: vs[0],
                    max: vs[count - 1],
                    mean: sum / count as f64,
                    p50: pct(0.50),
                    p95: pct(0.95),
                }
            })
            .collect();
        Summary {
            spans,
            counters,
            samples,
        }
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: Event) {
        self.events.lock().expect("recorder lock").push(event);
    }
}
