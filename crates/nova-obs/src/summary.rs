//! Aggregated views of a recorded trace.

use std::time::Duration;

/// All spans with one name, summed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// How many spans closed under this name.
    pub count: usize,
    /// Total wall time across them, in nanoseconds.
    pub total_ns: u64,
}

impl SpanSummary {
    /// Total wall time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }
}

/// One counter's total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSummary {
    /// Counter name.
    pub name: String,
    /// Sum of all recorded deltas.
    pub total: u64,
}

/// One histogram's reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSummary {
    /// Histogram name.
    pub name: String,
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

/// An aggregated trace: what [`crate::MemoryRecorder::summary`] returns
/// and what `nova::CompileReport` carries back to callers. Entries keep
/// first-appearance order, which for spans is pipeline order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Spans, summed by name.
    pub spans: Vec<SpanSummary>,
    /// Counters, totalled by name.
    pub counters: Vec<CounterSummary>,
    /// Histograms, reduced by name.
    pub samples: Vec<SampleSummary>,
}

impl Summary {
    /// The summed span named `name`, if any closed.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Total wall time of span `name` (zero when absent).
    pub fn span_total(&self, name: &str) -> Duration {
        self.span(name).map(SpanSummary::total).unwrap_or_default()
    }

    /// The counter named `name`'s total, if it was ever incremented.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total)
    }

    /// The histogram named `name`, if it has samples.
    pub fn sample(&self, name: &str) -> Option<&SampleSummary> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Render a compact human-readable report (one line per entry),
    /// used by `bench --bin obs_report` and handy in tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "span    {:<32} {:>4}x {:>12.3?}\n",
                s.name,
                s.count,
                s.total()
            ));
        }
        for c in &self.counters {
            out.push_str(&format!("counter {:<32} {:>17}\n", c.name, c.total));
        }
        for h in &self.samples {
            out.push_str(&format!(
                "hist    {:<32} {:>4} samples  min {:.4}  mean {:.4}  p95 {:.4}  max {:.4}\n",
                h.name, h.count, h.min, h.mean, h.p95, h.max
            ));
        }
        out
    }
}
