//! Structured observability for the Nova/IXP pipeline.
//!
//! Every phase of the compiler and simulator — frontend, CPS optimizer,
//! ILP solver, backend codegen, chip simulation — reports what it did
//! through one narrow interface: an [`Obs`] handle carrying a
//! [`Recorder`]. Three event shapes cover the pipeline's needs:
//!
//! * **spans** — wall-clock intervals with monotonic timing
//!   ([`Obs::span`] returns an RAII guard that emits on drop);
//! * **counters** — monotonic additive totals ([`Obs::counter`]),
//!   e.g. pivots, shrink counts, channel busy cycles;
//! * **histogram samples** — point-in-time values ([`Obs::sample`]),
//!   e.g. periodic channel-occupancy samples.
//!
//! The default handle is a no-op: [`Obs::noop`] carries no recorder, and
//! every emission site bails out before formatting names, taking
//! timestamps, or allocating, so an uninstrumented compile pays one
//! branch per site. Two real recorders are provided:
//! [`MemoryRecorder`] collects events in memory and aggregates them into
//! a [`Summary`]; [`JsonLinesRecorder`] streams one JSON object per
//! event to any writer. [`TeeRecorder`] fans out to several recorders.
//!
//! Span and counter names form a dotted taxonomy (DESIGN.md §8):
//! `phase.*` for the five pipeline stages (`frontend`, `cps`, `ilp`,
//! `codegen`, `sim`), then `frontend.*`, `cps.pass.*`, `ilp.*`,
//! `backend.*`, `sim.channel.*`, `sim.engine.*` for the fine structure.

#![warn(missing_docs)]

mod jsonl;
mod memory;
mod summary;

pub use jsonl::JsonLinesRecorder;
pub use memory::MemoryRecorder;
pub use summary::{CounterSummary, SampleSummary, SpanSummary, Summary};

use std::sync::Arc;
use std::time::Instant;

/// What one telemetry event carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A completed span: `dur_ns` of wall-clock work ending at the
    /// event's timestamp.
    Span {
        /// Span duration in nanoseconds (monotonic clock).
        dur_ns: u64,
    },
    /// A counter increment (monotonic; consumers sum deltas by name).
    Counter {
        /// Amount added to the counter.
        delta: u64,
    },
    /// One histogram sample.
    Sample {
        /// The sampled value.
        value: f64,
    },
}

/// One telemetry event. Events are only materialized when a real
/// recorder is installed; the no-op path never constructs them.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted taxonomy name (`"phase.ilp"`, `"sim.channel.sram.busy"`).
    pub name: String,
    /// Nanoseconds since the owning [`Obs`] handle's epoch (monotonic).
    pub at_ns: u64,
    /// Payload.
    pub kind: EventKind,
}

/// Sink for telemetry events. Implementations must be cheap enough to
/// call from phase boundaries (not per-instruction hot loops — emitters
/// aggregate first) and are shared across solver worker threads.
pub trait Recorder: Send + Sync {
    /// Receive one event.
    fn record(&self, event: Event);
}

/// A recorder that drops everything. [`Obs::noop`] is cheaper (it skips
/// event construction entirely); this type exists for APIs that need a
/// `dyn Recorder` placeholder.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: Event) {}
}

/// Fans every event out to several recorders, in order.
pub struct TeeRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// Tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        TeeRecorder { sinks }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: Event) {
        for s in &self.sinks {
            s.record(event.clone());
        }
    }
}

struct ObsInner {
    epoch: Instant,
    recorder: Arc<dyn Recorder>,
}

/// A cheap, cloneable handle through which pipeline phases emit
/// telemetry. `Obs::noop()` (the default) short-circuits every emission
/// before any allocation or clock read.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Obs(recording)"
        } else {
            "Obs(noop)"
        })
    }
}

impl Obs {
    /// The disabled handle: every emission is a single branch.
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// A handle feeding `recorder`, with its monotonic epoch taken now.
    pub fn new(recorder: impl Recorder + 'static) -> Obs {
        Obs::from_arc(Arc::new(recorder))
    }

    /// A handle feeding an already-shared recorder.
    pub fn from_arc(recorder: Arc<dyn Recorder>) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                recorder,
            })),
        }
    }

    /// Whether a real recorder is installed. Emitters with non-trivial
    /// preparation (name formatting, stat scans) should gate on this.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The installed recorder, if any (for teeing it with another sink).
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.inner.as_ref().map(|i| i.recorder.clone())
    }

    /// Start a span. The returned guard emits a [`EventKind::Span`] with
    /// the elapsed wall time when dropped (or at [`SpanGuard::end`]).
    /// Disabled handles never read the clock.
    pub fn span<'a>(&'a self, name: &'a str) -> SpanGuard<'a> {
        SpanGuard {
            obs: self,
            name,
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Emit a span whose duration was measured externally (phases that
    /// already track their own wall time, like the ILP root solve).
    pub fn span_dur(&self, name: &str, dur: std::time::Duration) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(Event {
                name: name.to_string(),
                at_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind: EventKind::Span {
                    dur_ns: dur.as_nanos() as u64,
                },
            });
        }
    }

    /// Add `delta` to the counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(Event {
                name: name.to_string(),
                at_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind: EventKind::Counter { delta },
            });
        }
    }

    /// Record one histogram sample for `name`.
    pub fn sample(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(Event {
                name: name.to_string(),
                at_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind: EventKind::Sample { value },
            });
        }
    }

    fn emit_span(&self, name: &str, start: Instant) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(Event {
                name: name.to_string(),
                at_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind: EventKind::Span {
                    dur_ns: start.elapsed().as_nanos() as u64,
                },
            });
        }
    }
}

/// RAII guard for an open span; emits the span on drop.
#[must_use = "dropping immediately records an empty span"]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    name: &'a str,
    start: Option<Instant>,
}

impl SpanGuard<'_> {
    /// Close the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.obs.emit_span(self.name, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_emits_nothing_and_is_cheap() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        let g = obs.span("phase.frontend");
        obs.counter("x", 3);
        obs.sample("y", 1.5);
        g.end();
        // Nothing to assert beyond "did not panic": the guard held no
        // Instant, so no clock was read.
    }

    #[test]
    fn memory_recorder_collects_all_three_kinds() {
        let rec = MemoryRecorder::new();
        let obs = Obs::new(rec.clone());
        {
            let _g = obs.span("phase.cps");
            obs.counter("cps.pass.contract.shrunk", 7);
            obs.counter("cps.pass.contract.shrunk", 5);
            obs.sample("sim.channel.sram.occupancy", 0.25);
            obs.sample("sim.channel.sram.occupancy", 0.75);
        }
        let sum = rec.summary();
        assert_eq!(sum.counter_total("cps.pass.contract.shrunk"), Some(12));
        let span = sum.span("phase.cps").expect("span recorded");
        assert_eq!(span.count, 1);
        let hist = sum
            .sample("sim.channel.sram.occupancy")
            .expect("samples recorded");
        assert_eq!(hist.count, 2);
        assert!((hist.mean - 0.5).abs() < 1e-12);
        assert_eq!(hist.min, 0.25);
        assert_eq!(hist.max, 0.75);
    }

    #[test]
    fn tee_fans_out() {
        let a = MemoryRecorder::new();
        let b = MemoryRecorder::new();
        let obs = Obs::new(TeeRecorder::new(vec![
            Arc::new(a.clone()),
            Arc::new(b.clone()),
        ]));
        obs.counter("n", 1);
        assert_eq!(a.summary().counter_total("n"), Some(1));
        assert_eq!(b.summary().counter_total("n"), Some(1));
    }

    #[test]
    fn span_guard_times_monotonically() {
        let rec = MemoryRecorder::new();
        let obs = Obs::new(rec.clone());
        obs.span("s").end();
        let events = rec.events();
        assert_eq!(events.len(), 1);
        match events[0].kind {
            EventKind::Span { .. } => {}
            ref k => panic!("expected span, got {k:?}"),
        }
    }
}
