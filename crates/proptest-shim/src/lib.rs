//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of proptest's surface its tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `prop_recursive`, range and tuple
//! strategies, [`collection::vec`], [`prop_oneof!`], [`Just`], `any::<T>()`,
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated inputs'
//!   `Debug` rendering instead of a minimized counterexample;
//! * **fixed seeding** — each test function derives its stream from the
//!   test name and case index, so runs are reproducible without the
//!   `proptest-regressions` persistence files (which are ignored);
//! * value distributions are simpler (uniform, equal-weight `prop_oneof!`).
//!
//! Every property that holds under upstream proptest holds here too; this
//! shim only changes *which* random instances get exercised.

use std::fmt::Debug;
use std::rc::Rc;

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream; the `proptest!` macro derives one per test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Why a test case failed (the only variant this shim distinguishes).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed assertion or explicit rejection.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `leaf.prop_recursive(depth, _, _, branch)`.
    /// The extra size parameters exist for signature compatibility and are
    /// unused (no shrinking means no size accounting).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur: BoxedStrategy<Self::Value> = Rc::new(self.clone());
        for _ in 0..depth {
            let leaf: BoxedStrategy<Self::Value> = Rc::new(self.clone());
            let deeper: BoxedStrategy<Self::Value> = Rc::new(branch(cur));
            cur = Rc::new(OneOf {
                arms: vec![leaf, deeper],
            });
        }
        cur
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Rc::new(self)
    }
}

/// A type-erased, cheaply clonable strategy.
pub type BoxedStrategy<T> = Rc<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Rc<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Equal-weight choice between strategies ([`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> OneOf<T> {
    /// Build from boxed arms; used by the `prop_oneof!` expansion.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `collection::vec(strategy, len)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Stable 64-bit hash of a test name (FNV-1a), used for per-test seeds.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Equal-weight choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// the generator loop) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Define property tests.
///
/// Mirrors upstream syntax (illustrative, not compiled — the macro is
/// only usable where the shim is a dev-dependency):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_of(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let __vals = ($($crate::Strategy::generate(&$strat, &mut __rng),)+);
                    let __dbg = format!("{:#?}", __vals);
                    let ($($arg,)+) = __vals;
                    let out: $crate::TestCaseResult = (|| { $body; ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = out {
                        panic!(
                            "property {} failed at case {}/{}:\n{}\ninputs:\n{}",
                            stringify!($name), case, config.cases, e, __dbg
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_inclusive_and_exclusive(a in -3i8..=3, b in 0u32..96, n in 2usize..=7) {
            prop_assert!((-3..=3).contains(&a));
            prop_assert!(b < 96);
            prop_assert!((2..=7).contains(&n));
        }

        #[test]
        fn vec_and_tuples(v in crate::collection::vec((any::<u8>(), 0usize..7), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (_, idx) in &v {
                prop_assert!(*idx < 7);
            }
        }

        #[test]
        fn oneof_and_recursive(t in Just(Tree::Leaf(0)).prop_map(|t| t).prop_recursive(
            3, 24, 2,
            |inner| (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
        )) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("inputs"), "{msg}");
    }
}
