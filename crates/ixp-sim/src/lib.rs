//! Cycle-approximate simulator for IXP1200 micro-engine programs.
//!
//! The paper's throughput numbers (§11) came from a 233 MHz IXP1200 fed by
//! a hardware packet generator. This crate replaces that testbed: it
//! executes allocated machine code (`Program<PhysReg>`) against a memory
//! and packet model, charging the documented cycle costs
//! ([`ixp_machine::timing`]) — single-cycle ALU issue, multi-cycle
//! SRAM/SDRAM/scratch latencies with channel contention, pipeline refill
//! on taken branches — and models the micro-engine's hardware
//! multi-threading: a thread that issues a memory reference is swapped out
//! until the reference completes, letting the other contexts hide the
//! latency (the property the paper's applications rely on for line rate).
//!
//! The simulator doubles as the compiler's final correctness oracle: its
//! architectural results must match the CPS reference interpreter bit for
//! bit on every workload.

#![warn(missing_docs)]

mod chip;
mod engine;
mod machine;
mod packets;
mod rollout;
mod sim;
mod topology;

pub use chip::{
    image_checksum, simulate_chip, simulate_chip_reload, simulate_chip_reload_with,
    simulate_chip_with, ChipConfig, ImageSwap, SwapOutcome, SwapReport,
    CONTROL_STORE_RELOAD_CYCLES,
};
pub use machine::{RxGrant, SimMemory};
pub use packets::{FlowPacket, PacketGen, PacketSpec, TrafficSpec};
pub use rollout::{
    big_bang_rollout, staged_rollout, DisruptionReport, HealthSlo, RollbackReason, RolloutConfig,
    RolloutFaults, RolloutOutcome, RolloutReport, StageOutcome, StageReport, WindowHealth,
};
pub use sim::{
    simulate, simulate_with, EngineStats, SimConfig, SimError, SimMode, SimResult, StopReason,
};
pub use topology::{
    shard_of, simulate_topology, ChipShard, LatencySummary, TopologyConfig, TopologyError,
    TopologyResult,
};
