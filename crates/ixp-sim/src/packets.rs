//! Synthetic packet generation — the stand-in for the paper's hardware
//! packet generator on the Starburst/Tadpole board (§11, [22]).

use crate::machine::SimMemory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Description of a packet stream to generate.
#[derive(Debug, Clone)]
pub struct PacketSpec {
    /// Number of packets.
    pub count: usize,
    /// Payload length in bytes (the paper sweeps 8..256).
    pub payload_bytes: u32,
    /// Bytes of headers preceding the payload (Ethernet+IP+TCP ≈ 54; we
    /// use a word-aligned 56 by default).
    pub header_bytes: u32,
    /// RNG seed for payload contents.
    pub seed: u64,
}

impl Default for PacketSpec {
    fn default() -> Self {
        PacketSpec {
            count: 16,
            payload_bytes: 64,
            header_bytes: 56,
            seed: 0xA11CE,
        }
    }
}

/// Generates packets directly into simulated SDRAM and the receive queue,
/// the way the IXP's receive FIFO DMA engine would.
#[derive(Debug)]
pub struct PacketGen {
    rng: StdRng,
}

impl PacketGen {
    /// New generator.
    pub fn new(seed: u64) -> Self {
        PacketGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Fill `mem` with `spec.count` packets, each padded to a whole number
    /// of SDRAM quad-words, and enqueue them for reception. Returns the
    /// SDRAM word addresses used.
    pub fn generate(&mut self, mem: &mut SimMemory, spec: &PacketSpec) -> Vec<u32> {
        let mut addrs = Vec::new();
        let total_bytes = spec.header_bytes + spec.payload_bytes;
        let words = total_bytes.div_ceil(4);
        // Packets start on quad-word (2-word) boundaries.
        let stride = (words + 1) & !1;
        let mut base = 0u32;
        for _ in 0..spec.count {
            for w in 0..words {
                let v: u32 = self.rng.gen();
                mem.write(ixp_machine::MemSpace::Sdram, base + w, v);
            }
            mem.rx_queue.push_back((total_bytes, base));
            addrs.push(base);
            base += stride;
        }
        addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_aligned_packets() {
        let mut mem = SimMemory::default();
        let mut g = PacketGen::new(7);
        let spec = PacketSpec {
            count: 3,
            payload_bytes: 16,
            header_bytes: 56,
            ..Default::default()
        };
        let addrs = g.generate(&mut mem, &spec);
        assert_eq!(addrs.len(), 3);
        for a in &addrs {
            assert_eq!(a % 2, 0, "quad-word aligned");
        }
        assert_eq!(mem.rx_queue.len(), 3);
        assert_eq!(mem.rx_queue[0], (72, 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut m1 = SimMemory::default();
        let mut m2 = SimMemory::default();
        PacketGen::new(3).generate(&mut m1, &PacketSpec::default());
        PacketGen::new(3).generate(&mut m2, &PacketSpec::default());
        assert_eq!(m1.sdram, m2.sdram);
    }
}
