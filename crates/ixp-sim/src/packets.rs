//! Synthetic packet generation — the stand-in for the paper's hardware
//! packet generator on the Starburst/Tadpole board (§11, [22]).

use crate::machine::SimMemory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Description of a packet stream to generate.
#[derive(Debug, Clone)]
pub struct PacketSpec {
    /// Number of packets.
    pub count: usize,
    /// Payload length in bytes (the paper sweeps 8..256).
    pub payload_bytes: u32,
    /// Bytes of headers preceding the payload (Ethernet+IP+TCP ≈ 54; we
    /// use a word-aligned 56 by default).
    pub header_bytes: u32,
    /// RNG seed for payload contents.
    pub seed: u64,
}

impl Default for PacketSpec {
    fn default() -> Self {
        PacketSpec {
            count: 16,
            payload_bytes: 64,
            header_bytes: 56,
            seed: 0xA11CE,
        }
    }
}

/// Generates packets directly into simulated SDRAM and the receive queue,
/// the way the IXP's receive FIFO DMA engine would.
#[derive(Debug)]
pub struct PacketGen {
    rng: StdRng,
}

impl PacketGen {
    /// New generator.
    pub fn new(seed: u64) -> Self {
        PacketGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Fill `mem` with `spec.count` packets, each padded to a whole number
    /// of SDRAM quad-words, and enqueue them for reception. Returns the
    /// SDRAM word addresses used.
    pub fn generate(&mut self, mem: &mut SimMemory, spec: &PacketSpec) -> Vec<u32> {
        let mut addrs = Vec::new();
        let total_bytes = spec.header_bytes + spec.payload_bytes;
        let words = total_bytes.div_ceil(4);
        // Packets start on quad-word (2-word) boundaries.
        let stride = (words + 1) & !1;
        let mut base = 0u32;
        for _ in 0..spec.count {
            for w in 0..words {
                let v: u32 = self.rng.gen();
                mem.write(ixp_machine::MemSpace::Sdram, base + w, v);
            }
            mem.rx_queue.push_back((total_bytes, base));
            addrs.push(base);
            base += stride;
        }
        addrs
    }
}

/// One packet of a flow-level trace: which flow it belongs to, when it
/// hits the wire, and how long it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPacket {
    /// Flow identifier (drawn Zipf — a few flows carry most packets).
    pub flow: u64,
    /// Arrival cycle at the load balancer (non-decreasing across the
    /// trace).
    pub arrival: u64,
    /// On-wire length in bytes (headers included).
    pub bytes: u32,
}

/// A flow-level traffic model: Zipf-popular flows sending bursts of
/// packets with mixed lengths — the "heavy traffic from millions of
/// users" shape the ROADMAP asks for, rather than the paper's uniform
/// 64-packet drumbeat.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Total packets in the trace.
    pub packets: usize,
    /// Distinct flows to draw from.
    pub flows: usize,
    /// Zipf skew `s` in *half units*: `zipf_s_halves = 2` means `s = 1.0`.
    /// Quantizing to halves lets the weights be computed with `powi` +
    /// `sqrt` only — bit-deterministic IEEE ops — instead of a libm
    /// `powf` whose last bits vary across hosts.
    pub zipf_s_halves: u32,
    /// Mean packets per burst (a flow sends packets back-to-back in
    /// bursts; actual burst lengths are uniform in `1..=2*mean`).
    pub mean_burst: u32,
    /// The on-wire packet lengths in play (bytes, headers included). Each
    /// flow hashes to one class and sticks to it.
    pub length_classes: Vec<u32>,
    /// Mean idle gap between bursts, in cycles (uniform in `0..=2*mean`).
    pub mean_gap: u64,
    /// Wire pacing: cycles per on-wire byte. At the IXP1200's 233 MHz
    /// clock, 2 cycles/byte ≈ 1 Gb/s offered load. Zero means a burst's
    /// packets all land on the same cycle — a microburst.
    pub cycles_per_byte: u64,
    /// RNG seed; equal seeds give bit-identical traces.
    pub seed: u64,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            packets: 1_000,
            flows: 64,
            zipf_s_halves: 2,
            mean_burst: 4,
            length_classes: vec![64, 200, 576, 1500],
            mean_gap: 64,
            cycles_per_byte: 2,
            seed: 0x7AFF1C,
        }
    }
}

impl TrafficSpec {
    /// Generate the trace: a burst picks a Zipf-popular flow, emits a
    /// uniform `1..=2*mean_burst` run of that flow's packets paced at
    /// `cycles_per_byte` (zero pacing lands the whole burst on one
    /// cycle), then idles a uniform `0..=2*mean_gap` cycles.
    /// Arrivals are non-decreasing; every property of the trace is a pure
    /// function of the spec.
    pub fn generate(&self) -> Vec<FlowPacket> {
        let flows = self.flows.max(1);
        let classes: &[u32] = if self.length_classes.is_empty() {
            &[64]
        } else {
            &self.length_classes
        };
        // Zipf CDF over flow ranks: weight(r) = r^-s with s in halves.
        let whole = (self.zipf_s_halves / 2) as i32;
        let half = self.zipf_s_halves % 2 == 1;
        let mut cdf = Vec::with_capacity(flows);
        let mut acc = 0.0f64;
        for r in 1..=flows as u32 {
            let mut w = 1.0 / f64::from(r).powi(whole);
            if half {
                w /= f64::from(r).sqrt();
            }
            acc += w;
            cdf.push(acc);
        }
        let total = acc;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.packets);
        let mut now = 0u64;
        while out.len() < self.packets {
            let u: f64 = rng.gen::<f64>() * total;
            let rank = cdf.partition_point(|&c| c < u).min(flows - 1);
            // Rank -> stable flow id, decorrelated from popularity order.
            let flow = mix64(rank as u64 ^ self.seed);
            let bytes = classes[(mix64(flow) % classes.len() as u64) as usize];
            let burst = rng.gen_range(1..=(2 * self.mean_burst.max(1)));
            for _ in 0..burst {
                if out.len() >= self.packets {
                    break;
                }
                out.push(FlowPacket {
                    flow,
                    arrival: now,
                    bytes,
                });
                now += u64::from(bytes) * self.cycles_per_byte;
            }
            now += rng.gen_range(0..=(2 * self.mean_gap));
        }
        out
    }
}

/// SplitMix64 finalizer: a cheap, deterministic 64-bit mixer. Used for
/// flow-id derivation and the topology's load-balancer hash.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_aligned_packets() {
        let mut mem = SimMemory::default();
        let mut g = PacketGen::new(7);
        let spec = PacketSpec {
            count: 3,
            payload_bytes: 16,
            header_bytes: 56,
            ..Default::default()
        };
        let addrs = g.generate(&mut mem, &spec);
        assert_eq!(addrs.len(), 3);
        for a in &addrs {
            assert_eq!(a % 2, 0, "quad-word aligned");
        }
        assert_eq!(mem.rx_queue.len(), 3);
        assert_eq!(mem.rx_queue[0], (72, 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut m1 = SimMemory::default();
        let mut m2 = SimMemory::default();
        PacketGen::new(3).generate(&mut m1, &PacketSpec::default());
        PacketGen::new(3).generate(&mut m2, &PacketSpec::default());
        assert_eq!(m1.sdram, m2.sdram);
    }

    #[test]
    fn traffic_trace_is_a_pure_function_of_the_spec() {
        let spec = TrafficSpec {
            packets: 500,
            ..TrafficSpec::default()
        };
        assert_eq!(spec.generate(), spec.generate());
        let other = TrafficSpec {
            seed: 99,
            ..spec.clone()
        };
        assert_ne!(spec.generate(), other.generate(), "seed matters");
    }

    #[test]
    fn traffic_arrivals_never_go_backwards() {
        let trace = TrafficSpec {
            packets: 2_000,
            ..TrafficSpec::default()
        }
        .generate();
        assert_eq!(trace.len(), 2_000);
        for pair in trace.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn zipf_concentrates_traffic_on_few_flows() {
        let trace = TrafficSpec {
            packets: 5_000,
            flows: 256,
            zipf_s_halves: 2, // s = 1.0
            ..TrafficSpec::default()
        }
        .generate();
        let mut per_flow = std::collections::HashMap::new();
        for p in &trace {
            *per_flow.entry(p.flow).or_insert(0u64) += 1;
        }
        let mut counts: Vec<u64> = per_flow.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.iter().take(counts.len().div_ceil(10)).sum::<u64>();
        assert!(
            top * 10 >= trace.len() as u64 * 3,
            "top 10% of flows should carry >= 30% of packets, got {top}/{}",
            trace.len()
        );
    }

    #[test]
    fn zero_pacing_lands_whole_bursts_on_one_cycle() {
        let trace = TrafficSpec {
            packets: 2_000,
            mean_burst: 48,
            mean_gap: 4096,
            cycles_per_byte: 0,
            ..TrafficSpec::default()
        }
        .generate();
        let mut per_cycle = std::collections::HashMap::new();
        for p in &trace {
            *per_cycle.entry(p.arrival).or_insert(0u32) += 1;
        }
        let biggest = per_cycle.values().copied().max().unwrap();
        assert!(
            biggest > 64,
            "a microburst should overwhelm a 64-slot rx ring in one cycle, max was {biggest}"
        );
    }

    #[test]
    fn every_flow_keeps_one_packet_length() {
        let trace = TrafficSpec {
            packets: 3_000,
            ..TrafficSpec::default()
        }
        .generate();
        let mut len_of = std::collections::HashMap::new();
        let mut lens = std::collections::HashSet::new();
        for p in &trace {
            assert_eq!(*len_of.entry(p.flow).or_insert(p.bytes), p.bytes);
            lens.insert(p.bytes);
        }
        assert!(lens.len() > 1, "mixed packet lengths across flows");
    }
}
