//! Sharded multi-chip simulation: M independent IXP chips behind a
//! deterministic hash load balancer.
//!
//! The paper deploys one IXP1200 per pipeline stage; scaling the paper's
//! evaluation to "millions of users" (ROADMAP north star) means a rack of
//! them behind a flow-affine load balancer. This module models exactly
//! that: a [`crate::packets::TrafficSpec`] trace is split across chips by
//! hashing the flow id (so one flow never reorders across chips), every
//! chip runs the same program on its own host thread against its own
//! [`SimMemory`], and drop/latency statistics aggregate at the end.
//!
//! **Determinism rule:** the balancer decision is
//! `mix64(flow) % chips` — a pure function of the flow id and the chip
//! count. It must never depend on arrival order, queue depths, or any
//! other simulation state, because per-chip simulation only stays
//! bit-identical (and host-parallelizable) while each chip's input trace
//! is a pure function of the global trace.

use crate::chip::{simulate_chip, ChipConfig};
use crate::machine::SimMemory;
use crate::packets::{mix64, FlowPacket};
use crate::sim::{SimError, SimResult};
use ixp_machine::{PhysReg, Program};

/// Which chip a flow is pinned to. Pure function of `(flow, chips)`.
pub fn shard_of(flow: u64, chips: usize) -> usize {
    (mix64(flow) % chips.max(1) as u64) as usize
}

/// Parameters of a multi-chip run.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of chips behind the load balancer.
    pub chips: usize,
    /// Configuration applied to every chip without an override below.
    pub chip: ChipConfig,
    /// Per-chip receive buffer bound (packets); `0` means unbounded.
    /// Arrivals beyond it are tail-dropped and counted.
    pub rx_capacity: usize,
    /// Packet buffer slots per length class per chip. Slots are
    /// pre-written once and reused round-robin, so 10M-packet traces
    /// don't need 10M resident buffers. Sized up automatically to exceed
    /// the in-flight bound (`rx_capacity` + contexts), below which a
    /// queued packet's buffer could be handed out again.
    pub slots_per_class: usize,
    /// Per-shard configuration overrides `(chip_index, config)`: tests
    /// and fault campaigns can degrade exactly one shard (fewer engines,
    /// injected channel faults, a different scheduler mode) while the
    /// rest of the rack runs the baseline `chip` config. The last entry
    /// matching a shard wins.
    pub overrides: Vec<(usize, ChipConfig)>,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            chips: 2,
            chip: ChipConfig::default(),
            rx_capacity: 64,
            slots_per_class: 64,
            overrides: Vec::new(),
        }
    }
}

impl TopologyConfig {
    /// The configuration shard `shard` actually runs under.
    pub fn chip_for(&self, shard: usize) -> &ChipConfig {
        self.overrides
            .iter()
            .rev()
            .find(|(s, _)| *s == shard)
            .map_or(&self.chip, |(_, c)| c)
    }
}

/// A [`SimError`] attributed to the chip that hit it. When several chips
/// fail in one run, the lowest chip index is reported — deterministically,
/// regardless of host scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError {
    /// Index of the failing chip (lowest, if several failed).
    pub chip: usize,
    /// The underlying simulation error.
    pub error: SimError,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chip {}: {}", self.chip, self.error)
    }
}

impl std::error::Error for TopologyError {}

/// Order statistics over per-packet latencies (cycles from wire arrival
/// to transmit), computed by nearest rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Packets measured (delivered packets with a matched transmit).
    pub count: u64,
    /// Median latency in cycles.
    pub p50: u64,
    /// 90th percentile latency.
    pub p90: u64,
    /// 99th percentile latency.
    pub p99: u64,
    /// Worst observed latency.
    pub max: u64,
}

impl LatencySummary {
    pub(crate) fn from_sorted(lat: &[u64]) -> Self {
        let pick = |p: u64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            // Nearest-rank: ceil(p/100 * n) is 1-based.
            let rank = (p * lat.len() as u64).div_ceil(100).max(1) as usize;
            lat[rank.min(lat.len()) - 1]
        };
        LatencySummary {
            count: lat.len() as u64,
            p50: pick(50),
            p90: pick(90),
            p99: pick(99),
            max: lat.last().copied().unwrap_or(0),
        }
    }
}

/// One chip's share of a topology run.
#[derive(Debug, Clone)]
pub struct ChipShard {
    /// Chip index (the balancer's hash target).
    pub shard: usize,
    /// Packets the balancer steered to this chip.
    pub offered: u64,
    /// Packets the chip transmitted.
    pub delivered: u64,
    /// Packets tail-dropped at the chip's full receive buffer.
    pub dropped: u64,
    /// Latency order statistics for this chip's delivered packets.
    pub latency: LatencySummary,
    /// The chip's full simulation result.
    pub result: SimResult,
}

/// Aggregated outcome of a multi-chip run.
#[derive(Debug, Clone)]
pub struct TopologyResult {
    /// Per-chip breakdown, indexed by shard.
    pub chips: Vec<ChipShard>,
    /// Total packets in the input trace.
    pub offered: u64,
    /// Total packets transmitted across all chips.
    pub delivered: u64,
    /// Total packets tail-dropped across all chips.
    pub dropped: u64,
    /// Modeled cycles of the slowest chip (the chips run in parallel
    /// wall-clock-wise, so this is the makespan).
    pub cycles: u64,
    /// Aggregate modeled throughput: sum of per-chip Mb/s.
    pub mbps: f64,
    /// Latency order statistics pooled over every delivered packet.
    pub latency: LatencySummary,
}

/// Run `prog` on `cfg.chips` simulated chips fed by `trace` through the
/// flow-hash load balancer. `write_packet(mem, addr, bytes)` pre-writes
/// one valid packet buffer of the given on-wire length at a word address
/// — called once per slot before simulation starts, so the hook needs no
/// thread safety.
///
/// Per-chip arrival schedules preserve the trace's arrival order (the
/// balancer is flow-affine and order-independent), packet contents come
/// from round-robin slot rings per length class, and per-packet latency
/// pairs the k-th receive grant of a buffer with the k-th transmit out
/// of that buffer (transmits may start at an offset inside the slot —
/// NAT shifts the packet start forward) — exact because a slot can only
/// be re-granted after the ring wraps, which the in-flight bound
/// prevents while its previous occupant is still queued.
///
/// # Errors
///
/// Returns a [`TopologyError`] naming the failing chip (lowest index if
/// several failed) when any chip hits a [`SimError`] — which
/// [`ixp_machine::validate`] should have ruled out.
pub fn simulate_topology<F>(
    prog: &Program<PhysReg>,
    cfg: &TopologyConfig,
    trace: &[FlowPacket],
    write_packet: F,
) -> Result<TopologyResult, TopologyError>
where
    F: Fn(&mut SimMemory, u32, u32),
{
    let chips = cfg.chips.max(1);
    let mut mems = shard_memories(cfg, trace, &write_packet);

    // One host thread per chip. Chips share nothing, so this is the
    // embarrassingly parallel layer above the per-chip engine pool.
    let results: Vec<Result<SimResult, SimError>> = std::thread::scope(|s| {
        let handles: Vec<_> = mems
            .iter_mut()
            .enumerate()
            .map(|(shard, mem)| s.spawn(move || simulate_chip(prog, mem, cfg.chip_for(shard))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut shards = Vec::with_capacity(chips);
    let mut all_lat: Vec<u64> = Vec::new();
    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut cycles = 0u64;
    let mut mbps = 0.0f64;
    // Shard order ascends, so the first error reported is always the
    // lowest failing chip index — independent of which host thread
    // finished (or failed) first.
    for (shard, (res, mem)) in results.into_iter().zip(mems.iter()).enumerate() {
        let res = res.map_err(|error| TopologyError { chip: shard, error })?;
        let lat = shard_latencies(mem);
        let mut sorted = lat.clone();
        sorted.sort_unstable();
        let shard_offered = mem.rx_dropped + mem.rx_grants.len() as u64;
        offered += shard_offered;
        delivered += res.packets;
        dropped += mem.rx_dropped;
        cycles = cycles.max(res.cycles);
        mbps += res.mbps;
        all_lat.extend_from_slice(&lat);
        shards.push(ChipShard {
            shard,
            offered: shard_offered,
            delivered: res.packets,
            dropped: mem.rx_dropped,
            latency: LatencySummary::from_sorted(&sorted),
            result: res,
        });
    }
    // Packets still waiting in a schedule or backlog when a chip hit its
    // cycle limit were never offered to the rx unit; count them so the
    // conservation check (offered = delivered + dropped + unfinished)
    // stays visible to callers.
    for mem in &mems {
        offered += (mem.rx_arrivals.len() + mem.rx_backlog.len()) as u64;
    }
    all_lat.sort_unstable();
    Ok(TopologyResult {
        chips: shards,
        offered,
        delivered,
        dropped,
        cycles,
        mbps,
        latency: LatencySummary::from_sorted(&all_lat),
    })
}

/// Build every shard's [`SimMemory`] from the global trace: the balancer
/// split, length-class slot rings, and the timed arrival schedule. Shared
/// with the rollout controller so a staged re-run of one shard sees
/// byte-identical input to the topology run it is compared against.
pub(crate) fn shard_memories<F>(
    cfg: &TopologyConfig,
    trace: &[FlowPacket],
    write_packet: &F,
) -> Vec<SimMemory>
where
    F: Fn(&mut SimMemory, u32, u32),
{
    let chips = cfg.chips.max(1);
    let mut mems: Vec<SimMemory> = Vec::with_capacity(chips);
    for shard in 0..chips {
        let chip = cfg.chip_for(shard);
        // A slot must not be re-granted while its previous occupant can
        // still be queued or in service: bound in-flight packets per chip.
        let in_flight = cfg.rx_capacity + chip.engines.max(1) * chip.contexts.max(1);
        let slots = cfg.slots_per_class.max(in_flight + 1) as u32;
        let mut mem = SimMemory {
            rx_capacity: cfg.rx_capacity,
            ..Default::default()
        };
        // Length classes in first-seen order; each gets a ring of
        // pre-written buffers.
        let mut classes: Vec<(u32, u32, u32)> = Vec::new(); // (bytes, base, stride)
        let mut next_base = 0u32;
        let mut ring_pos: Vec<u32> = Vec::new();
        for p in trace.iter().filter(|p| shard_of(p.flow, chips) == shard) {
            let ci = match classes.iter().position(|c| c.0 == p.bytes) {
                Some(i) => i,
                None => {
                    let stride = (p.bytes.div_ceil(4) + 1) & !1; // quad-word aligned
                    classes.push((p.bytes, next_base, stride));
                    ring_pos.push(0);
                    for s in 0..slots {
                        write_packet(&mut mem, next_base + s * stride, p.bytes);
                    }
                    next_base += slots * stride;
                    classes.len() - 1
                }
            };
            let (bytes, base, stride) = classes[ci];
            let addr = base + ring_pos[ci] * stride;
            ring_pos[ci] = (ring_pos[ci] + 1) % slots;
            mem.rx_arrivals.push_back((p.arrival, bytes, addr));
        }
        mems.push(mem);
    }
    mems
}

/// Per-grant latency of one finished chip, aligned with `rx_grants`:
/// entry *k* is the arrival-to-transmit latency of the k-th granted
/// packet, or `None` if that grant never produced a transmit (aborted in
/// flight by a cycle limit or an image swap). Grants hand out slot-ring
/// base addresses, but programs may transmit from a small offset inside
/// the buffer (NAT moves the packet start forward when the IPv6 header
/// shrinks to IPv4), so each transmit is attributed to the nearest
/// granted base at or below its address — offsets never reach the next
/// slot because the ring stride covers the whole buffer; pairing is k-th
/// grant of a base with the k-th transmit out of that base.
pub(crate) fn grant_latencies(mem: &SimMemory) -> Vec<Option<u64>> {
    use std::collections::HashMap;
    let mut bases: Vec<u32> = mem.rx_grants.iter().map(|&(a, _, _)| a).collect();
    bases.sort_unstable();
    bases.dedup();
    let mut tx_of: HashMap<u32, std::collections::VecDeque<u64>> = HashMap::new();
    for &(addr, _len, cycle) in &mem.tx_log {
        let i = bases.partition_point(|&b| b <= addr);
        if i == 0 {
            continue; // transmit from an address never granted
        }
        tx_of.entry(bases[i - 1]).or_default().push_back(cycle);
    }
    mem.rx_grants
        .iter()
        .map(|&(addr, arrival, _grant)| {
            tx_of
                .get_mut(&addr)
                .and_then(|q| q.pop_front())
                .map(|tx| tx.saturating_sub(arrival))
        })
        .collect()
}

/// Per-packet latencies of one finished chip: the matched grants of
/// [`grant_latencies`]. Grants carry the packet's true wire arrival, so
/// `latency = tx_cycle - arrival` includes queueing delay in the receive
/// buffer.
fn shard_latencies(mem: &SimMemory) -> Vec<u64> {
    grant_latencies(mem).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::TrafficSpec;
    use crate::sim::{SimMode, StopReason};
    use ixp_machine::{Addr, Bank, Block, BlockId, Instr, MemSpace, Terminator};

    fn r(bank: Bank, n: u8) -> PhysReg {
        PhysReg::new(bank, n)
    }

    /// rx -> read sdram burst -> tx, until the stream ends.
    fn forwarder() -> Program<PhysReg> {
        Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::RxPacket {
                        len_dst: r(Bank::A, 0),
                        addr_dst: r(Bank::A, 1),
                    },
                    Instr::MemRead {
                        space: MemSpace::Sdram,
                        addr: Addr::Reg(r(Bank::A, 1), 0),
                        dst: vec![r(Bank::Ld, 0), r(Bank::Ld, 1)],
                    },
                    Instr::TxPacket {
                        addr: r(Bank::A, 1),
                        len: r(Bank::A, 0),
                    },
                ],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        }
    }

    fn small_cfg(chips: usize, mode: SimMode) -> TopologyConfig {
        TopologyConfig {
            chips,
            chip: ChipConfig {
                engines: 2,
                contexts: 2,
                mode,
                ..ChipConfig::default()
            },
            rx_capacity: 8,
            slots_per_class: 8,
            overrides: Vec::new(),
        }
    }

    fn trace(packets: usize) -> Vec<crate::packets::FlowPacket> {
        TrafficSpec {
            packets,
            flows: 32,
            ..TrafficSpec::default()
        }
        .generate()
    }

    #[test]
    fn balancer_is_flow_affine_and_covers_all_chips() {
        let t = trace(2_000);
        for p in &t {
            assert_eq!(shard_of(p.flow, 4), shard_of(p.flow, 4));
        }
        let used: std::collections::HashSet<usize> =
            t.iter().map(|p| shard_of(p.flow, 4)).collect();
        assert_eq!(used.len(), 4, "hash spreads 32 flows over 4 chips");
    }

    #[test]
    fn topology_conserves_packets_and_measures_latency() {
        let t = trace(600);
        let res = simulate_topology(
            &forwarder(),
            &small_cfg(3, SimMode::FastPath),
            &t,
            |m, a, b| {
                m.write(MemSpace::Sdram, a, b);
            },
        )
        .unwrap();
        assert_eq!(res.offered, 600);
        assert_eq!(
            res.delivered + res.dropped,
            res.offered,
            "finished run: every offered packet was delivered or dropped"
        );
        assert!(res
            .chips
            .iter()
            .all(|c| c.result.stop == StopReason::AllHalted));
        assert_eq!(res.latency.count, res.delivered);
        assert!(res.latency.p50 <= res.latency.p99);
        assert!(res.latency.p99 <= res.latency.max);
        assert!(res.latency.p50 > 0, "forwarding takes nonzero cycles");
        assert!(res.mbps > 0.0);
    }

    #[test]
    fn both_modes_agree_on_the_whole_topology() {
        let t = trace(400);
        let run = |mode: SimMode| {
            let res = simulate_topology(&forwarder(), &small_cfg(2, mode), &t, |m, a, b| {
                m.write(MemSpace::Sdram, a, b);
            })
            .unwrap();
            (
                res.offered,
                res.delivered,
                res.dropped,
                res.cycles,
                res.latency,
                res.chips
                    .iter()
                    .map(|c| (c.offered, c.delivered, c.dropped, c.latency))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(SimMode::FastPath), run(SimMode::CycleSlice));
    }

    #[test]
    fn offset_transmits_still_pair_for_latency() {
        // NAT-style: the packet start moves forward inside the granted
        // buffer, so the transmit address is base + offset, not the
        // grant address itself.
        let shifting = Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::RxPacket {
                        len_dst: r(Bank::A, 0),
                        addr_dst: r(Bank::A, 1),
                    },
                    Instr::Alu {
                        op: ixp_machine::AluOp::Add,
                        dst: r(Bank::A, 2),
                        a: r(Bank::A, 1),
                        b: ixp_machine::AluSrc::Imm(5),
                    },
                    Instr::TxPacket {
                        addr: r(Bank::A, 2),
                        len: r(Bank::A, 0),
                    },
                ],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        };
        let t = trace(400);
        let res = simulate_topology(
            &shifting,
            &small_cfg(2, SimMode::FastPath),
            &t,
            |m, a, b| {
                m.write(MemSpace::Sdram, a, b);
            },
        )
        .unwrap();
        assert_eq!(res.latency.count, res.delivered);
        assert!(res.latency.p50 > 0);
    }

    #[test]
    fn per_shard_override_degrades_exactly_one_chip() {
        let t = trace(400);
        let mut cfg = small_cfg(2, SimMode::FastPath);
        // Shard 0 gets a starvation-level cycle budget; shard 1 runs the
        // baseline config and must be unaffected.
        cfg.overrides.push((
            0,
            ChipConfig {
                engines: 2,
                contexts: 2,
                max_cycles: 2_000,
                mode: SimMode::FastPath,
                ..ChipConfig::default()
            },
        ));
        let res = simulate_topology(&forwarder(), &cfg, &t, |m, a, b| {
            m.write(MemSpace::Sdram, a, b);
        })
        .unwrap();
        assert_eq!(res.chips[0].result.stop, StopReason::CycleLimit);
        assert_eq!(res.chips[1].result.stop, StopReason::AllHalted);
        let baseline = simulate_topology(
            &forwarder(),
            &small_cfg(2, SimMode::FastPath),
            &t,
            |m, a, b| {
                m.write(MemSpace::Sdram, a, b);
            },
        )
        .unwrap();
        assert_eq!(
            res.chips[1].delivered, baseline.chips[1].delivered,
            "the un-overridden shard is untouched"
        );
    }

    #[test]
    fn errors_name_the_lowest_failing_chip() {
        // Every chip hits the same bad jump target; the error must still
        // deterministically name chip 0.
        let bad = Program {
            blocks: vec![Block {
                instrs: vec![],
                term: Terminator::Jump(BlockId(7)),
            }],
            entry: BlockId(0),
        };
        let t = trace(200);
        let err = simulate_topology(&bad, &small_cfg(4, SimMode::FastPath), &t, |m, a, b| {
            m.write(MemSpace::Sdram, a, b);
        })
        .unwrap_err();
        assert_eq!(err.chip, 0);
        assert!(matches!(err.error, SimError::BadTarget(_)));
        assert!(err.to_string().starts_with("chip 0:"));
    }

    #[test]
    fn more_chips_never_deliver_fewer_packets() {
        let t = trace(1_000);
        let delivered = |chips: usize| {
            simulate_topology(
                &forwarder(),
                &small_cfg(chips, SimMode::FastPath),
                &t,
                |m, a, b| {
                    m.write(MemSpace::Sdram, a, b);
                },
            )
            .unwrap()
            .delivered
        };
        assert!(delivered(4) >= delivered(1));
    }
}
