//! Shared memory and I/O state of the simulated system.

use std::collections::{HashMap, VecDeque};

/// Outcome of asking the receive scheduler for a packet at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxGrant {
    /// A packet was granted.
    Packet {
        /// On-wire length in bytes.
        len: u32,
        /// SDRAM word address of the buffered packet.
        addr: u32,
    },
    /// No packet has arrived yet; the next scheduled arrival lands at
    /// this cycle (timed traffic only). The requester should sleep until
    /// then and retry.
    WaitUntil(u64),
    /// The stream is exhausted: no packet will ever arrive again.
    Empty,
}

/// Memories, CSRs, and packet queues shared by all threads.
#[derive(Debug, Clone, Default)]
pub struct SimMemory {
    /// External SRAM (word addressed).
    pub sram: Vec<u32>,
    /// External SDRAM (word addressed).
    pub sdram: Vec<u32>,
    /// On-chip scratch.
    pub scratch: Vec<u32>,
    /// Control/status registers.
    pub csr: HashMap<u32, u32>,
    /// Pending received packets: `(length_bytes, sdram_word_address)`.
    /// The legacy pre-loaded model: every packet is available from cycle
    /// 0 and nothing is ever dropped.
    pub rx_queue: VecDeque<(u32, u32)>,
    /// Timed traffic: future arrivals
    /// `(arrival_cycle, length_bytes, sdram_word_address)` in
    /// non-decreasing arrival order. When this schedule (or the backlog
    /// below) is non-empty, [`SimMemory::rx_grant`] models a bounded
    /// receive buffer instead of the legacy queue.
    pub rx_arrivals: VecDeque<(u64, u32, u32)>,
    /// Arrived-but-ungranted packets of the timed model, admitted from
    /// `rx_arrivals` as simulated time passes.
    pub rx_backlog: VecDeque<(u64, u32, u32)>,
    /// Bound on `rx_backlog` (timed model only); `0` means unbounded.
    /// Arrivals that find the buffer full are tail-dropped.
    pub rx_capacity: usize,
    /// Packets tail-dropped at a full receive buffer.
    pub rx_dropped: u64,
    /// Granted timed packets `(sdram_word_address, arrival_cycle,
    /// grant_cycle)` in grant order — the receive-side half of per-packet
    /// latency accounting (the transmit side is `tx_log`).
    pub rx_grants: Vec<(u32, u64, u64)>,
    /// Per-arrival admission verdicts of the timed model, in arrival
    /// order: `true` = admitted to the backlog, `false` = tail-dropped.
    /// The backlog is FIFO, so the *j*-th `true` entry is the *j*-th
    /// grant — this log joins `rx_grants` back to the original arrival
    /// schedule (and through it to flows) for per-flow disruption
    /// accounting.
    pub rx_admissions: Vec<bool>,
    /// Transmitted packets with their completion cycle:
    /// `(sdram_word_address, length_bytes, cycle)`.
    pub tx_log: Vec<(u32, u32, u64)>,
}

impl SimMemory {
    /// Zeroed memories of the given word sizes.
    pub fn with_sizes(sram: usize, sdram: usize, scratch: usize) -> Self {
        SimMemory {
            sram: vec![0; sram],
            sdram: vec![0; sdram],
            scratch: vec![0; scratch],
            ..SimMemory::default()
        }
    }

    /// Read a word from a memory space, growing it on demand.
    pub fn read(&mut self, space: ixp_machine::MemSpace, addr: u32) -> u32 {
        let m = self.space_mut(space);
        if addr as usize >= m.len() {
            m.resize(addr as usize + 1, 0);
        }
        m[addr as usize]
    }

    /// Write a word, growing the memory on demand.
    pub fn write(&mut self, space: ixp_machine::MemSpace, addr: u32, val: u32) {
        let m = self.space_mut(space);
        if addr as usize >= m.len() {
            m.resize(addr as usize + 1, 0);
        }
        m[addr as usize] = val;
    }

    /// Grant the next received packet as of simulated cycle `now`.
    ///
    /// With an empty arrival schedule this is exactly the legacy model:
    /// pop `rx_queue` or report [`RxGrant::Empty`]. With timed traffic
    /// (`rx_arrivals`/`rx_backlog` non-empty) it first admits every
    /// arrival at or before `now` into the bounded backlog — tail-dropping
    /// into `rx_dropped` when `rx_capacity` is exceeded — then grants the
    /// backlog front, or reports when the next packet lands
    /// ([`RxGrant::WaitUntil`]), or that the stream is over. Admission
    /// and grants both happen at grant instants (the rx instruction's
    /// issue cycle), which is when the simulated receive hardware is
    /// consulted; both simulators drive it in canonical request order, so
    /// drops are deterministic.
    pub fn rx_grant(&mut self, now: u64) -> RxGrant {
        if self.rx_arrivals.is_empty() && self.rx_backlog.is_empty() {
            return match self.rx_queue.pop_front() {
                Some((len, addr)) => RxGrant::Packet { len, addr },
                None => RxGrant::Empty,
            };
        }
        while let Some(&(arrival, len, addr)) = self.rx_arrivals.front() {
            if arrival > now {
                break;
            }
            self.rx_arrivals.pop_front();
            if self.rx_capacity > 0 && self.rx_backlog.len() >= self.rx_capacity {
                self.rx_dropped += 1;
                self.rx_admissions.push(false);
            } else {
                self.rx_backlog.push_back((arrival, len, addr));
                self.rx_admissions.push(true);
            }
        }
        match self.rx_backlog.pop_front() {
            Some((arrival, len, addr)) => {
                self.rx_grants.push((addr, arrival, now));
                RxGrant::Packet { len, addr }
            }
            None => match self.rx_arrivals.front() {
                Some(&(arrival, _, _)) => RxGrant::WaitUntil(arrival),
                None => RxGrant::Empty,
            },
        }
    }

    fn space_mut(&mut self, space: ixp_machine::MemSpace) -> &mut Vec<u32> {
        match space {
            ixp_machine::MemSpace::Sram => &mut self.sram,
            ixp_machine::MemSpace::Sdram => &mut self.sdram,
            ixp_machine::MemSpace::Scratch => &mut self.scratch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_machine::MemSpace;

    #[test]
    fn memories_grow_on_demand() {
        let mut m = SimMemory::default();
        assert_eq!(m.read(MemSpace::Sram, 100), 0);
        m.write(MemSpace::Sdram, 5000, 42);
        assert_eq!(m.read(MemSpace::Sdram, 5000), 42);
    }

    #[test]
    fn empty_schedule_preserves_legacy_rx_semantics() {
        let mut m = SimMemory::default();
        m.rx_queue.push_back((64, 0));
        m.rx_queue.push_back((128, 16));
        assert_eq!(m.rx_grant(0), RxGrant::Packet { len: 64, addr: 0 });
        assert_eq!(m.rx_grant(900), RxGrant::Packet { len: 128, addr: 16 });
        assert_eq!(m.rx_grant(901), RxGrant::Empty);
        assert!(m.rx_grants.is_empty(), "legacy grants are not logged");
        assert_eq!(m.rx_dropped, 0);
    }

    #[test]
    fn timed_arrivals_wait_grant_and_exhaust() {
        let mut m = SimMemory::default();
        m.rx_arrivals.push_back((100, 64, 0));
        m.rx_arrivals.push_back((200, 64, 16));
        assert_eq!(m.rx_grant(50), RxGrant::WaitUntil(100));
        assert_eq!(m.rx_grant(100), RxGrant::Packet { len: 64, addr: 0 });
        assert_eq!(m.rx_grant(101), RxGrant::WaitUntil(200));
        assert_eq!(m.rx_grant(250), RxGrant::Packet { len: 64, addr: 16 });
        assert_eq!(m.rx_grant(251), RxGrant::Empty);
        // Grant log pairs each packet with its true arrival.
        assert_eq!(m.rx_grants, vec![(0, 100, 100), (16, 200, 250)]);
        assert_eq!(m.rx_dropped, 0);
    }

    #[test]
    fn full_receive_buffer_tail_drops_deterministically() {
        let mut m = SimMemory {
            rx_capacity: 2,
            ..Default::default()
        };
        for i in 0..5u32 {
            m.rx_arrivals.push_back((10, 64, i * 16));
        }
        // All five arrivals land before the first grant; two fit, three
        // are tail-dropped, and the survivors are the earliest arrivals.
        assert_eq!(m.rx_grant(20), RxGrant::Packet { len: 64, addr: 0 });
        assert_eq!(m.rx_dropped, 3);
        assert_eq!(m.rx_grant(21), RxGrant::Packet { len: 64, addr: 16 });
        assert_eq!(m.rx_grant(22), RxGrant::Empty);
        assert_eq!(m.rx_dropped, 3);
        // The admission log names exactly which arrivals survived.
        assert_eq!(m.rx_admissions, vec![true, true, false, false, false]);
    }

    #[test]
    fn draining_the_backlog_reopens_buffer_space() {
        let mut m = SimMemory {
            rx_capacity: 1,
            ..Default::default()
        };
        m.rx_arrivals.push_back((10, 64, 0));
        m.rx_arrivals.push_back((20, 64, 16));
        // Granting packet 0 at cycle 15 leaves the buffer empty before
        // packet 1 arrives, so nothing is dropped.
        assert_eq!(m.rx_grant(15), RxGrant::Packet { len: 64, addr: 0 });
        assert_eq!(m.rx_grant(25), RxGrant::Packet { len: 64, addr: 16 });
        assert_eq!(m.rx_dropped, 0);
    }
}
