//! Shared memory and I/O state of the simulated system.

use std::collections::{HashMap, VecDeque};

/// Memories, CSRs, and packet queues shared by all threads.
#[derive(Debug, Clone, Default)]
pub struct SimMemory {
    /// External SRAM (word addressed).
    pub sram: Vec<u32>,
    /// External SDRAM (word addressed).
    pub sdram: Vec<u32>,
    /// On-chip scratch.
    pub scratch: Vec<u32>,
    /// Control/status registers.
    pub csr: HashMap<u32, u32>,
    /// Pending received packets: `(length_bytes, sdram_word_address)`.
    pub rx_queue: VecDeque<(u32, u32)>,
    /// Transmitted packets with their completion cycle:
    /// `(sdram_word_address, length_bytes, cycle)`.
    pub tx_log: Vec<(u32, u32, u64)>,
}

impl SimMemory {
    /// Zeroed memories of the given word sizes.
    pub fn with_sizes(sram: usize, sdram: usize, scratch: usize) -> Self {
        SimMemory {
            sram: vec![0; sram],
            sdram: vec![0; sdram],
            scratch: vec![0; scratch],
            ..SimMemory::default()
        }
    }

    /// Read a word from a memory space, growing it on demand.
    pub fn read(&mut self, space: ixp_machine::MemSpace, addr: u32) -> u32 {
        let m = self.space_mut(space);
        if addr as usize >= m.len() {
            m.resize(addr as usize + 1, 0);
        }
        m[addr as usize]
    }

    /// Write a word, growing the memory on demand.
    pub fn write(&mut self, space: ixp_machine::MemSpace, addr: u32, val: u32) {
        let m = self.space_mut(space);
        if addr as usize >= m.len() {
            m.resize(addr as usize + 1, 0);
        }
        m[addr as usize] = val;
    }

    fn space_mut(&mut self, space: ixp_machine::MemSpace) -> &mut Vec<u32> {
        match space {
            ixp_machine::MemSpace::Sram => &mut self.sram,
            ixp_machine::MemSpace::Sdram => &mut self.sdram,
            ixp_machine::MemSpace::Scratch => &mut self.scratch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_machine::MemSpace;

    #[test]
    fn memories_grow_on_demand() {
        let mut m = SimMemory::default();
        assert_eq!(m.read(MemSpace::Sram, 100), 0);
        m.write(MemSpace::Sdram, 5000, 42);
        assert_eq!(m.read(MemSpace::Sdram, 5000), 42);
    }
}
