//! Micro-engine state shared by the single-engine simulator ([`crate::sim`])
//! and the chip-level simulator ([`crate::chip`]): the per-context register
//! file, context scheduling states, and address resolution.

use ixp_machine::{Addr, Bank, PhysReg};

/// One hardware context's register file (A/B general purpose plus the
/// four transfer banks).
#[derive(Debug, Clone)]
pub(crate) struct RegFile {
    a: [u32; 16],
    b: [u32; 16],
    l: [u32; 8],
    s: [u32; 8],
    ld: [u32; 8],
    sd: [u32; 8],
}

impl RegFile {
    pub(crate) fn new() -> Self {
        RegFile {
            a: [0; 16],
            b: [0; 16],
            l: [0; 8],
            s: [0; 8],
            ld: [0; 8],
            sd: [0; 8],
        }
    }

    pub(crate) fn read(&self, r: PhysReg) -> u32 {
        let i = r.num as usize;
        match r.bank {
            Bank::A => self.a[i],
            Bank::B => self.b[i],
            Bank::L => self.l[i],
            Bank::S => self.s[i],
            Bank::Ld => self.ld[i],
            Bank::Sd => self.sd[i],
        }
    }

    pub(crate) fn write(&mut self, r: PhysReg, v: u32) {
        let i = r.num as usize;
        match r.bank {
            Bank::A => self.a[i] = v,
            Bank::B => self.b[i] = v,
            Bank::L => self.l[i] = v,
            Bank::S => self.s[i] = v,
            Bank::Ld => self.ld[i] = v,
            Bank::Sd => self.sd[i] = v,
        }
    }
}

/// Scheduling state of one hardware context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ThreadState {
    /// Runnable now.
    Ready,
    /// Swapped out until the given cycle.
    Blocked(u64),
    /// Swapped out on a shared-resource request whose completion time the
    /// arbiter has not determined yet (chip-level simulation only).
    Pending,
    /// Reached `halt` or parked on an empty receive queue.
    Halted,
}

pub(crate) fn resolve_addr(regs: &RegFile, addr: &Addr<PhysReg>) -> u32 {
    match addr {
        Addr::Imm(a) => *a,
        Addr::Reg(r, o) => regs.read(*r).wrapping_add(*o),
    }
}

/// Earliest wake-up among blocked contexts, `None` when nothing is
/// sleeping on a timer (everything is ready, pending at the arbiter, or
/// halted). Shared by both simulators' idle-advance paths and by the
/// chip simulator's event-driven fast path.
pub(crate) fn earliest_wake<'a, I>(states: I) -> Option<u64>
where
    I: IntoIterator<Item = &'a ThreadState>,
{
    states
        .into_iter()
        .filter_map(|s| match s {
            ThreadState::Blocked(u) => Some(*u),
            _ => None,
        })
        .min()
}

/// Advance an idle engine clock to `target`, crediting the whole span as
/// idle time. The single canonical accounting for "no context can run":
/// both simulators and the fast-path skip must charge idle cycles
/// through here so the two books can never drift apart again.
pub(crate) fn advance_idle(cycle: &mut u64, idle_cycles: &mut u64, target: u64) {
    debug_assert!(target >= *cycle, "idle-advance going backwards");
    *idle_cycles += target - *cycle;
    *cycle = target;
}
