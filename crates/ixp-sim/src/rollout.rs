//! Resilient live updates: health-gated staged rollouts with automatic
//! rollback across the sharded topology.
//!
//! PR 9 gave the chip a hot-reload mechanism ([`simulate_chip_reload`]);
//! this module gives it a *policy*. The paper's compiler exists so a chip
//! can keep processing live traffic while its rules change — but nothing
//! about the mechanism survives a bad update. Here a rollout is treated
//! the way Merlin treats provisioning and Kugelblitz treats
//! configurations (PAPERS.md): a constraint-checked, measured step that
//! is only committed when observed health proves it out.
//!
//! The controller updates one chip at a time, in shard order. Each stage:
//!
//! 1. replays that shard's slice of the flow-level trace through
//!    [`simulate_chip_reload`] with the new image scheduled at a packet
//!    threshold — checksum-validated at the barrier and guarded by the
//!    no-transmit watchdog ([`ImageSwap::with_checksum`] /
//!    [`ImageSwap::with_watchdog`]);
//! 2. measures per-flow disruption through the swap: packets aborted in
//!    flight (granted but never transmitted), drop and latency deltas in
//!    pre/during/post windows around the reload stall;
//! 3. gates on health SLOs against the same shard's pre-rollout baseline
//!    (drop-rate delta and p99-latency factor). A violation triggers a
//!    deterministic automatic rollback — the stage is re-run with a
//!    scheduled swap *back* to the old image after the observation
//!    window, so the reported stage reflects what a real rollback does to
//!    traffic — and halts the rollout (remaining chips stay on the old
//!    image).
//!
//! Every decision is a pure function of the trace and the configuration,
//! so rollout reports are bit-identical at any host thread count — the
//! property the proptests in `tests/rollout.rs` pin down.

use crate::chip::{
    image_checksum, simulate_chip_reload, ImageSwap, SwapOutcome, SwapReport,
    CONTROL_STORE_RELOAD_CYCLES,
};
use crate::machine::SimMemory;
use crate::packets::FlowPacket;
use crate::topology::{
    grant_latencies, shard_memories, shard_of, simulate_topology, LatencySummary, TopologyConfig,
    TopologyError,
};
use ixp_machine::{Block, BlockId, Instr, PhysReg, Program, Terminator};
use std::collections::HashSet;

/// Per-stage health gates, expressed relative to the pre-rollout
/// baseline of the same shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSlo {
    /// Maximum allowed increase in drop rate (fraction of the shard's
    /// offered packets) over the baseline run.
    pub max_drop_delta: f64,
    /// Maximum allowed post-swap p99 latency as a multiple of the
    /// baseline p99.
    pub max_p99_factor: f64,
}

impl Default for HealthSlo {
    fn default() -> Self {
        HealthSlo {
            max_drop_delta: 0.05,
            max_p99_factor: 2.0,
        }
    }
}

/// Seeded swap-path fault schedule: which stages receive a corrupt image
/// (checksum mismatch at the barrier) and which receive a wedged image
/// (applies, then never transmits — the watchdog's case). The chip-level
/// [`ixp_machine::channel::ChannelFaults`] remain available through
/// [`TopologyConfig::overrides`] for bus-level fault campaigns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RolloutFaults {
    /// Stages whose delivered image is corrupted in transit.
    pub corrupt_stages: Vec<usize>,
    /// Stages whose new image wedges (runs but never forwards).
    pub wedge_stages: Vec<usize>,
}

impl RolloutFaults {
    fn corrupt(&self, stage: usize) -> bool {
        self.corrupt_stages.contains(&stage)
    }

    fn wedged(&self, stage: usize) -> bool {
        self.wedge_stages.contains(&stage)
    }
}

/// Parameters of a staged rollout.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// The rack being updated (chip count, per-chip config, overrides).
    pub topology: TopologyConfig,
    /// Per-shard transmitted-packet threshold at which the new image is
    /// swapped in.
    pub swap_after: u64,
    /// Observation window, in transmitted packets after the swap, that a
    /// rollback re-run lets the new image run before swapping back.
    pub observe_packets: u64,
    /// Control-store rewrite stall per swap (default
    /// [`CONTROL_STORE_RELOAD_CYCLES`]).
    pub stall: u64,
    /// No-transmit watchdog window armed on every stage's swap.
    pub watchdog: u64,
    /// Validate the image checksum at the swap barrier.
    pub verify_checksum: bool,
    /// Health gates for the commit decision.
    pub slo: HealthSlo,
    /// Injected swap-path faults.
    pub faults: RolloutFaults,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            topology: TopologyConfig::default(),
            swap_after: 64,
            observe_packets: 128,
            stall: CONTROL_STORE_RELOAD_CYCLES,
            watchdog: 1 << 16,
            verify_checksum: true,
            slo: HealthSlo::default(),
            faults: RolloutFaults::default(),
        }
    }
}

/// Why a stage was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackReason {
    /// The delivered image failed checksum validation at the barrier;
    /// the old image never stopped running.
    ChecksumRejected,
    /// The new image transmitted nothing inside its watchdog window (or
    /// bricked the chip); the sim reverted it at a barrier.
    WatchdogFired,
    /// The new image ran but its drop rate exceeded the baseline by more
    /// than [`HealthSlo::max_drop_delta`].
    DropSlo,
    /// The new image ran but its post-swap p99 latency exceeded
    /// baseline × [`HealthSlo::max_p99_factor`].
    LatencySlo,
}

/// Outcome of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// The new image is live on this chip.
    Committed,
    /// The chip is back on (or never left) the old image.
    RolledBack(RollbackReason),
}

/// Outcome of the whole rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutOutcome {
    /// Every chip committed the new image.
    Committed,
    /// The rollout halted at `stage`; that chip and every later one run
    /// the old image.
    RolledBack {
        /// Chip index at which the rollout halted.
        stage: usize,
        /// Why that stage failed its gate.
        reason: RollbackReason,
    },
}

/// Delivered/dropped counts and latency order statistics inside one
/// disruption window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowHealth {
    /// Packets transmitted in the window.
    pub delivered: u64,
    /// Packets tail-dropped in the window.
    pub dropped: u64,
    /// Latency order statistics of the window's delivered packets.
    pub latency: LatencySummary,
}

/// Per-flow disruption accounting of one stage, split around the swap:
/// `pre` is wire time before the swap barrier, `during` is the outage
/// window (swap barrier until the first packet out of the post-swap
/// image), `post` is after service resumed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DisruptionReport {
    /// Packets the shard's rx unit was offered (admitted + dropped).
    pub offered: u64,
    /// Packets the shard transmitted.
    pub delivered: u64,
    /// Packets tail-dropped at the full receive buffer.
    pub dropped: u64,
    /// Packets granted to a context but never transmitted — aborted in
    /// flight by the swap (control flow does not survive a reload).
    pub aborted_in_flight: u64,
    /// Distinct flows that lost at least one packet (drop or abort).
    pub disrupted_flows: u64,
    /// Health before the swap barrier.
    pub pre: WindowHealth,
    /// Health through the outage window.
    pub during: WindowHealth,
    /// Health after service resumed.
    pub post: WindowHealth,
    /// Swap barrier to first packet out of the image that ended up live
    /// (the new one, or the restored old one after a revert).
    pub update_cycles: Option<u64>,
}

/// One chip's stage of the rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Chip index.
    pub chip: usize,
    /// Commit/rollback decision for this chip.
    pub outcome: StageOutcome,
    /// What the scheduled swap did at the barrier.
    pub swap: SwapReport,
    /// Shard drop rate in the pre-rollout baseline run.
    pub baseline_drop_rate: f64,
    /// Shard p99 latency in the pre-rollout baseline run.
    pub baseline_p99: u64,
    /// Shard drop rate in this stage's run.
    pub candidate_drop_rate: f64,
    /// Post-swap p99 latency in this stage's run.
    pub candidate_p99: u64,
    /// Per-flow disruption through the swap.
    pub disruption: DisruptionReport,
    /// For rolled-back stages: cycles from the rollback taking effect to
    /// the first packet through the restored image.
    pub rollback_cycles: Option<u64>,
}

/// The full rollout record. Bit-identical at any host thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutReport {
    /// Overall outcome.
    pub outcome: RolloutOutcome,
    /// Per-stage reports, in the order stages ran. A halted rollout has
    /// fewer stages than chips (later chips never started).
    pub stages: Vec<StageReport>,
    /// Chips in the rack.
    pub chips: usize,
    /// Minimum number of chips serving traffic at full health at any
    /// instant of the rollout. Staged updates disrupt at most one chip
    /// at a time (`chips - 1`); a big-bang update's windows genuinely
    /// overlap on the simulation clock and this can reach 0.
    pub min_healthy_chips: usize,
}

/// An image that runs but never receives or transmits — the injected
/// "wedged update" the watchdog exists to catch.
fn wedge_image() -> Program<PhysReg> {
    Program {
        blocks: vec![Block {
            instrs: vec![Instr::CtxSwap],
            term: Terminator::Jump(BlockId(0)),
        }],
        entry: BlockId(0),
    }
}

/// Nearest-rank percentile of an unsorted latency sample.
fn p99_of(mut lat: Vec<u64>) -> u64 {
    lat.sort_unstable();
    LatencySummary::from_sorted(&lat).p99
}

/// The shard's slice of the global trace, in arrival order — index-aligned
/// with the shard memory's `rx_arrivals` / `rx_admissions`.
fn sub_trace(trace: &[FlowPacket], chips: usize, shard: usize) -> Vec<FlowPacket> {
    trace
        .iter()
        .filter(|p| shard_of(p.flow, chips) == shard)
        .copied()
        .collect()
}

/// Per-flow disruption accounting over a finished shard run. Joins the
/// admission log back to the shard trace (arrival order), and through the
/// FIFO backlog each admitted packet to its grant and latency.
fn disruption(sub: &[FlowPacket], mem: &SimMemory, swap: &SwapReport) -> DisruptionReport {
    let lats = grant_latencies(mem);
    let swap_cycle = swap.swap_cycle;
    let recover = swap.first_tx_cycle;
    // 0 = pre, 1 = during (outage), 2 = post.
    let classify = |c: u64| -> usize {
        match swap_cycle {
            None => 0,
            Some(sc) if c < sc => 0,
            Some(_) => match recover {
                Some(r) if c >= r => 2,
                _ => 1,
            },
        }
    };
    let mut win_lat: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut win_drop = [0u64; 3];
    let mut aborted = 0u64;
    let mut disrupted: HashSet<u64> = HashSet::new();
    let mut grant_j = 0usize;
    for (i, p) in sub.iter().enumerate() {
        match mem.rx_admissions.get(i) {
            // The run ended (cycle limit) before this arrival was ever
            // offered to the rx unit.
            None => break,
            Some(false) => {
                win_drop[classify(p.arrival)] += 1;
                disrupted.insert(p.flow);
            }
            Some(true) => {
                let lat = lats.get(grant_j).copied().flatten();
                grant_j += 1;
                match lat {
                    Some(l) => win_lat[classify(p.arrival + l)].push(l),
                    None => {
                        aborted += 1;
                        disrupted.insert(p.flow);
                    }
                }
            }
        }
    }
    let offered = mem.rx_admissions.len() as u64;
    let delivered = win_lat.iter().map(|w| w.len() as u64).sum();
    let window = |i: usize| -> WindowHealth {
        let mut lat = win_lat[i].clone();
        lat.sort_unstable();
        WindowHealth {
            delivered: lat.len() as u64,
            dropped: win_drop[i],
            latency: LatencySummary::from_sorted(&lat),
        }
    };
    DisruptionReport {
        offered,
        delivered,
        dropped: mem.rx_dropped,
        aborted_in_flight: aborted,
        disrupted_flows: disrupted.len() as u64,
        pre: window(0),
        during: window(1),
        post: window(2),
        update_cycles: swap.update_cycles(),
    }
}

/// Build the stage's scheduled swap, with faults injected per schedule.
fn stage_swap(new: &Program<PhysReg>, cfg: &RolloutConfig, stage: usize) -> ImageSwap {
    let (image, expected) = if cfg.faults.wedged(stage) {
        // A wedged delivery still checksums clean — the bug is in the
        // rules, not the transport — so only the watchdog can catch it.
        let img = wedge_image();
        let sum = image_checksum(&img);
        (img, sum)
    } else if cfg.faults.corrupt(stage) {
        // The delivered bits no longer match the manifest.
        (new.clone(), image_checksum(new) ^ 0x1)
    } else {
        (new.clone(), image_checksum(new))
    };
    let mut swap = ImageSwap {
        stall: cfg.stall,
        ..ImageSwap::new(cfg.swap_after, image)
    }
    .with_watchdog(cfg.watchdog);
    if cfg.verify_checksum {
        swap = swap.with_checksum(expected);
    }
    swap
}

/// Run one shard's reload and return `(mem, swap reports)`.
fn run_stage<F>(
    boot: &Program<PhysReg>,
    swaps: &[ImageSwap],
    cfg: &TopologyConfig,
    trace: &[FlowPacket],
    write_packet: &F,
    shard: usize,
) -> Result<(SimMemory, Vec<SwapReport>), TopologyError>
where
    F: Fn(&mut SimMemory, u32, u32),
{
    let mut mems = shard_memories(cfg, trace, write_packet);
    let mut mem = mems.swap_remove(shard);
    let (_, reports) = simulate_chip_reload(boot, swaps, &mut mem, cfg.chip_for(shard))
        .map_err(|error| TopologyError { chip: shard, error })?;
    Ok((mem, reports))
}

/// Health numbers the SLO gate consumes: whole-run drop rate and p99
/// latency over packets that *arrived* at or after `since` (service
/// resumption). Packets that arrived while the store was being rewritten
/// inevitably queue through the stall — that spike is reported in the
/// [`DisruptionReport`]'s `during` window, but gating on it would roll
/// back every update; the gate measures the new image's steady state.
fn stage_health(sub: &[FlowPacket], mem: &SimMemory, since: Option<u64>) -> (f64, u64) {
    let offered = (mem.rx_dropped + mem.rx_grants.len() as u64).max(1);
    let drop_rate = mem.rx_dropped as f64 / offered as f64;
    let lats = grant_latencies(mem);
    let cut = since.unwrap_or(0);
    let mut post: Vec<u64> = Vec::new();
    let mut grant_j = 0usize;
    for (i, p) in sub.iter().enumerate() {
        match mem.rx_admissions.get(i) {
            None => break,
            Some(false) => {}
            Some(true) => {
                if let Some(l) = lats.get(grant_j).copied().flatten() {
                    if p.arrival >= cut {
                        post.push(l);
                    }
                }
                grant_j += 1;
            }
        }
    }
    (drop_rate, p99_of(post))
}

/// Update every chip to `new`, one at a time in shard order, gating each
/// stage on measured health and rolling back (then halting the rollout)
/// on any violation. See the module docs for the full protocol.
///
/// # Errors
///
/// Returns a [`TopologyError`] if any simulation hits an architectural
/// error ([`ixp_machine::validate`] should have ruled these out).
pub fn staged_rollout<F>(
    old: &Program<PhysReg>,
    new: &Program<PhysReg>,
    cfg: &RolloutConfig,
    trace: &[FlowPacket],
    write_packet: F,
) -> Result<RolloutReport, TopologyError>
where
    F: Fn(&mut SimMemory, u32, u32),
{
    let chips = cfg.topology.chips.max(1);
    // Pre-rollout baseline: the whole rack on the old image.
    let baseline = simulate_topology(old, &cfg.topology, trace, &write_packet)?;

    let mut stages: Vec<StageReport> = Vec::new();
    let mut outcome = RolloutOutcome::Committed;
    let mut any_disruption = false;
    for chip in 0..chips {
        let sub = sub_trace(trace, chips, chip);
        let stage = run_one_stage(
            old,
            new,
            cfg,
            trace,
            &sub,
            &write_packet,
            chip,
            &baseline.chips[chip],
        )?;
        if stage.swap.swap_cycle.is_some() {
            any_disruption = true;
        }
        let halted = match stage.outcome {
            StageOutcome::Committed => false,
            StageOutcome::RolledBack(reason) => {
                outcome = RolloutOutcome::RolledBack {
                    stage: chip,
                    reason,
                };
                true
            }
        };
        stages.push(stage);
        if halted {
            break;
        }
    }
    // Stages run strictly one at a time, so at most one chip is ever
    // inside a disruption window.
    let min_healthy_chips = if any_disruption {
        chips.saturating_sub(1)
    } else {
        chips
    };
    Ok(RolloutReport {
        outcome,
        stages,
        chips,
        min_healthy_chips,
    })
}

/// Decide one stage: run, gate, and if the SLO gate fails, re-run with a
/// scheduled rollback so the report reflects what the rollback actually
/// does to traffic.
#[allow(clippy::too_many_arguments)]
fn run_one_stage<F>(
    old: &Program<PhysReg>,
    new: &Program<PhysReg>,
    cfg: &RolloutConfig,
    trace: &[FlowPacket],
    sub: &[FlowPacket],
    write_packet: &F,
    chip: usize,
    baseline: &crate::topology::ChipShard,
) -> Result<StageReport, TopologyError>
where
    F: Fn(&mut SimMemory, u32, u32),
{
    let swap = stage_swap(new, cfg, chip);
    let (mem, reports) = run_stage(old, &[swap], &cfg.topology, trace, write_packet, chip)?;
    let report = reports.into_iter().next().expect("one swap, one report");
    let baseline_drop_rate = baseline.dropped as f64 / baseline.offered.max(1) as f64;
    let baseline_p99 = baseline.latency.p99;

    let (candidate_drop_rate, candidate_p99) = stage_health(sub, &mem, report.first_tx_cycle);
    let slo_violation = match report.outcome {
        SwapOutcome::RejectedChecksum { .. } => {
            return Ok(StageReport {
                chip,
                outcome: StageOutcome::RolledBack(RollbackReason::ChecksumRejected),
                disruption: disruption(sub, &mem, &report),
                swap: report,
                baseline_drop_rate,
                baseline_p99,
                candidate_drop_rate,
                candidate_p99,
                // The old image never stopped: rollback is instantaneous.
                rollback_cycles: Some(0),
            });
        }
        SwapOutcome::RevertedWatchdog { at } => {
            let rollback_cycles = report.first_tx_cycle.map(|tx| tx - at);
            return Ok(StageReport {
                chip,
                outcome: StageOutcome::RolledBack(RollbackReason::WatchdogFired),
                disruption: disruption(sub, &mem, &report),
                swap: report,
                baseline_drop_rate,
                baseline_p99,
                candidate_drop_rate,
                candidate_p99,
                rollback_cycles,
            });
        }
        // An unreached threshold means the shard's traffic ended before
        // the update was due: nothing changed, commit trivially.
        SwapOutcome::NotReached => None,
        SwapOutcome::Applied => {
            if candidate_drop_rate - baseline_drop_rate > cfg.slo.max_drop_delta {
                Some(RollbackReason::DropSlo)
            } else if candidate_p99 as f64 > baseline_p99.max(1) as f64 * cfg.slo.max_p99_factor {
                Some(RollbackReason::LatencySlo)
            } else {
                None
            }
        }
    };

    let Some(reason) = slo_violation else {
        return Ok(StageReport {
            chip,
            outcome: StageOutcome::Committed,
            disruption: disruption(sub, &mem, &report),
            swap: report,
            baseline_drop_rate,
            baseline_p99,
            candidate_drop_rate,
            candidate_p99,
            rollback_cycles: None,
        });
    };

    // SLO violated: the honest stage record is a rollout + rollback, so
    // re-run with the swap back to the old image scheduled after the
    // observation window.
    let forward = stage_swap(new, cfg, chip);
    let back = ImageSwap {
        stall: cfg.stall,
        ..ImageSwap::new(cfg.swap_after + cfg.observe_packets, old.clone())
    }
    .with_watchdog(cfg.watchdog);
    let (mem2, reports2) = run_stage(
        old,
        &[forward, back],
        &cfg.topology,
        trace,
        write_packet,
        chip,
    )?;
    let mut it = reports2.into_iter();
    let fwd_report = it.next().expect("forward swap report");
    let back_report = it.next().expect("rollback swap report");
    let (rb_drop_rate, rb_p99) = stage_health(sub, &mem2, fwd_report.first_tx_cycle);
    Ok(StageReport {
        chip,
        outcome: StageOutcome::RolledBack(reason),
        disruption: disruption(sub, &mem2, &fwd_report),
        swap: fwd_report,
        baseline_drop_rate,
        baseline_p99,
        candidate_drop_rate: rb_drop_rate,
        candidate_p99: rb_p99,
        rollback_cycles: back_report.update_cycles(),
    })
}

/// Big-bang comparison run: every chip swaps to `new` at the same packet
/// threshold, with no health gating and no rollback. Used by the bench
/// harness to quantify what staging buys: the disruption windows of a
/// big-bang update genuinely overlap on the simulation clock, so
/// `min_healthy_chips` can reach 0.
///
/// # Errors
///
/// Returns a [`TopologyError`] as [`staged_rollout`] does.
pub fn big_bang_rollout<F>(
    old: &Program<PhysReg>,
    new: &Program<PhysReg>,
    cfg: &RolloutConfig,
    trace: &[FlowPacket],
    write_packet: F,
) -> Result<RolloutReport, TopologyError>
where
    F: Fn(&mut SimMemory, u32, u32),
{
    let chips = cfg.topology.chips.max(1);
    let mut stages: Vec<StageReport> = Vec::new();
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for chip in 0..chips {
        let sub = sub_trace(trace, chips, chip);
        let swap = stage_swap(new, cfg, chip);
        let (mem, reports) = run_stage(old, &[swap], &cfg.topology, trace, &write_packet, chip)?;
        let report = reports.into_iter().next().expect("one swap, one report");
        if let Some(sc) = report.swap_cycle {
            windows.push((sc, report.first_tx_cycle.unwrap_or(u64::MAX)));
        }
        let (drop_rate, p99) = stage_health(&sub, &mem, report.first_tx_cycle);
        let outcome = match report.outcome {
            SwapOutcome::RejectedChecksum { .. } => {
                StageOutcome::RolledBack(RollbackReason::ChecksumRejected)
            }
            SwapOutcome::RevertedWatchdog { .. } => {
                StageOutcome::RolledBack(RollbackReason::WatchdogFired)
            }
            _ => StageOutcome::Committed,
        };
        stages.push(StageReport {
            chip,
            outcome,
            disruption: disruption(&sub, &mem, &report),
            swap: report,
            baseline_drop_rate: 0.0,
            baseline_p99: 0,
            candidate_drop_rate: drop_rate,
            candidate_p99: p99,
            rollback_cycles: None,
        });
    }
    // Sweep the window endpoints for the deepest overlap: every chip
    // inside its [swap, recover) outage window at once is the big-bang
    // worst case.
    let mut max_overlap = 0usize;
    for &(start, _) in &windows {
        let depth = windows
            .iter()
            .filter(|&&(s, e)| s <= start && start < e)
            .count();
        max_overlap = max_overlap.max(depth);
    }
    let outcome = if stages
        .iter()
        .all(|s| matches!(s.outcome, StageOutcome::Committed))
    {
        RolloutOutcome::Committed
    } else {
        let (stage, reason) = stages
            .iter()
            .find_map(|s| match s.outcome {
                StageOutcome::RolledBack(r) => Some((s.chip, r)),
                StageOutcome::Committed => None,
            })
            .expect("some stage rolled back");
        RolloutOutcome::RolledBack { stage, reason }
    };
    Ok(RolloutReport {
        outcome,
        stages,
        chips,
        min_healthy_chips: chips - max_overlap,
    })
}

/// Convenience: the whole-rollout aggregate of a report's stage
/// disruptions, for benchmarking.
impl RolloutReport {
    /// Total packets aborted in flight across all stages.
    pub fn aborted_in_flight(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.disruption.aborted_in_flight)
            .sum()
    }

    /// Total distinct-flow disruption count across all stages (flows are
    /// shard-affine, so per-stage counts never double-count a flow).
    pub fn disrupted_flows(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.disruption.disrupted_flows)
            .sum()
    }

    /// Worst per-stage update latency (swap barrier to restored service).
    pub fn max_update_cycles(&self) -> u64 {
        self.stages
            .iter()
            .filter_map(|s| s.disruption.update_cycles)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::TrafficSpec;
    use crate::ChipConfig;
    use ixp_machine::{Addr, Bank, Block, MemSpace};

    fn r(bank: Bank, n: u8) -> PhysReg {
        PhysReg::new(bank, n)
    }

    fn forwarder(tag: u32) -> Program<PhysReg> {
        Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::RxPacket {
                        len_dst: r(Bank::A, 0),
                        addr_dst: r(Bank::A, 1),
                    },
                    Instr::MemRead {
                        space: MemSpace::Sdram,
                        addr: Addr::Reg(r(Bank::A, 1), 0),
                        dst: vec![r(Bank::Ld, 0)],
                    },
                    Instr::Imm {
                        dst: r(Bank::A, 2),
                        val: tag,
                    },
                    Instr::TxPacket {
                        addr: r(Bank::A, 1),
                        len: r(Bank::A, 0),
                    },
                ],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        }
    }

    fn trace(packets: usize) -> Vec<FlowPacket> {
        TrafficSpec {
            packets,
            flows: 64,
            mean_gap: 96,
            ..TrafficSpec::default()
        }
        .generate()
    }

    fn small_cfg(chips: usize) -> RolloutConfig {
        RolloutConfig {
            topology: TopologyConfig {
                chips,
                chip: ChipConfig {
                    engines: 2,
                    contexts: 2,
                    ..ChipConfig::default()
                },
                rx_capacity: 16,
                slots_per_class: 16,
                overrides: Vec::new(),
            },
            swap_after: 40,
            observe_packets: 60,
            stall: 512,
            watchdog: 20_000,
            ..RolloutConfig::default()
        }
    }

    fn wp(m: &mut SimMemory, a: u32, b: u32) {
        m.write(MemSpace::Sdram, a, b);
    }

    #[test]
    fn healthy_rollout_commits_every_stage() {
        let t = trace(600);
        let rep = staged_rollout(&forwarder(1), &forwarder(2), &small_cfg(3), &t, wp).unwrap();
        assert_eq!(rep.outcome, RolloutOutcome::Committed);
        assert_eq!(rep.stages.len(), 3);
        assert!(rep
            .stages
            .iter()
            .all(|s| s.outcome == StageOutcome::Committed));
        assert_eq!(rep.min_healthy_chips, 2, "staged: one chip down at a time");
        for s in &rep.stages {
            assert_eq!(s.swap.outcome, SwapOutcome::Applied);
            assert!(s.disruption.update_cycles.unwrap() >= 512);
            // Conservation inside every stage.
            assert_eq!(
                s.disruption.offered,
                s.disruption.delivered + s.disruption.dropped + s.disruption.aborted_in_flight
            );
        }
    }

    #[test]
    fn corrupt_image_halts_the_rollout_at_its_stage() {
        let t = trace(600);
        let mut cfg = small_cfg(3);
        cfg.faults.corrupt_stages = vec![1];
        let rep = staged_rollout(&forwarder(1), &forwarder(2), &cfg, &t, wp).unwrap();
        assert_eq!(
            rep.outcome,
            RolloutOutcome::RolledBack {
                stage: 1,
                reason: RollbackReason::ChecksumRejected
            }
        );
        assert_eq!(rep.stages.len(), 2, "chip 2 never started");
        assert_eq!(rep.stages[0].outcome, StageOutcome::Committed);
        assert_eq!(rep.stages[1].rollback_cycles, Some(0));
    }

    #[test]
    fn wedged_image_rolls_back_via_the_watchdog_and_recovers() {
        let t = trace(600);
        let mut cfg = small_cfg(2);
        cfg.faults.wedge_stages = vec![0];
        let rep = staged_rollout(&forwarder(1), &forwarder(2), &cfg, &t, wp).unwrap();
        let RolloutOutcome::RolledBack { stage, reason } = rep.outcome else {
            panic!("expected rollback, got {:?}", rep.outcome);
        };
        assert_eq!((stage, reason), (0, RollbackReason::WatchdogFired));
        let s = &rep.stages[0];
        assert!(s.rollback_cycles.is_some(), "service came back");
        // Rollback restored throughput: packets flowed after the revert.
        assert!(s.disruption.post.delivered > 0);
    }

    #[test]
    fn rollout_reports_are_bit_identical_across_host_threads() {
        let t = trace(500);
        let run = |host_threads: usize| {
            let mut cfg = small_cfg(2);
            cfg.topology.chip.host_threads = host_threads;
            cfg.faults.wedge_stages = vec![1];
            staged_rollout(&forwarder(1), &forwarder(2), &cfg, &t, wp).unwrap()
        };
        let a = run(1);
        assert_eq!(a, run(2));
        assert_eq!(a, run(4));
    }

    #[test]
    fn big_bang_overlaps_disruption_windows() {
        // A perfectly symmetric trace — one flow pinned to each shard,
        // identical arrival schedules — so every shard reaches its swap
        // threshold at the same wire time. (Generated traffic spreads
        // the thresholds by tens of thousands of cycles, which measures
        // trace skew, not the rollout policy.)
        let flows: Vec<u64> = (0..3)
            .map(|s| (0..).find(|&f| shard_of(f, 3) == s).unwrap())
            .collect();
        let mut t = Vec::new();
        for i in 0..200u64 {
            for &f in &flows {
                t.push(FlowPacket {
                    flow: f,
                    arrival: i * 200,
                    bytes: 64,
                });
            }
        }
        let mut cfg = small_cfg(3);
        // A long store rewrite makes the outage windows wide enough to
        // absorb residual jitter; the SLO gates are opened up so both
        // variants run to completion despite the stall-window drops.
        cfg.stall = 8_192;
        cfg.slo = HealthSlo {
            max_drop_delta: 1.0,
            max_p99_factor: 1_000.0,
        };
        let staged = staged_rollout(&forwarder(1), &forwarder(2), &cfg, &t, wp).unwrap();
        let bang = big_bang_rollout(&forwarder(1), &forwarder(2), &cfg, &t, wp).unwrap();
        assert_eq!(staged.outcome, RolloutOutcome::Committed);
        assert_eq!(bang.outcome, RolloutOutcome::Committed);
        assert_eq!(staged.min_healthy_chips, 2, "staged: one chip at a time");
        assert_eq!(
            bang.min_healthy_chips, 0,
            "a simultaneous update takes the whole rack through the outage"
        );
        assert!(
            bang.min_healthy_chips < staged.min_healthy_chips,
            "big-bang ({}) must be worse than staged ({})",
            bang.min_healthy_chips,
            staged.min_healthy_chips
        );
    }
}
