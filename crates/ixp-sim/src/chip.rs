//! Chip-level simulation: N micro-engines sharing the memory channels and
//! the packet receive/transmit queues.
//!
//! The paper's throughput numbers (§11) come from the whole IXP1200 — six
//! micro-engines, four hardware contexts each, all contending for one
//! SRAM, one SDRAM, and one scratch channel. This module scales the
//! single-engine model of [`crate::sim`] to that chip, with two design
//! goals:
//!
//! 1. **Deterministic at any host parallelism.** The simulation advances
//!    in fixed *cycle slices* (arbitration epochs). Within a slice every
//!    engine executes independently — it touches only its own contexts and
//!    registers, and *emits* shared-resource requests (memory references,
//!    packet rx/tx, test-and-set) instead of applying them. At the slice
//!    barrier a single arbiter resolves all requests in a canonical total
//!    order — `(issue_cycle, engine, context, sequence)` — against the
//!    [`ixp_machine::channel`] bus model and the shared [`SimMemory`].
//!    Because intra-slice work is engine-local and the barrier is serial,
//!    results are bit-identical whether the slice work runs on 1 or 16
//!    host threads.
//!
//! 2. **Faithful contention.** The arbiter charges the same burst/latency
//!    costs as the single-engine simulator; a context that issued a read
//!    sleeps until the arbitrated completion cycle, so adding engines
//!    beyond a channel's service rate stretches completion times exactly
//!    like the real bus would (the knee the throughput sweep looks for).
//!
//! The slice length defaults to half the cheapest blocking latency, so
//! the quantization of *barrier-resolved* wake-ups (a context can only
//! resume in the slice after its request completes) adds at most a few
//! cycles per reference; packet rx/tx synchronization (4 cycles on
//! hardware) is the only op quantized to a full slice. Writes are posted
//! through a store buffer (the engine does not stall for the grant), a
//! deliberate simplification the single-engine model does not share.
//! Cross-engine races on the same address within one slice resolve in the
//! canonical order above — deterministic, though not cycle-exact against
//! hardware.

use crate::engine::{advance_idle, earliest_wake, resolve_addr, RegFile, ThreadState};
use crate::machine::{RxGrant, SimMemory};
use crate::sim::{
    emit_result_obs, finish_result, EngineStats, SimError, SimMode, SimResult, StopReason,
};
use ixp_machine::channel::{Channel, ChannelFaults};
use ixp_machine::timing::{issue_cycles, read_latency, BRANCH_TAKEN_PENALTY, HASH_CYCLES};
use ixp_machine::units::hash_unit;
use ixp_machine::{AluSrc, Bank, BlockId, Instr, MemSpace, PhysReg, Program, Terminator};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Default [`ImageSwap::stall`]: modeled cycles every context is held
/// while the control store is rewritten. The IXP1200 cannot execute from
/// a store being written, so a reload costs roughly one write per
/// instruction word over the slow port; 4096 cycles covers a full 1K
/// store with margin and makes the swap cost visible in update-latency
/// measurements without dominating them.
pub const CONTROL_STORE_RELOAD_CYCLES: u64 = 4096;

/// A scheduled mid-run image swap: once the chip has transmitted
/// `after_packets` packets, the next arbitration barrier rewrites the
/// control store with `image` and restarts every context at its entry
/// block (registers persist — they are physical state — but control flow
/// does not survive a microcode reload). The swap happens *between*
/// packets by construction: it is applied at a barrier, after every
/// in-flight shared-resource request has been resolved.
#[derive(Debug, Clone)]
pub struct ImageSwap {
    /// Transmitted-packet threshold that triggers the swap.
    pub after_packets: u64,
    /// Cycles every context is stalled while the store is rewritten
    /// (default [`CONTROL_STORE_RELOAD_CYCLES`]).
    pub stall: u64,
    /// The compiled image to swap in.
    pub image: Program<PhysReg>,
    /// Expected [`image_checksum`] of the delivered image. When set, the
    /// barrier validates the image before rewriting the control store; a
    /// mismatch (the image was corrupted in transit) rejects the swap and
    /// the running image keeps forwarding
    /// ([`SwapOutcome::RejectedChecksum`]).
    pub expected_checksum: Option<u64>,
    /// Watchdog window in cycles: if the new image transmits nothing
    /// within `stall + watchdog` cycles of the swap barrier — or halts
    /// every context without transmitting — the previous image is
    /// restored ([`SwapOutcome::RevertedWatchdog`]). A watchdog-armed
    /// swap must therefore have traffic left to forward, or the revert
    /// is a (deterministic) false positive.
    pub watchdog: Option<u64>,
}

impl ImageSwap {
    /// A swap with the default reload stall and no fault checks.
    pub fn new(after_packets: u64, image: Program<PhysReg>) -> Self {
        ImageSwap {
            after_packets,
            stall: CONTROL_STORE_RELOAD_CYCLES,
            image,
            expected_checksum: None,
            watchdog: None,
        }
    }

    /// Arm barrier-time checksum validation against `expected`.
    #[must_use]
    pub fn with_checksum(mut self, expected: u64) -> Self {
        self.expected_checksum = Some(expected);
        self
    }

    /// Arm the no-transmit watchdog with the given window (cycles after
    /// the reload stall ends).
    #[must_use]
    pub fn with_watchdog(mut self, window: u64) -> Self {
        self.watchdog = Some(window);
        self
    }
}

/// Content checksum of a compiled image — FNV-1a over the program's
/// canonical rendering. Deterministic for identical programs, and any
/// single-instruction tamper changes it; the stand-in for the microcode
/// manifest hash a real update channel would carry.
pub fn image_checksum(prog: &Program<PhysReg>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{prog:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How one [`ImageSwap`] resolved. Every variant is decided on the
/// serial arbitration path, so outcomes are bit-deterministic at any
/// host thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// The run ended before the packet threshold was reached.
    NotReached,
    /// The new image took effect and was never reverted.
    Applied,
    /// Checksum validation failed at the barrier: the delivered image
    /// did not match its manifest, the swap was discarded, and the
    /// running image kept forwarding.
    RejectedChecksum {
        /// Barrier cycle at which the corrupt image was rejected.
        at: u64,
    },
    /// The new image was applied but transmitted nothing within its
    /// watchdog window (or halted the whole chip); the previous image
    /// was restored.
    RevertedWatchdog {
        /// Barrier cycle at which the revert took effect.
        at: u64,
    },
}

/// What one [`ImageSwap`] actually did, in modeled cycles. All fields
/// are bit-deterministic at any host thread count (the swap decision and
/// application run on the serial arbitration path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapReport {
    /// The triggering threshold, echoed.
    pub after_packets: u64,
    /// Barrier cycle at which the new image took effect, or `None` if
    /// the run ended before the threshold was reached.
    pub swap_cycle: Option<u64>,
    /// Issue cycle of the first packet transmitted *by the new image*
    /// (the first `tx_log` entry appended after the swap barrier), or
    /// `None` if none was. For a watchdog-reverted swap this is instead
    /// the first packet out after the rollback — the recovery anchor.
    pub first_tx_cycle: Option<u64>,
    /// How the swap resolved (applied, rejected, reverted, not reached).
    pub outcome: SwapOutcome,
}

impl SwapReport {
    /// Modeled swap-to-first-packet latency: how long the data plane ran
    /// degraded (stalled, then refilling) before the new rules forwarded
    /// their first packet.
    pub fn update_cycles(&self) -> Option<u64> {
        Some(self.first_tx_cycle? - self.swap_cycle?)
    }
}

/// Chip-level simulation parameters.
#[derive(Debug, Clone)]
pub struct ChipConfig {
    /// Micro-engines on the chip (IXP1200: 6).
    pub engines: usize,
    /// Hardware contexts per engine (IXP1200: 4).
    pub contexts: usize,
    /// Cycle budget. A run that exhausts it stops with
    /// [`StopReason::CycleLimit`] and partial statistics.
    pub max_cycles: u64,
    /// Arbitration epoch length in modeled cycles. Smaller slices resolve
    /// shared-resource requests at a finer grain (less wake-up
    /// quantization) at more host synchronization cost. The default (8)
    /// is safely below every blocking memory latency.
    pub slice: u64,
    /// Host worker threads driving the engines. `0` means automatic
    /// (min of host parallelism and engine count); any value produces
    /// bit-identical results.
    pub host_threads: usize,
    /// Scheduler mode. [`SimMode::FastPath`] (the default) skips over
    /// arbitration epochs in which no context can execute — jumping
    /// simulated time to the earliest wake-up, rounded down to an epoch
    /// boundary — and is bit-identical to [`SimMode::CycleSlice`], which
    /// grinds every epoch and serves as the differential oracle.
    pub mode: SimMode,
    /// Deterministic channel fault injection (stalls and dropped/retried
    /// references), applied to the shared chip-level channels. Default:
    /// no faults.
    pub faults: ChannelFaults,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            engines: 6,
            contexts: 4,
            max_cycles: 500_000_000,
            slice: 8,
            host_threads: 0,
            mode: SimMode::default(),
            faults: ChannelFaults::default(),
        }
    }
}

impl ChipConfig {
    /// The host worker-thread count a run will actually use.
    pub fn effective_host_threads(&self) -> usize {
        if self.host_threads >= 1 {
            return self.host_threads;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.engines.max(1))
    }
}

/// A shared-resource request emitted by an engine during a slice and
/// resolved by the arbiter at the barrier.
#[derive(Debug)]
struct Request {
    issue: u64,
    engine: usize,
    ctx: usize,
    seq: u64,
    kind: ReqKind,
}

#[derive(Debug)]
enum ReqKind {
    Read {
        space: MemSpace,
        base: u32,
        dst: Vec<PhysReg>,
    },
    Write {
        space: MemSpace,
        base: u32,
        vals: Vec<u32>,
    },
    TestAndSet {
        addr: u32,
        val: u32,
        dst: PhysReg,
    },
    CsrRead {
        csr: u32,
        dst: PhysReg,
    },
    CsrWrite {
        csr: u32,
        val: u32,
    },
    Rx {
        len_dst: PhysReg,
        addr_dst: PhysReg,
    },
    Tx {
        addr: u32,
        len: u32,
    },
}

struct Ctx {
    regs: RegFile,
    block: BlockId,
    pc: usize,
    state: ThreadState,
}

/// One micro-engine's private state. During a slice only its owning host
/// worker touches it; between barriers only the arbiter does.
struct Engine {
    id: usize,
    cycle: u64,
    ctxs: Vec<Ctx>,
    current: usize,
    seq: u64,
    requests: Vec<Request>,
    stats: EngineStats,
    error: Option<SimError>,
}

impl Engine {
    fn new(id: usize, prog: &Program<PhysReg>, contexts: usize) -> Self {
        Engine {
            id,
            cycle: 0,
            ctxs: (0..contexts.max(1))
                .map(|_| Ctx {
                    regs: RegFile::new(),
                    block: prog.entry,
                    pc: 0,
                    state: ThreadState::Ready,
                })
                .collect(),
            current: 0,
            seq: 0,
            requests: Vec::new(),
            stats: EngineStats::new(id),
            error: None,
        }
    }

    fn all_halted(&self) -> bool {
        self.ctxs.iter().all(|c| c.state == ThreadState::Halted)
    }

    fn push(&mut self, issue: u64, ctx: usize, kind: ReqKind) {
        let seq = self.seq;
        self.seq += 1;
        self.requests.push(Request {
            issue,
            engine: self.id,
            ctx,
            seq,
            kind,
        });
    }
}

/// Execute one engine up to `slice_end`. Pure engine-local: reads the
/// program, mutates only this engine, and queues shared-resource requests
/// for the barrier arbiter.
fn run_slice(e: &mut Engine, prog: &Program<PhysReg>, slice_end: u64) {
    if e.error.is_some() || e.all_halted() {
        return;
    }
    loop {
        if e.cycle >= slice_end {
            return;
        }
        // Pick the next runnable context (round robin from `current`).
        let mut picked = None;
        for off in 0..e.ctxs.len() {
            let i = (e.current + off) % e.ctxs.len();
            match e.ctxs[i].state {
                ThreadState::Ready => {
                    picked = Some(i);
                    break;
                }
                ThreadState::Blocked(until) if until <= e.cycle => {
                    e.ctxs[i].state = ThreadState::Ready;
                    picked = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(ti) = picked else {
            if e.all_halted() {
                if e.stats.halt_cycle == 0 {
                    e.stats.halt_cycle = e.cycle;
                }
                return;
            }
            // Runnable later this slice? Advance to the earliest wake-up;
            // otherwise idle out the slice (wake-ups beyond it, or
            // requests pending at the barrier).
            match earliest_wake(e.ctxs.iter().map(|c| &c.state)) {
                Some(u) if u < slice_end => {
                    let target = u.max(e.cycle + 1);
                    advance_idle(&mut e.cycle, &mut e.stats.idle_cycles, target);
                    continue;
                }
                _ => {
                    advance_idle(&mut e.cycle, &mut e.stats.idle_cycles, slice_end);
                    return;
                }
            }
        };
        e.current = ti;
        let block = &prog.blocks[e.ctxs[ti].block.index()];

        if e.ctxs[ti].pc < block.instrs.len() {
            let ins = &block.instrs[e.ctxs[ti].pc];
            e.stats.instructions += 1;
            e.cycle += issue_cycles(ins);
            let cycle = e.cycle;
            let global_ctx = (e.id * e.ctxs.len() + ti) as u32;
            let t = &mut e.ctxs[ti];
            match ins {
                Instr::Alu { op, dst, a, b } => {
                    let av = t.regs.read(*a);
                    let bv = match b {
                        AluSrc::Reg(r) => t.regs.read(*r),
                        AluSrc::Imm(v) => *v,
                    };
                    t.regs.write(*dst, op.eval(av, bv));
                }
                Instr::Imm { dst, val } => t.regs.write(*dst, *val),
                Instr::Move { dst, src } => {
                    let v = t.regs.read(*src);
                    t.regs.write(*dst, v);
                }
                Instr::Clone { .. } => {
                    // Validated programs never contain clones; treat as nop.
                }
                Instr::MemRead { space, addr, dst } => {
                    let base = resolve_addr(&t.regs, addr);
                    t.state = ThreadState::Pending;
                    t.pc += 1;
                    e.stats.swap_outs += 1;
                    let (space, dst) = (*space, dst.clone());
                    e.push(cycle, ti, ReqKind::Read { space, base, dst });
                    continue;
                }
                Instr::MemWrite { space, addr, src } => {
                    let base = resolve_addr(&t.regs, addr);
                    let vals: Vec<u32> = src.iter().map(|s| t.regs.read(*s)).collect();
                    // Posted through the store buffer: the context keeps
                    // running; the bus occupancy is charged at the barrier.
                    let space = *space;
                    t.pc += 1;
                    e.push(cycle, ti, ReqKind::Write { space, base, vals });
                    continue;
                }
                Instr::Hash { dst, src } => {
                    let v = hash_unit(t.regs.read(PhysReg::new(Bank::S, src.num)));
                    let _ = src;
                    t.regs.write(*dst, v);
                    t.state = ThreadState::Blocked(cycle + HASH_CYCLES);
                    e.stats.swap_outs += 1;
                    t.pc += 1;
                    continue;
                }
                Instr::TestAndSet { dst, src, addr } => {
                    let a = resolve_addr(&t.regs, addr);
                    let v = t.regs.read(*src);
                    t.state = ThreadState::Pending;
                    t.pc += 1;
                    e.stats.swap_outs += 1;
                    let dst = *dst;
                    e.push(
                        cycle,
                        ti,
                        ReqKind::TestAndSet {
                            addr: a,
                            val: v,
                            dst,
                        },
                    );
                    continue;
                }
                Instr::CsrRead { dst, csr } => {
                    if *csr == ixp_machine::CSR_CTX {
                        // The context-number CSR is engine-local state:
                        // it resolves in the issue cycle, no barrier trip.
                        t.regs.write(*dst, global_ctx);
                    } else {
                        // CSRs are chip-shared: reads resolve at the barrier.
                        t.state = ThreadState::Pending;
                        t.pc += 1;
                        e.stats.swap_outs += 1;
                        let (csr, dst) = (*csr, *dst);
                        e.push(cycle, ti, ReqKind::CsrRead { csr, dst });
                        continue;
                    }
                }
                Instr::CsrWrite { src, csr } => {
                    let v = t.regs.read(*src);
                    let csr = *csr;
                    t.pc += 1;
                    e.push(cycle, ti, ReqKind::CsrWrite { csr, val: v });
                    continue;
                }
                Instr::RxPacket { len_dst, addr_dst } => {
                    // The receive queue is chip-shared: the scheduler
                    // grants packets in canonical order at the barrier.
                    t.state = ThreadState::Pending;
                    t.pc += 1;
                    e.stats.swap_outs += 1;
                    let (len_dst, addr_dst) = (*len_dst, *addr_dst);
                    e.push(cycle, ti, ReqKind::Rx { len_dst, addr_dst });
                    continue;
                }
                Instr::TxPacket { addr, len } => {
                    let a = t.regs.read(*addr);
                    let l = t.regs.read(*len);
                    t.state = ThreadState::Blocked(cycle + 4);
                    t.pc += 1;
                    e.stats.swap_outs += 1;
                    e.stats.packets += 1;
                    e.stats.bytes += l as u64;
                    e.push(cycle, ti, ReqKind::Tx { addr: a, len: l });
                    continue;
                }
                Instr::CtxSwap => {
                    t.pc += 1;
                    t.state = ThreadState::Blocked(cycle + 1);
                    e.stats.swap_outs += 1;
                    continue;
                }
            }
            e.ctxs[ti].pc += 1;
        } else {
            // Terminator.
            e.stats.instructions += 1;
            e.cycle += 1;
            let t = &mut e.ctxs[ti];
            match &block.term {
                Terminator::Halt => {
                    t.state = ThreadState::Halted;
                }
                Terminator::Jump(target) => {
                    if target.index() >= prog.blocks.len() {
                        e.error = Some(SimError::BadTarget(*target));
                        return;
                    }
                    t.block = *target;
                    t.pc = 0;
                    e.cycle += BRANCH_TAKEN_PENALTY;
                }
                Terminator::Branch {
                    cond,
                    a,
                    b,
                    if_true,
                    if_false,
                } => {
                    let av = t.regs.read(*a);
                    let bv = match b {
                        AluSrc::Reg(r) => t.regs.read(*r),
                        AluSrc::Imm(v) => *v,
                    };
                    let taken = cond.eval(av, bv);
                    let target = if taken { *if_true } else { *if_false };
                    if target.index() >= prog.blocks.len() {
                        e.error = Some(SimError::BadTarget(target));
                        return;
                    }
                    if taken {
                        e.cycle += BRANCH_TAKEN_PENALTY;
                    }
                    t.block = target;
                    t.pc = 0;
                }
            }
        }
    }
}

/// The serial barrier phase: resolve every request emitted this slice in
/// the canonical order against the shared memory, channels, and packet
/// queues. Only the coordinator runs this (workers are parked at the
/// barrier), so every engine lock is uncontended.
fn resolve_requests(
    engines: &[Mutex<Engine>],
    mem: &mut SimMemory,
    channels: &mut [Channel; 3],
    mem_refs: &mut HashMap<MemSpace, (u64, u64)>,
) {
    let mut all: Vec<Request> = Vec::new();
    for e in engines.iter() {
        all.append(&mut e.lock().unwrap().requests);
    }
    all.sort_by_key(|r| (r.issue, r.engine, r.ctx, r.seq));
    for ch in channels.iter_mut() {
        let depth = all
            .iter()
            .filter(|r| match &r.kind {
                ReqKind::Read { space, .. } | ReqKind::Write { space, .. } => {
                    Channel::index(*space) == Channel::index(ch.stats.space)
                }
                _ => false,
            })
            .count();
        ch.note_queue_depth(depth);
    }
    for req in all {
        let mut eng_guard = engines[req.engine].lock().unwrap();
        let eng = &mut *eng_guard;
        match req.kind {
            ReqKind::Read { space, base, dst } => {
                let (_, done) = channels[Channel::index(space)].service_read(req.issue, dst.len());
                let ctx = &mut eng.ctxs[req.ctx];
                for (i, d) in dst.iter().enumerate() {
                    let v = mem.read(space, base + i as u32);
                    ctx.regs.write(*d, v);
                }
                ctx.state = ThreadState::Blocked(done);
                mem_refs.entry(space).or_insert((0, 0)).0 += 1;
            }
            ReqKind::Write { space, base, vals } => {
                channels[Channel::index(space)].service_write(req.issue, vals.len());
                for (i, v) in vals.iter().enumerate() {
                    mem.write(space, base + i as u32, *v);
                }
                mem_refs.entry(space).or_insert((0, 0)).1 += 1;
            }
            ReqKind::TestAndSet { addr, val, dst } => {
                let old = mem.read(MemSpace::Sram, addr);
                mem.write(MemSpace::Sram, addr, old | val);
                let ctx = &mut eng.ctxs[req.ctx];
                ctx.regs.write(dst, old);
                ctx.state = ThreadState::Blocked(req.issue + read_latency(MemSpace::Sram));
                let e = mem_refs.entry(MemSpace::Sram).or_insert((0, 0));
                e.0 += 1;
                e.1 += 1;
            }
            ReqKind::CsrRead { csr, dst } => {
                let v = *mem.csr.get(&csr).unwrap_or(&0);
                let ctx = &mut eng.ctxs[req.ctx];
                ctx.regs.write(dst, v);
                ctx.state = ThreadState::Blocked(req.issue);
            }
            ReqKind::CsrWrite { csr, val } => {
                mem.csr.insert(csr, val);
            }
            ReqKind::Rx { len_dst, addr_dst } => {
                let ctx = &mut eng.ctxs[req.ctx];
                match mem.rx_grant(req.issue) {
                    RxGrant::Packet { len, addr } => {
                        ctx.regs.write(len_dst, len);
                        ctx.regs.write(addr_dst, addr);
                        ctx.state = ThreadState::Blocked(req.issue + 4);
                    }
                    RxGrant::WaitUntil(arrival) => {
                        // Timed traffic and nothing has arrived yet: the
                        // context re-executes the rx instruction once the
                        // next scheduled packet lands (the retry is billed
                        // as another issue — polling the ring isn't free).
                        ctx.pc -= 1;
                        ctx.state = ThreadState::Blocked(arrival);
                    }
                    RxGrant::Empty => {
                        ctx.state = ThreadState::Halted;
                    }
                }
            }
            ReqKind::Tx { addr, len } => {
                mem.tx_log.push((addr, len, req.issue));
            }
        }
    }
}

/// Decide where the next arbitration epoch starts, given the barrier at
/// `slice_end` just resolved. Returns `(next_t, skipped_cycles)`.
///
/// [`SimMode::CycleSlice`] always answers `slice_end`. [`SimMode::FastPath`]
/// computes the earliest cycle `A` at which *any* context can execute
/// again — `max(engine.cycle, wake)` for blocked contexts, `engine.cycle`
/// for ready ones — and jumps to the epoch boundary at or below `A`. Every
/// skipped epoch is provably dead: any activity before `A` would
/// contradict `A`'s minimality, engines idling out a dead epoch charge
/// exactly `slice` idle cycles (credited here in one step through
/// [`advance_idle`]), a dead barrier resolves zero requests, and
/// `note_queue_depth(0)` is a no-op. Channels hold no hidden events to
/// skip over: completions were folded into `Blocked(done)` wake-ups when
/// the request was serviced, and a busy bus only delays *future* requests
/// via the `free_at.max(issue)` fold —
/// [`ixp_machine::channel::Channel::next_event`] exposes that bus-free
/// horizon, and the debug assertion below pins down that skipping past it
/// leaves the channel's event view unchanged.
fn next_epoch(
    engines: &[Mutex<Engine>],
    channels: &[Channel; 3],
    mode: SimMode,
    slice_end: u64,
    slice: u64,
    max_cycles: u64,
    horizon: Option<u64>,
) -> (u64, u64) {
    if mode == SimMode::CycleSlice {
        return (slice_end, 0);
    }
    let mut earliest: Option<u64> = None;
    for m in engines {
        let e = m.lock().unwrap();
        if e.all_halted() {
            continue;
        }
        debug_assert!(
            e.requests.is_empty(),
            "barrier left unresolved requests behind"
        );
        for c in &e.ctxs {
            let w = match c.state {
                ThreadState::Ready => e.cycle,
                ThreadState::Blocked(u) => u.max(e.cycle),
                // A context still pending at the arbiter means the epoch
                // is live; never skip over it. (resolve_requests clears
                // every Pending, so this is defensive.)
                ThreadState::Pending => return (slice_end, 0),
                ThreadState::Halted => continue,
            };
            earliest = Some(earliest.map_or(w, |a| a.min(w)));
        }
    }
    let Some(a) = earliest else {
        return (slice_end, 0);
    };
    let mut target = (slice_end + (a.max(slice_end) - slice_end) / slice * slice).min(max_cycles);
    if let Some(d) = horizon {
        // An armed watchdog's revert decision happens at a barrier: clamp
        // the jump so the next barrier lands on the first epoch boundary
        // at or past the deadline, exactly where the cycle-slice oracle
        // would take it.
        let k = d.saturating_sub(slice_end).div_ceil(slice).max(1);
        target = target.min(slice_end + (k - 1) * slice);
    }
    if target <= slice_end {
        return (slice_end, 0);
    }
    if cfg!(debug_assertions) {
        for ch in channels.iter() {
            debug_assert_eq!(
                ch.next_event(target),
                ch.next_event(slice_end).filter(|&h| h > target),
                "skipping must not change a channel's bus-free horizon"
            );
        }
    }
    for m in engines {
        let mut e = m.lock().unwrap();
        if e.all_halted() || e.cycle >= target {
            continue;
        }
        let Engine { cycle, stats, .. } = &mut *e;
        advance_idle(cycle, &mut stats.idle_cycles, target);
    }
    (target, target - slice_end)
}

/// Run `prog` on every engine of the simulated chip.
///
/// All engines execute the same program (the paper's deployment model:
/// one pipeline stage per chip), pulling packets from the shared receive
/// queue. Results are bit-identical for any `host_threads`.
///
/// # Errors
///
/// Returns [`SimError`] on architectural violations (which
/// [`ixp_machine::validate`] should have ruled out).
pub fn simulate_chip(
    prog: &Program<PhysReg>,
    mem: &mut SimMemory,
    cfg: &ChipConfig,
) -> Result<SimResult, SimError> {
    simulate_chip_with(prog, mem, cfg, &nova_obs::Obs::noop())
}

/// Modeled cycles between two `sim.channel.<space>.occupancy` samples
/// when an observer is installed. Coarse enough that sampling stays off
/// the per-slice fast path's critical cost (one comparison per epoch),
/// fine enough to show saturation ramps over a 64-packet run.
const OCC_SAMPLE_CYCLES: u64 = 16_384;

/// Windowed channel-occupancy sampling, driven by the (serial)
/// arbitration phase of the chip loop.
struct OccSampler {
    next: u64,
    last_cycle: u64,
    last_busy: [u64; 3],
}

impl OccSampler {
    fn new() -> Self {
        OccSampler {
            next: OCC_SAMPLE_CYCLES,
            last_cycle: 0,
            last_busy: [0; 3],
        }
    }

    fn maybe_sample(&mut self, obs: &nova_obs::Obs, t: u64, channels: &[Channel; 3]) {
        if t < self.next {
            return;
        }
        let window = t - self.last_cycle;
        if window > 0 {
            for (i, ch) in channels.iter().enumerate() {
                let busy = ch.stats.busy_cycles;
                let frac = (busy - self.last_busy[i]) as f64 / window as f64;
                let space = format!("{:?}", ch.stats.space).to_lowercase();
                obs.sample(&format!("sim.channel.{space}.occupancy"), frac);
                self.last_busy[i] = busy;
            }
        }
        self.last_cycle = t;
        self.next = t + OCC_SAMPLE_CYCLES;
    }
}

/// [`simulate_chip`] with structured telemetry: the run executes under a
/// `phase.sim` span, the arbiter samples windowed per-channel occupancy
/// every [`OCC_SAMPLE_CYCLES`] modeled cycles, and the finished run
/// publishes the same `sim.channel.*` / `sim.engine.*` summary as the
/// single-engine simulator. Sampling only happens on the serial
/// arbitration path, so determinism is unaffected.
///
/// # Errors
///
/// Returns [`SimError`] on architectural violations, as [`simulate_chip`].
pub fn simulate_chip_with(
    prog: &Program<PhysReg>,
    mem: &mut SimMemory,
    cfg: &ChipConfig,
    obs: &nova_obs::Obs,
) -> Result<SimResult, SimError> {
    simulate_chip_reload_with(prog, &[], mem, cfg, obs).map(|(res, _)| res)
}

/// [`simulate_chip`] with scheduled mid-run image swaps — the hot-reload
/// hook. The chip boots running `prog`; each [`ImageSwap`] replaces the
/// control store at the first arbitration barrier after its
/// transmitted-packet threshold, and the returned [`SwapReport`]s say
/// when each swap landed and when the first packet went out through the
/// new rules. With an empty `swaps` slice this is exactly
/// [`simulate_chip`].
///
/// # Errors
///
/// Returns [`SimError`] on architectural violations in any image.
pub fn simulate_chip_reload(
    prog: &Program<PhysReg>,
    swaps: &[ImageSwap],
    mem: &mut SimMemory,
    cfg: &ChipConfig,
) -> Result<(SimResult, Vec<SwapReport>), SimError> {
    simulate_chip_reload_with(prog, swaps, mem, cfg, &nova_obs::Obs::noop())
}

/// [`simulate_chip_reload`] with structured telemetry (see
/// [`simulate_chip_with`]); each applied swap lands a
/// `sim.reload.swaps` counter.
///
/// # Errors
///
/// Returns [`SimError`] on architectural violations, as
/// [`simulate_chip_reload`].
pub fn simulate_chip_reload_with(
    prog: &Program<PhysReg>,
    swaps: &[ImageSwap],
    mem: &mut SimMemory,
    cfg: &ChipConfig,
    obs: &nova_obs::Obs,
) -> Result<(SimResult, Vec<SwapReport>), SimError> {
    let span = obs.span("phase.sim");
    let (res, reports) = simulate_chip_inner(prog, swaps, mem, cfg, obs)?;
    span.end();
    emit_result_obs(obs, &res);
    Ok((res, reports))
}

/// Rewrite the control store: every context of every engine restarts at
/// `image`'s entry block after `stall` reload cycles. Registers persist
/// (physical state); in-flight requests were already resolved by the
/// barrier that triggered the swap. Only the coordinator calls this, so
/// the locks are uncontended.
fn apply_swap(engines: &[Mutex<Engine>], image: &Program<PhysReg>, at: u64, stall: u64) {
    for m in engines {
        let mut e = m.lock().unwrap();
        e.current = 0;
        // A restarted engine is no longer halted: forget any halt cycle
        // recorded before the swap so post-reload execution is counted.
        e.stats.halt_cycle = 0;
        for c in e.ctxs.iter_mut() {
            c.block = image.entry;
            c.pc = 0;
            c.state = ThreadState::Blocked(at + stall);
        }
    }
}

/// What one fired swap did, recorded at the barrier that decided it.
/// `events[i]` always describes `swaps[i]`: swaps are consumed in order
/// and every consumed swap pushes exactly one event.
#[derive(Debug, Clone, Copy)]
enum SwapEvent {
    Applied {
        swap_cycle: u64,
        tx_at: usize,
    },
    Rejected {
        at: u64,
    },
    Reverted {
        swap_cycle: u64,
        at: u64,
        tx_at: usize,
    },
}

/// An armed no-transmit watchdog guarding the most recently applied swap.
#[derive(Debug, Clone, Copy)]
struct Watchdog {
    /// Index of the guarded swap (into `SwapDriver::events`).
    swap: usize,
    /// Barrier cycle at or after which the revert fires.
    deadline: u64,
    /// `tx_log` length at the swap: any growth past it means the new
    /// image forwarded a packet and the swap is committed.
    tx_at: usize,
    /// Image index to restore on revert.
    restore: usize,
    /// Reload stall to charge for the restore rewrite.
    stall: u64,
}

/// Barrier-side swap sequencing: threshold checks, checksum validation,
/// watchdog commit/revert. Shared verbatim by the serial and pooled
/// drivers, and only ever run by the coordinator between barriers, so
/// every decision is bit-deterministic at any host thread count.
struct SwapDriver<'a> {
    swaps: &'a [ImageSwap],
    next: usize,
    events: Vec<SwapEvent>,
    armed: Option<Watchdog>,
}

impl<'a> SwapDriver<'a> {
    fn new(swaps: &'a [ImageSwap]) -> Self {
        SwapDriver {
            swaps,
            next: 0,
            events: Vec::new(),
            armed: None,
        }
    }

    /// Earliest cycle at which the armed watchdog can fire. The fast
    /// path must not jump a barrier past it: the revert decision happens
    /// *at* a barrier, and skipping over the deadline would revert later
    /// than the cycle-slice oracle does.
    fn horizon(&self) -> Option<u64> {
        self.armed.map(|w| w.deadline)
    }

    fn at_barrier(
        &mut self,
        engines: &[Mutex<Engine>],
        images: &[&Program<PhysReg>],
        cur: &AtomicUsize,
        mem: &SimMemory,
        slice_end: u64,
    ) {
        if let Some(w) = self.armed {
            if mem.tx_log.len() > w.tx_at {
                // The new image forwarded a packet: committed.
                self.armed = None;
            } else if slice_end >= w.deadline || all_halted(engines) {
                // Wedged (nothing transmitted inside the window) or
                // bricked (every context halted without transmitting):
                // restore the previous image, paying the control-store
                // rewrite again.
                apply_swap(engines, images[w.restore], slice_end, w.stall);
                cur.store(w.restore, Ordering::Release);
                let SwapEvent::Applied { swap_cycle, .. } = self.events[w.swap] else {
                    unreachable!("watchdog armed on an unapplied swap");
                };
                self.events[w.swap] = SwapEvent::Reverted {
                    swap_cycle,
                    at: slice_end,
                    tx_at: mem.tx_log.len(),
                };
                self.armed = None;
            }
        }
        while self.next < self.swaps.len()
            && mem.tx_log.len() as u64 >= self.swaps[self.next].after_packets
        {
            let i = self.next;
            self.next += 1;
            let s = &self.swaps[i];
            if let Some(want) = s.expected_checksum {
                if want != image_checksum(&s.image) {
                    self.events.push(SwapEvent::Rejected { at: slice_end });
                    continue;
                }
            }
            let restore = cur.load(Ordering::Acquire);
            apply_swap(engines, images[i + 1], slice_end, s.stall);
            cur.store(i + 1, Ordering::Release);
            self.events.push(SwapEvent::Applied {
                swap_cycle: slice_end,
                tx_at: mem.tx_log.len(),
            });
            // A newly applied swap supersedes any earlier watchdog: the
            // image it guarded is gone either way.
            self.armed = s.watchdog.map(|window| Watchdog {
                swap: i,
                deadline: slice_end + s.stall + window,
                tx_at: mem.tx_log.len(),
                restore,
                stall: s.stall,
            });
        }
    }

    fn count(&self, f: impl Fn(&SwapEvent) -> bool) -> u64 {
        self.events.iter().filter(|e| f(e)).count() as u64
    }
}

fn simulate_chip_inner(
    prog: &Program<PhysReg>,
    swaps: &[ImageSwap],
    mem: &mut SimMemory,
    cfg: &ChipConfig,
    obs: &nova_obs::Obs,
) -> Result<(SimResult, Vec<SwapReport>), SimError> {
    let n_engines = cfg.engines.max(1);
    let slice = cfg.slice.max(1);
    let workers = cfg.effective_host_threads().min(n_engines).max(1);
    let engines: Vec<Mutex<Engine>> = (0..n_engines)
        .map(|i| Mutex::new(Engine::new(i, prog, cfg.contexts)))
        .collect();
    let mut channels = Channel::per_space_with(cfg.faults);
    let mut mem_refs: HashMap<MemSpace, (u64, u64)> = HashMap::new();
    let mut sampler = obs.enabled().then(OccSampler::new);
    // Fast-path telemetry: how often and how far the scheduler jumped
    // over dead epochs. Only ever touched by the coordinator.
    let mut fp_skips: u64 = 0;
    let mut fp_skipped_cycles: u64 = 0;
    // Image rotation: `images[0]` is the boot image, `images[i + 1]` is
    // swap `i`'s. `cur` is advanced only by the coordinator between
    // barriers, so workers always read a settled value. The swap driver
    // records per-swap events whose tx-log indices pin "first packet
    // through the new rules" (or after a rollback) exactly.
    let images: Vec<&Program<PhysReg>> = std::iter::once(prog)
        .chain(swaps.iter().map(|s| &s.image))
        .collect();
    let cur = AtomicUsize::new(0);
    let mut swap_driver = SwapDriver::new(swaps);

    let outcome = if workers <= 1 {
        // Serial driver: same slice/barrier structure, no pool.
        let mut t: u64 = 0;
        loop {
            if t >= cfg.max_cycles {
                break (Ok(StopReason::CycleLimit), t);
            }
            let slice_end = (t + slice).min(cfg.max_cycles);
            for e in engines.iter() {
                run_slice(
                    &mut e.lock().unwrap(),
                    images[cur.load(Ordering::Acquire)],
                    slice_end,
                );
            }
            if let Some(err) = first_error(&engines) {
                break (Err(err), slice_end);
            }
            resolve_requests(&engines, mem, &mut channels, &mut mem_refs);
            if let Some(s) = sampler.as_mut() {
                s.maybe_sample(obs, slice_end, &channels);
            }
            swap_driver.at_barrier(&engines, &images, &cur, mem, slice_end);
            if all_halted(&engines) {
                break (Ok(StopReason::AllHalted), slice_end);
            }
            let (next_t, skipped) = next_epoch(
                &engines,
                &channels,
                cfg.mode,
                slice_end,
                slice,
                cfg.max_cycles,
                swap_driver.horizon(),
            );
            if skipped > 0 {
                fp_skips += 1;
                fp_skipped_cycles += skipped;
            }
            t = next_t;
        }
    } else {
        // Persistent work-sharing pool (the style of `ilp`'s parallel
        // tree search): W workers park at a barrier; each epoch the
        // coordinator publishes a slice, workers claim engines from a
        // shared counter, and a second barrier hands control back for
        // the serial arbitration phase. Claim order is irrelevant to the
        // result because intra-slice engine execution is engine-local.
        let barrier = Barrier::new(workers + 1);
        let next = AtomicUsize::new(0);
        let slice_end_shared = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let end = slice_end_shared.load(Ordering::Acquire);
                    let image = images[cur.load(Ordering::Acquire)];
                    loop {
                        let i = next.fetch_add(1, Ordering::AcqRel);
                        if i >= engines.len() {
                            break;
                        }
                        run_slice(&mut engines[i].lock().unwrap(), image, end);
                    }
                    barrier.wait();
                });
            }
            let mut t: u64 = 0;
            let outcome = loop {
                if t >= cfg.max_cycles {
                    break (Ok(StopReason::CycleLimit), t);
                }
                let slice_end = (t + slice).min(cfg.max_cycles);
                next.store(0, Ordering::Release);
                slice_end_shared.store(slice_end, Ordering::Release);
                barrier.wait(); // workers execute the slice
                barrier.wait(); // slice complete; coordinator owns the state
                if let Some(err) = first_error(&engines) {
                    break (Err(err), slice_end);
                }
                resolve_requests(&engines, mem, &mut channels, &mut mem_refs);
                if let Some(s) = sampler.as_mut() {
                    s.maybe_sample(obs, slice_end, &channels);
                }
                swap_driver.at_barrier(&engines, &images, &cur, mem, slice_end);
                if all_halted(&engines) {
                    break (Ok(StopReason::AllHalted), slice_end);
                }
                let (next_t, skipped) = next_epoch(
                    &engines,
                    &channels,
                    cfg.mode,
                    slice_end,
                    slice,
                    cfg.max_cycles,
                    swap_driver.horizon(),
                );
                if skipped > 0 {
                    fp_skips += 1;
                    fp_skipped_cycles += skipped;
                }
                t = next_t;
            };
            done.store(true, Ordering::Release);
            barrier.wait(); // release workers into the exit check
            outcome
        })
    };

    let (stop, final_t) = match outcome {
        (Ok(stop), t) => (stop, t),
        (Err(e), _) => return Err(e),
    };
    if obs.enabled() {
        // How much host work the event-driven mode saved. These are the
        // only counters allowed to differ between modes (the differential
        // tests compare SimResult, not telemetry).
        obs.counter("sim.fastpath.skips", fp_skips);
        obs.counter("sim.fastpath.skipped_cycles", fp_skipped_cycles);
        let applied = swap_driver
            .count(|e| matches!(e, SwapEvent::Applied { .. } | SwapEvent::Reverted { .. }));
        let rejected = swap_driver.count(|e| matches!(e, SwapEvent::Rejected { .. }));
        let reverted = swap_driver.count(|e| matches!(e, SwapEvent::Reverted { .. }));
        if applied > 0 {
            obs.counter("sim.reload.swaps", applied);
        }
        if rejected > 0 {
            obs.counter("sim.reload.rejected_swaps", rejected);
        }
        if reverted > 0 {
            obs.counter("sim.reload.reverted_swaps", reverted);
        }
    }
    let mut engs: Vec<Engine> = engines
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    for e in engs.iter_mut() {
        // Engines whose last context halted at the barrier (empty receive
        // queue) never ran again to observe it; close their books at the
        // local cycle they stopped executing.
        if e.all_halted() && e.stats.halt_cycle == 0 {
            e.stats.halt_cycle = e.cycle;
        }
    }
    let cycles = match stop {
        StopReason::AllHalted => engs
            .iter()
            .map(|e| e.stats.halt_cycle)
            .max()
            .unwrap_or(final_t),
        StopReason::CycleLimit => final_t,
    };
    let estats: Vec<EngineStats> = engs.into_iter().map(|e| e.stats).collect();
    let reports: Vec<SwapReport> = swaps
        .iter()
        .enumerate()
        .map(|(i, s)| match swap_driver.events.get(i) {
            None => SwapReport {
                after_packets: s.after_packets,
                swap_cycle: None,
                first_tx_cycle: None,
                outcome: SwapOutcome::NotReached,
            },
            Some(&SwapEvent::Rejected { at }) => SwapReport {
                after_packets: s.after_packets,
                swap_cycle: None,
                first_tx_cycle: None,
                outcome: SwapOutcome::RejectedChecksum { at },
            },
            Some(&SwapEvent::Applied { swap_cycle, tx_at }) => SwapReport {
                after_packets: s.after_packets,
                swap_cycle: Some(swap_cycle),
                first_tx_cycle: mem.tx_log.get(tx_at).map(|&(_, _, c)| c),
                outcome: SwapOutcome::Applied,
            },
            Some(&SwapEvent::Reverted {
                swap_cycle,
                at,
                tx_at,
            }) => SwapReport {
                after_packets: s.after_packets,
                swap_cycle: Some(swap_cycle),
                first_tx_cycle: mem.tx_log.get(tx_at).map(|&(_, _, c)| c),
                outcome: SwapOutcome::RevertedWatchdog { at },
            },
        })
        .collect();
    Ok((
        finish_result(cycles, mem_refs, stop, channels, estats),
        reports,
    ))
}

fn first_error(engines: &[Mutex<Engine>]) -> Option<SimError> {
    engines.iter().find_map(|e| e.lock().unwrap().error.clone())
}

fn all_halted(engines: &[Mutex<Engine>]) -> bool {
    engines.iter().all(|e| e.lock().unwrap().all_halted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_machine::{Addr, Block};

    fn r(bank: Bank, n: u8) -> PhysReg {
        PhysReg::new(bank, n)
    }

    /// rx -> read sdram burst -> tx, until the queue drains.
    fn forwarder() -> Program<PhysReg> {
        Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::RxPacket {
                        len_dst: r(Bank::A, 0),
                        addr_dst: r(Bank::A, 1),
                    },
                    Instr::MemRead {
                        space: MemSpace::Sdram,
                        addr: Addr::Reg(r(Bank::A, 1), 0),
                        dst: vec![r(Bank::Ld, 0), r(Bank::Ld, 1)],
                    },
                    Instr::TxPacket {
                        addr: r(Bank::A, 1),
                        len: r(Bank::A, 0),
                    },
                ],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        }
    }

    fn loaded_mem(packets: usize) -> SimMemory {
        let mut mem = SimMemory::with_sizes(64, 4096, 64);
        for i in 0..packets {
            mem.rx_queue.push_back((64, (i * 16) as u32));
        }
        mem
    }

    #[test]
    fn chip_processes_every_packet_exactly_once() {
        let prog = forwarder();
        let mut mem = loaded_mem(40);
        let cfg = ChipConfig {
            engines: 4,
            contexts: 2,
            ..ChipConfig::default()
        };
        let res = simulate_chip(&prog, &mut mem, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::AllHalted);
        assert_eq!(res.packets, 40);
        assert_eq!(mem.tx_log.len(), 40);
        assert!(mem.rx_queue.is_empty());
        // Every engine pulled some work from the shared queue.
        assert!(
            res.engines.iter().all(|e| e.packets > 0),
            "{:?}",
            res.engines
        );
        assert_eq!(res.engines.iter().map(|e| e.packets).sum::<u64>(), 40);
    }

    #[test]
    fn more_engines_finish_sooner_until_saturation() {
        let prog = forwarder();
        let cycles = |engines: usize| {
            let mut mem = loaded_mem(64);
            let cfg = ChipConfig {
                engines,
                contexts: 4,
                ..ChipConfig::default()
            };
            simulate_chip(&prog, &mut mem, &cfg).unwrap().cycles
        };
        let one = cycles(1);
        let four = cycles(4);
        assert!(four < one, "scaling: 1 engine {one} vs 4 engines {four}");
    }

    #[test]
    fn host_thread_count_is_invisible() {
        let prog = forwarder();
        let run = |host_threads: usize| {
            let mut mem = loaded_mem(32);
            let cfg = ChipConfig {
                engines: 5,
                contexts: 3,
                host_threads,
                ..ChipConfig::default()
            };
            let res = simulate_chip(&prog, &mut mem, &cfg).unwrap();
            (
                res.cycles,
                res.instructions,
                res.packets,
                res.engines,
                res.channels,
                mem.tx_log,
            )
        };
        let a = run(1);
        let b = run(2);
        let c = run(4);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    /// Forwarder traffic paced far apart, so the chip spends most of its
    /// modeled time with every context asleep — the fast path's case.
    fn paced_mem(packets: usize, gap: u64) -> SimMemory {
        let mut mem = SimMemory::with_sizes(64, 4096, 64);
        for i in 0..packets {
            mem.rx_arrivals
                .push_back((i as u64 * gap, 64, (i % 16 * 16) as u32));
        }
        mem
    }

    fn fingerprint(res: &SimResult, mem: &SimMemory) -> impl PartialEq + std::fmt::Debug {
        (
            res.cycles,
            res.instructions,
            res.packets,
            res.bytes,
            res.stop,
            res.engines.clone(),
            res.channels.clone(),
            mem.sram.clone(),
            mem.sdram.clone(),
            mem.tx_log.clone(),
            mem.rx_grants.clone(),
            mem.rx_dropped,
        )
    }

    #[test]
    fn fast_path_is_bit_identical_to_the_cycle_slice_oracle() {
        let prog = forwarder();
        let run = |mode: SimMode| {
            let mut mem = paced_mem(48, 700);
            mem.rx_capacity = 4;
            let cfg = ChipConfig {
                engines: 3,
                contexts: 2,
                mode,
                ..ChipConfig::default()
            };
            let res = simulate_chip(&prog, &mut mem, &cfg).unwrap();
            (fingerprint(&res, &mem), res)
        };
        let (slow, slow_res) = run(SimMode::CycleSlice);
        let (fast, fast_res) = run(SimMode::FastPath);
        assert_eq!(slow, fast);
        assert_eq!(slow_res.stop, StopReason::AllHalted);
        assert_eq!(fast_res.packets, 48);
    }

    #[test]
    fn fast_path_matches_oracle_under_a_cycle_limit() {
        let prog = forwarder();
        let run = |mode: SimMode| {
            let mut mem = paced_mem(64, 900);
            let cfg = ChipConfig {
                engines: 2,
                contexts: 2,
                max_cycles: 10_000,
                mode,
                ..ChipConfig::default()
            };
            let res = simulate_chip(&prog, &mut mem, &cfg).unwrap();
            (fingerprint(&res, &mem), res.stop)
        };
        let (slow, stop) = run(SimMode::CycleSlice);
        let (fast, _) = run(SimMode::FastPath);
        assert_eq!(stop, StopReason::CycleLimit, "test wants a partial run");
        assert_eq!(slow, fast);
    }

    #[test]
    fn fast_path_reports_its_skips_and_the_oracle_reports_none() {
        let prog = forwarder();
        let skips = |mode: SimMode| {
            let rec = nova_obs::MemoryRecorder::new();
            let obs = nova_obs::Obs::new(rec.clone());
            let mut mem = paced_mem(16, 2_000);
            let cfg = ChipConfig {
                engines: 2,
                contexts: 2,
                mode,
                ..ChipConfig::default()
            };
            simulate_chip_with(&prog, &mut mem, &cfg, &obs).unwrap();
            let sum = rec.summary();
            (
                sum.counter_total("sim.fastpath.skips").unwrap_or(0),
                sum.counter_total("sim.fastpath.skipped_cycles")
                    .unwrap_or(0),
            )
        };
        let (fast_skips, fast_cycles) = skips(SimMode::FastPath);
        assert!(fast_skips > 0, "paced traffic must trigger skips");
        assert!(fast_cycles >= fast_skips * 8, "each skip spans >= 1 epoch");
        assert_eq!(skips(SimMode::CycleSlice), (0, 0));
    }

    #[test]
    fn timed_traffic_with_a_small_buffer_drops_deterministically() {
        let prog = forwarder();
        let run = || {
            // A burst of simultaneous arrivals against a 2-slot buffer.
            let mut mem = SimMemory::with_sizes(64, 4096, 64);
            for i in 0..12u32 {
                mem.rx_arrivals.push_back((100, 64, i * 16));
            }
            mem.rx_capacity = 2;
            let cfg = ChipConfig {
                engines: 1,
                contexts: 1,
                ..ChipConfig::default()
            };
            let res = simulate_chip(&prog, &mut mem, &cfg).unwrap();
            (res.packets, mem.rx_dropped, mem.tx_log.len())
        };
        let (delivered, dropped, txed) = run();
        assert_eq!(delivered + dropped, 12, "conservation: offered = tx + drop");
        assert!(dropped > 0, "a 2-slot buffer cannot absorb a 12-deep burst");
        assert_eq!(delivered as usize, txed);
        assert_eq!(run(), (delivered, dropped, txed), "drops are deterministic");
    }

    /// A forwarder that transmits every packet with a constant tag as
    /// its length, so the tx log shows which image forwarded it.
    fn tagged_forwarder(tag: u32) -> Program<PhysReg> {
        Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::RxPacket {
                        len_dst: r(Bank::A, 0),
                        addr_dst: r(Bank::A, 1),
                    },
                    Instr::Imm {
                        dst: r(Bank::A, 2),
                        val: tag,
                    },
                    Instr::TxPacket {
                        addr: r(Bank::A, 1),
                        len: r(Bank::A, 2),
                    },
                ],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn image_swap_takes_effect_between_packets() {
        let old = tagged_forwarder(11);
        let new = tagged_forwarder(22);
        let mut mem = paced_mem(30, 600);
        let cfg = ChipConfig {
            engines: 2,
            contexts: 2,
            ..ChipConfig::default()
        };
        let swaps = [ImageSwap {
            stall: 512,
            ..ImageSwap::new(10, new)
        }];
        let (res, reports) = simulate_chip_reload(&old, &swaps, &mut mem, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::AllHalted);
        assert_eq!(mem.tx_log.len(), 30, "no packet is lost across the swap");
        let report = &reports[0];
        let swap_cycle = report.swap_cycle.expect("threshold was reached");
        // The swap is between packets: every tx is attributable to
        // exactly one image, old strictly before the swap barrier.
        let tags: Vec<u32> = mem.tx_log.iter().map(|&(_, len, _)| len).collect();
        let old_count = tags.iter().take_while(|&&t| t == 11).count();
        assert!(old_count >= 10, "swap cannot precede its threshold");
        assert!(
            tags[old_count..].iter().all(|&t| t == 22),
            "after the swap only the new image transmits: {tags:?}"
        );
        let first_new = report.first_tx_cycle.expect("new image forwarded packets");
        assert!(first_new > swap_cycle);
        assert!(
            report.update_cycles().unwrap() >= 512,
            "update latency includes the reload stall"
        );
    }

    #[test]
    fn image_swap_is_deterministic_at_any_host_thread_count() {
        let run = |host_threads: usize| {
            let mut mem = paced_mem(40, 500);
            let cfg = ChipConfig {
                engines: 3,
                contexts: 2,
                host_threads,
                ..ChipConfig::default()
            };
            let swaps = [
                ImageSwap::new(8, tagged_forwarder(2)),
                ImageSwap::new(20, tagged_forwarder(3)),
            ];
            let (res, reports) =
                simulate_chip_reload(&tagged_forwarder(1), &swaps, &mut mem, &cfg).unwrap();
            (fingerprint(&res, &mem), reports)
        };
        let a = run(1);
        let b = run(2);
        let c = run(4);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.1.iter().all(|r| r.swap_cycle.is_some()));
    }

    #[test]
    fn image_swap_matches_between_scheduler_modes() {
        let run = |mode: SimMode| {
            let mut mem = paced_mem(32, 800);
            let cfg = ChipConfig {
                engines: 2,
                contexts: 2,
                mode,
                ..ChipConfig::default()
            };
            let swaps = [ImageSwap::new(12, tagged_forwarder(9))];
            let (res, reports) =
                simulate_chip_reload(&tagged_forwarder(7), &swaps, &mut mem, &cfg).unwrap();
            (fingerprint(&res, &mem), reports)
        };
        assert_eq!(run(SimMode::CycleSlice), run(SimMode::FastPath));
    }

    #[test]
    fn unreached_swap_threshold_reports_none() {
        let mut mem = loaded_mem(5);
        let cfg = ChipConfig {
            engines: 1,
            contexts: 1,
            ..ChipConfig::default()
        };
        let swaps = [ImageSwap::new(100, tagged_forwarder(2))];
        let (res, reports) = simulate_chip_reload(&forwarder(), &swaps, &mut mem, &cfg).unwrap();
        assert_eq!(res.packets, 5);
        assert_eq!(
            reports,
            vec![SwapReport {
                after_packets: 100,
                swap_cycle: None,
                first_tx_cycle: None,
                outcome: SwapOutcome::NotReached,
            }]
        );
    }

    /// An image that spins forever without receiving or transmitting:
    /// the wedged-update case the watchdog exists for.
    fn wedged_image() -> Program<PhysReg> {
        Program {
            blocks: vec![Block {
                instrs: vec![Instr::CtxSwap],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn checksum_mismatch_rejects_the_swap_and_keeps_the_old_image() {
        let old = tagged_forwarder(11);
        let new = tagged_forwarder(22);
        let mut mem = paced_mem(24, 600);
        let cfg = ChipConfig {
            engines: 2,
            contexts: 2,
            ..ChipConfig::default()
        };
        // The manifest advertises a different image than was delivered.
        let wrong = image_checksum(&old);
        assert_ne!(wrong, image_checksum(&new));
        let swaps = [ImageSwap::new(8, new).with_checksum(wrong)];
        let (res, reports) = simulate_chip_reload(&old, &swaps, &mut mem, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::AllHalted);
        assert_eq!(mem.tx_log.len(), 24, "rejected swap loses no packets");
        assert!(
            mem.tx_log.iter().all(|&(_, len, _)| len == 11),
            "the corrupt image must never run"
        );
        assert!(matches!(
            reports[0].outcome,
            SwapOutcome::RejectedChecksum { .. }
        ));
        assert_eq!(reports[0].swap_cycle, None);
    }

    #[test]
    fn matching_checksum_applies_the_swap() {
        let old = tagged_forwarder(11);
        let new = tagged_forwarder(22);
        let sum = image_checksum(&new);
        let mut mem = paced_mem(24, 600);
        let cfg = ChipConfig {
            engines: 2,
            contexts: 2,
            ..ChipConfig::default()
        };
        let swaps = [ImageSwap::new(8, new).with_checksum(sum)];
        let (_, reports) = simulate_chip_reload(&old, &swaps, &mut mem, &cfg).unwrap();
        assert_eq!(reports[0].outcome, SwapOutcome::Applied);
        assert!(mem.tx_log.iter().any(|&(_, len, _)| len == 22));
    }

    #[test]
    fn watchdog_reverts_a_wedged_image_and_traffic_recovers() {
        let old = tagged_forwarder(11);
        let mut mem = paced_mem(30, 600);
        let cfg = ChipConfig {
            engines: 2,
            contexts: 2,
            ..ChipConfig::default()
        };
        let swaps = [ImageSwap {
            stall: 256,
            ..ImageSwap::new(10, wedged_image())
        }
        .with_watchdog(2_000)];
        let (res, reports) = simulate_chip_reload(&old, &swaps, &mut mem, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::AllHalted, "the chip must not wedge");
        let report = &reports[0];
        let SwapOutcome::RevertedWatchdog { at } = report.outcome else {
            panic!("expected a watchdog revert, got {:?}", report.outcome);
        };
        let swap_cycle = report.swap_cycle.expect("the swap fired");
        assert!(
            at >= swap_cycle + 256 + 2_000,
            "revert waits out stall + window: {at} vs swap {swap_cycle}"
        );
        // Every offered packet is eventually forwarded by the restored
        // image: the wedge delayed traffic but lost none (admission only
        // happens at rx grants, which the wedged image never issued).
        assert_eq!(mem.tx_log.len(), 30, "rollback restores the data plane");
        assert!(mem.tx_log.iter().all(|&(_, len, _)| len == 11));
        let first_after = report.first_tx_cycle.expect("traffic recovered");
        assert!(first_after >= at + 256, "recovery pays the restore stall");
    }

    #[test]
    fn watchdog_reverts_a_bricked_image_before_the_deadline() {
        let old = tagged_forwarder(11);
        let brick = Program {
            blocks: vec![Block {
                instrs: vec![],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let mut mem = paced_mem(20, 600);
        let cfg = ChipConfig {
            engines: 2,
            contexts: 2,
            ..ChipConfig::default()
        };
        // Window far beyond the run: only the all-halted trigger can fire.
        let swaps = [ImageSwap {
            stall: 256,
            ..ImageSwap::new(8, brick)
        }
        .with_watchdog(50_000_000)];
        let (res, reports) = simulate_chip_reload(&old, &swaps, &mut mem, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::AllHalted);
        let SwapOutcome::RevertedWatchdog { at } = reports[0].outcome else {
            panic!("expected a watchdog revert, got {:?}", reports[0].outcome);
        };
        let swap_cycle = reports[0].swap_cycle.unwrap();
        assert!(
            at < swap_cycle + 256 + 50_000_000,
            "a bricked chip reverts immediately, not at the deadline"
        );
        assert_eq!(mem.tx_log.len(), 20, "all traffic drains after revert");
    }

    #[test]
    fn watchdog_commits_quietly_when_the_new_image_is_healthy() {
        let old = tagged_forwarder(11);
        let new = tagged_forwarder(22);
        let mut mem = paced_mem(30, 600);
        let cfg = ChipConfig {
            engines: 2,
            contexts: 2,
            ..ChipConfig::default()
        };
        let swaps = [ImageSwap::new(10, new).with_watchdog(100_000)];
        let (res, reports) = simulate_chip_reload(&old, &swaps, &mut mem, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::AllHalted);
        assert_eq!(reports[0].outcome, SwapOutcome::Applied);
        assert_eq!(mem.tx_log.len(), 30);
        assert!(mem.tx_log.iter().any(|&(_, len, _)| len == 22));
    }

    #[test]
    fn faulted_swaps_are_deterministic_across_threads_and_modes() {
        let run = |host_threads: usize, mode: SimMode| {
            let mut mem = paced_mem(40, 500);
            let cfg = ChipConfig {
                engines: 3,
                contexts: 2,
                host_threads,
                mode,
                ..ChipConfig::default()
            };
            let swaps = [
                ImageSwap::new(6, tagged_forwarder(2)).with_checksum(7), // corrupt
                ImageSwap {
                    stall: 256,
                    ..ImageSwap::new(12, wedged_image())
                }
                .with_watchdog(1_500),
            ];
            let (res, reports) =
                simulate_chip_reload(&tagged_forwarder(1), &swaps, &mut mem, &cfg).unwrap();
            (fingerprint(&res, &mem), reports)
        };
        let a = run(1, SimMode::FastPath);
        assert_eq!(a, run(2, SimMode::FastPath));
        assert_eq!(a, run(4, SimMode::FastPath));
        assert_eq!(a, run(1, SimMode::CycleSlice));
        assert_eq!(a, run(4, SimMode::CycleSlice));
        assert!(matches!(
            a.1[0].outcome,
            SwapOutcome::RejectedChecksum { .. }
        ));
        assert!(matches!(
            a.1[1].outcome,
            SwapOutcome::RevertedWatchdog { .. }
        ));
    }

    #[test]
    fn cycle_limit_returns_partial_stats() {
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        };
        let mut mem = SimMemory::default();
        let cfg = ChipConfig {
            engines: 2,
            max_cycles: 1000,
            ..ChipConfig::default()
        };
        let res = simulate_chip(&prog, &mut mem, &cfg).unwrap();
        assert_eq!(res.stop, StopReason::CycleLimit);
        assert!(res.cycles <= 1000);
        assert!(res.instructions > 0, "partial stats survive the stop");
    }
}
