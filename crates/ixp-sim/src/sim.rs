//! The micro-engine execution model.
//!
//! Threads (hardware contexts) run the same program round-robin; a thread
//! that issues a memory reference swaps out until the reference completes
//! (plus channel contention), exactly the latency-hiding discipline the
//! IXP1200's threading was designed for. All timing constants come from
//! [`ixp_machine::timing`]; channel contention is charged through
//! [`ixp_machine::channel`], the same bus model the chip-level simulator
//! ([`crate::chip`]) arbitrates between engines.

use crate::engine::{advance_idle, earliest_wake, resolve_addr, RegFile, ThreadState};
use crate::machine::{RxGrant, SimMemory};
use ixp_machine::channel::{Channel, ChannelFaults, ChannelStats};
use ixp_machine::timing::{
    issue_cycles, read_latency, BRANCH_TAKEN_PENALTY, CLOCK_HZ, HASH_CYCLES,
};
use ixp_machine::units::hash_unit;
use ixp_machine::{AluSrc, Bank, BlockId, Instr, MemSpace, PhysReg, Program, Terminator};
use std::collections::HashMap;

/// Time-advance strategy of the simulators.
///
/// Both modes are required to produce bit-identical [`SimResult`]s — the
/// differential tests enforce it on every workload. The split exists
/// because grinding idle arbitration epochs one at a time dominates host
/// time on lightly loaded chips and paced traffic, capping how many
/// packets a CI run can afford.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// Advance one arbitration epoch at a time even when every context is
    /// blocked. The bit-exact differential oracle the fast path is tested
    /// against.
    CycleSlice,
    /// Event-driven: when every context on every engine is blocked past
    /// the current epoch, jump straight to the epoch containing the
    /// earliest wake-up ([`ixp_machine::channel::Channel::next_event`]
    /// documents why context wake-ups enumerate *all* future events).
    /// The default.
    #[default]
    FastPath,
}

/// Simulation parameters for one micro-engine.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hardware contexts running the program (IXP1200: 4 per engine).
    pub threads: usize,
    /// Cycle budget (guards against runaway programs). A run that exhausts
    /// it stops with [`StopReason::CycleLimit`] and partial statistics —
    /// check [`SimResult::stop`] before treating the numbers as a
    /// completed run.
    pub max_cycles: u64,
    /// Time-advance strategy. The single-engine scheduler has no
    /// arbitration epochs — its idle-advance already jumps straight to
    /// the earliest wake-up — so both modes execute identically here;
    /// the knob mirrors [`crate::ChipConfig`] so one configuration can
    /// drive either simulator.
    pub mode: SimMode,
    /// Deterministic channel fault injection (stalls and dropped/retried
    /// references). Default: no faults.
    pub faults: ChannelFaults,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: 4,
            max_cycles: 500_000_000,
            mode: SimMode::default(),
            faults: ChannelFaults::default(),
        }
    }
}

/// Why the simulation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every thread reached `halt` (or found the receive queue empty).
    AllHalted,
    /// The cycle budget ran out: the result carries partial statistics of
    /// an unfinished run.
    CycleLimit,
}

/// Per-engine execution telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Engine index on the chip (0 for the single-engine simulator).
    pub engine: usize,
    /// Instructions issued by this engine's contexts.
    pub instructions: u64,
    /// Context swap-outs (a context yielding the pipeline on a memory
    /// reference, hash, packet operation, or explicit `ctx_swap`).
    pub swap_outs: u64,
    /// Cycles with no runnable context (every context swapped out —
    /// latency the hardware threading failed to hide).
    pub idle_cycles: u64,
    /// Packets transmitted by this engine.
    pub packets: u64,
    /// Payload+header bytes transmitted by this engine.
    pub bytes: u64,
    /// Cycle at which the engine's last context halted (0 if it never
    /// fully halted).
    pub halt_cycle: u64,
}

impl EngineStats {
    pub(crate) fn new(engine: usize) -> Self {
        EngineStats {
            engine,
            instructions: 0,
            swap_outs: 0,
            idle_cycles: 0,
            packets: 0,
            bytes: 0,
            halt_cycle: 0,
        }
    }
}

/// Execution outcome.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Instructions issued (all threads).
    pub instructions: u64,
    /// Memory references issued per space (reads, writes).
    pub mem_refs: HashMap<MemSpace, (u64, u64)>,
    /// Packets fully processed (transmitted).
    pub packets: u64,
    /// Payload bytes transmitted.
    pub bytes: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Throughput in megabits per second at the modeled clock, counting
    /// transmitted bytes (the paper's measure).
    pub mbps: f64,
    /// Per-channel occupancy/queueing telemetry (SRAM, SDRAM, scratch).
    pub channels: Vec<ChannelStats>,
    /// Per-engine telemetry (one entry per micro-engine; the
    /// single-engine [`simulate`] fills exactly one).
    pub engines: Vec<EngineStats>,
}

/// Architectural errors (all indicate compiler or simulator bugs — the
/// validator should reject programs that could trigger them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A store-side register was read by a non-memory instruction.
    ReadFromStoreBank(PhysReg),
    /// Jump target out of range.
    BadTarget(BlockId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ReadFromStoreBank(r) => write!(f, "read from store-side register {r}"),
            SimError::BadTarget(b) => write!(f, "jump to nonexistent block {b}"),
        }
    }
}

impl std::error::Error for SimError {}

struct Thread {
    regs: RegFile,
    block: BlockId,
    pc: usize,
    state: ThreadState,
}

/// Run `prog` on the simulated micro-engine.
///
/// # Errors
///
/// Returns [`SimError`] on architectural violations (which
/// [`ixp_machine::validate`] should have ruled out).
pub fn simulate(
    prog: &Program<PhysReg>,
    mem: &mut SimMemory,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_with(prog, mem, cfg, &nova_obs::Obs::noop())
}

/// [`simulate`] with structured telemetry: the run executes under a
/// `phase.sim` span and finishes by publishing per-channel
/// (`sim.channel.*`) and per-engine (`sim.engine.*`) telemetry — see
/// [`emit_result_obs`] for the exact taxonomy. The execution loop itself
/// is untouched; a no-op observer costs nothing per simulated cycle.
///
/// # Errors
///
/// Returns [`SimError`] on architectural violations, as [`simulate`].
pub fn simulate_with(
    prog: &Program<PhysReg>,
    mem: &mut SimMemory,
    cfg: &SimConfig,
    obs: &nova_obs::Obs,
) -> Result<SimResult, SimError> {
    let span = obs.span("phase.sim");
    let res = simulate_inner(prog, mem, cfg)?;
    span.end();
    emit_result_obs(obs, &res);
    Ok(res)
}

fn simulate_inner(
    prog: &Program<PhysReg>,
    mem: &mut SimMemory,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    let mut threads: Vec<Thread> = (0..cfg.threads.max(1))
        .map(|_| Thread {
            regs: RegFile::new(),
            block: prog.entry,
            pc: 0,
            state: ThreadState::Ready,
        })
        .collect();
    let mut channels = Channel::per_space_with(cfg.faults);
    let mut cycle: u64 = 0;
    let mut estats = EngineStats::new(0);
    let mut mem_refs: HashMap<MemSpace, (u64, u64)> = HashMap::new();
    let mut current = 0usize;

    let stop = loop {
        if cycle >= cfg.max_cycles {
            break StopReason::CycleLimit;
        }
        // Pick the next runnable thread (round robin from `current`).
        let mut picked = None;
        for off in 0..threads.len() {
            let i = (current + off) % threads.len();
            match threads[i].state {
                ThreadState::Ready => {
                    picked = Some(i);
                    break;
                }
                ThreadState::Blocked(until) if until <= cycle => {
                    threads[i].state = ThreadState::Ready;
                    picked = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(ti) = picked else {
            // Everyone blocked or halted: advance to the earliest wake-up
            // (this per-engine scheduler is already event-driven, so
            // `SimConfig::mode` changes nothing here).
            match earliest_wake(threads.iter().map(|t| &t.state)) {
                Some(u) => {
                    let target = u.max(cycle + 1);
                    advance_idle(&mut cycle, &mut estats.idle_cycles, target);
                    continue;
                }
                None => break StopReason::AllHalted,
            }
        };
        current = ti;
        let t = &mut threads[ti];
        let block = &prog.blocks[t.block.index()];

        if t.pc < block.instrs.len() {
            let ins = &block.instrs[t.pc];
            estats.instructions += 1;
            cycle += issue_cycles(ins);
            match ins {
                Instr::Alu { op, dst, a, b } => {
                    let av = t.regs.read(*a);
                    let bv = match b {
                        AluSrc::Reg(r) => t.regs.read(*r),
                        AluSrc::Imm(v) => *v,
                    };
                    t.regs.write(*dst, op.eval(av, bv));
                }
                Instr::Imm { dst, val } => t.regs.write(*dst, *val),
                Instr::Move { dst, src } => {
                    let v = t.regs.read(*src);
                    t.regs.write(*dst, v);
                }
                Instr::Clone { .. } => {
                    // Validated programs never contain clones; treat as nop.
                }
                Instr::MemRead { space, addr, dst } => {
                    let base = resolve_addr(&t.regs, addr);
                    for (i, d) in dst.iter().enumerate() {
                        let v = mem.read(*space, base + i as u32);
                        t.regs.write(*d, v);
                    }
                    let e = mem_refs.entry(*space).or_insert((0, 0));
                    e.0 += 1;
                    let (_, done) = channels[Channel::index(*space)].service_read(cycle, dst.len());
                    t.state = ThreadState::Blocked(done);
                    estats.swap_outs += 1;
                    t.pc += 1;
                    continue;
                }
                Instr::MemWrite { space, addr, src } => {
                    let base = resolve_addr(&t.regs, addr);
                    for (i, s) in src.iter().enumerate() {
                        let v = t.regs.read(*s);
                        mem.write(*space, base + i as u32, v);
                    }
                    let e = mem_refs.entry(*space).or_insert((0, 0));
                    e.1 += 1;
                    // Writes retire asynchronously: the thread only pays
                    // channel acceptance, not the full latency.
                    let start = channels[Channel::index(*space)].service_write(cycle, src.len());
                    if start > cycle {
                        t.state = ThreadState::Blocked(start);
                        estats.swap_outs += 1;
                    }
                }
                Instr::Hash { dst, src } => {
                    let v = hash_unit(t.regs.read(PhysReg::new(Bank::S, src.num)));
                    let _ = src;
                    t.regs.write(*dst, v);
                    t.state = ThreadState::Blocked(cycle + HASH_CYCLES);
                    estats.swap_outs += 1;
                    t.pc += 1;
                    continue;
                }
                Instr::TestAndSet { dst, src, addr } => {
                    let a = resolve_addr(&t.regs, addr);
                    let old = mem.read(MemSpace::Sram, a);
                    let v = t.regs.read(*src);
                    mem.write(MemSpace::Sram, a, old | v);
                    t.regs.write(*dst, old);
                    let e = mem_refs.entry(MemSpace::Sram).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += 1;
                    t.state = ThreadState::Blocked(cycle + read_latency(MemSpace::Sram));
                    estats.swap_outs += 1;
                    t.pc += 1;
                    continue;
                }
                Instr::CsrRead { dst, csr } => {
                    // CSR_CTX is context-local (the active-context number);
                    // everything else reads the shared CSR file.
                    let v = if *csr == ixp_machine::CSR_CTX {
                        ti as u32
                    } else {
                        *mem.csr.get(csr).unwrap_or(&0)
                    };
                    t.regs.write(*dst, v);
                }
                Instr::CsrWrite { src, csr } => {
                    let v = t.regs.read(*src);
                    mem.csr.insert(*csr, v);
                }
                Instr::RxPacket { len_dst, addr_dst } => {
                    match mem.rx_grant(cycle) {
                        RxGrant::Packet { len, addr } => {
                            t.regs.write(*len_dst, len);
                            t.regs.write(*addr_dst, addr);
                            // Synchronizing with the receive scheduler.
                            t.state = ThreadState::Blocked(cycle + 4);
                            estats.swap_outs += 1;
                            t.pc += 1;
                            continue;
                        }
                        RxGrant::WaitUntil(arrival) => {
                            // Timed traffic: the next packet is still on
                            // the wire. Sleep until it lands and retry the
                            // rx (the pc stays put).
                            t.state = ThreadState::Blocked(arrival);
                            estats.swap_outs += 1;
                            continue;
                        }
                        RxGrant::Empty => {
                            // Out of work: this context parks.
                            t.state = ThreadState::Halted;
                            continue;
                        }
                    }
                }
                Instr::TxPacket { addr, len } => {
                    let a = t.regs.read(*addr);
                    let l = t.regs.read(*len);
                    mem.tx_log.push((a, l, cycle));
                    estats.packets += 1;
                    estats.bytes += l as u64;
                    t.state = ThreadState::Blocked(cycle + 4);
                    estats.swap_outs += 1;
                    t.pc += 1;
                    continue;
                }
                Instr::CtxSwap => {
                    t.pc += 1;
                    t.state = ThreadState::Blocked(cycle + 1);
                    estats.swap_outs += 1;
                    continue;
                }
            }
            t.pc += 1;
        } else {
            // Terminator.
            estats.instructions += 1;
            cycle += 1;
            match &block.term {
                Terminator::Halt => {
                    t.state = ThreadState::Halted;
                }
                Terminator::Jump(target) => {
                    if target.index() >= prog.blocks.len() {
                        return Err(SimError::BadTarget(*target));
                    }
                    t.block = *target;
                    t.pc = 0;
                    cycle += BRANCH_TAKEN_PENALTY;
                }
                Terminator::Branch {
                    cond,
                    a,
                    b,
                    if_true,
                    if_false,
                } => {
                    let av = t.regs.read(*a);
                    let bv = match b {
                        AluSrc::Reg(r) => t.regs.read(*r),
                        AluSrc::Imm(v) => *v,
                    };
                    let taken = cond.eval(av, bv);
                    let target = if taken { *if_true } else { *if_false };
                    if target.index() >= prog.blocks.len() {
                        return Err(SimError::BadTarget(target));
                    }
                    if taken {
                        cycle += BRANCH_TAKEN_PENALTY;
                    }
                    t.block = target;
                    t.pc = 0;
                }
            }
        }
    };

    estats.halt_cycle = cycle;
    Ok(finish_result(cycle, mem_refs, stop, channels, vec![estats]))
}

/// Publish a finished run's telemetry: per-channel counters
/// (`sim.channel.<space>.{reads,writes,busy_cycles,wait_cycles,max_queue_depth}`),
/// a final `sim.channel.<space>.occupancy` sample, and per-engine stall
/// breakdowns (`sim.engine.<i>.{instructions,swap_outs,idle_cycles,packets}`
/// counters plus a `sim.engine.idle_frac` sample per engine).
pub(crate) fn emit_result_obs(obs: &nova_obs::Obs, res: &SimResult) {
    if !obs.enabled() {
        return;
    }
    obs.counter("sim.cycles", res.cycles);
    obs.counter("sim.instructions", res.instructions);
    obs.counter("sim.packets", res.packets);
    obs.counter("sim.bytes", res.bytes);
    for c in &res.channels {
        let space = format!("{:?}", c.space).to_lowercase();
        obs.counter(&format!("sim.channel.{space}.reads"), c.reads);
        obs.counter(&format!("sim.channel.{space}.writes"), c.writes);
        obs.counter(&format!("sim.channel.{space}.busy_cycles"), c.busy_cycles);
        obs.counter(&format!("sim.channel.{space}.wait_cycles"), c.wait_cycles);
        obs.counter(
            &format!("sim.channel.{space}.max_queue_depth"),
            c.max_queue_depth as u64,
        );
        obs.sample(
            &format!("sim.channel.{space}.occupancy"),
            c.occupancy(res.cycles),
        );
    }
    for e in &res.engines {
        let i = e.engine;
        obs.counter(&format!("sim.engine.{i}.instructions"), e.instructions);
        obs.counter(&format!("sim.engine.{i}.swap_outs"), e.swap_outs);
        obs.counter(&format!("sim.engine.{i}.idle_cycles"), e.idle_cycles);
        obs.counter(&format!("sim.engine.{i}.packets"), e.packets);
        if res.cycles > 0 {
            obs.sample(
                "sim.engine.idle_frac",
                e.idle_cycles as f64 / res.cycles as f64,
            );
        }
    }
}

/// Assemble a [`SimResult`] from the raw counters shared by both
/// simulators.
pub(crate) fn finish_result(
    cycles: u64,
    mem_refs: HashMap<MemSpace, (u64, u64)>,
    stop: StopReason,
    channels: [Channel; 3],
    engines: Vec<EngineStats>,
) -> SimResult {
    let instructions = engines.iter().map(|e| e.instructions).sum();
    let packets = engines.iter().map(|e| e.packets).sum();
    let bytes: u64 = engines.iter().map(|e| e.bytes).sum();
    let seconds = cycles as f64 / CLOCK_HZ as f64;
    let mbps = if seconds > 0.0 {
        (bytes as f64 * 8.0) / seconds / 1.0e6
    } else {
        0.0
    };
    SimResult {
        cycles,
        instructions,
        mem_refs,
        packets,
        bytes,
        stop,
        mbps,
        channels: channels.into_iter().map(|c| c.stats).collect(),
        engines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_machine::{Addr, AluOp, Block, Cond};

    fn r(bank: Bank, n: u8) -> PhysReg {
        PhysReg::new(bank, n)
    }

    #[test]
    fn straight_line_arithmetic() {
        // immed a0, 6; immed b0, 7; add a1, a0, b0; mov s0, a1; write
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::Imm {
                        dst: r(Bank::A, 0),
                        val: 6,
                    },
                    Instr::Imm {
                        dst: r(Bank::B, 0),
                        val: 7,
                    },
                    Instr::Alu {
                        op: AluOp::Add,
                        dst: r(Bank::A, 1),
                        a: r(Bank::A, 0),
                        b: AluSrc::Reg(r(Bank::B, 0)),
                    },
                    Instr::Move {
                        dst: r(Bank::S, 0),
                        src: r(Bank::A, 1),
                    },
                    Instr::MemWrite {
                        space: MemSpace::Sram,
                        addr: Addr::Imm(10),
                        src: vec![r(Bank::S, 0)],
                    },
                ],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let mut mem = SimMemory::with_sizes(64, 64, 64);
        let res = simulate(
            &prog,
            &mut mem,
            &SimConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(mem.sram[10], 13);
        assert_eq!(res.stop, StopReason::AllHalted);
        assert!(res.cycles >= 6);
        assert_eq!(res.engines.len(), 1);
        assert_eq!(res.engines[0].instructions, res.instructions);
        let sram = &res.channels[ixp_machine::Channel::index(MemSpace::Sram)];
        assert_eq!(sram.writes, 1);
    }

    #[test]
    fn loops_and_branches() {
        // a0 = 0; L1: a0 += 1; if a0 < 5 goto L1; store a0.
        let prog = Program {
            blocks: vec![
                Block {
                    instrs: vec![Instr::Imm {
                        dst: r(Bank::A, 0),
                        val: 0,
                    }],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    instrs: vec![Instr::Alu {
                        op: AluOp::Add,
                        dst: r(Bank::A, 0),
                        a: r(Bank::A, 0),
                        b: AluSrc::Imm(1),
                    }],
                    term: Terminator::Branch {
                        cond: Cond::Lt,
                        a: r(Bank::A, 0),
                        b: AluSrc::Imm(5),
                        if_true: BlockId(1),
                        if_false: BlockId(2),
                    },
                },
                Block {
                    instrs: vec![
                        Instr::Move {
                            dst: r(Bank::S, 0),
                            src: r(Bank::A, 0),
                        },
                        Instr::MemWrite {
                            space: MemSpace::Sram,
                            addr: Addr::Imm(0),
                            src: vec![r(Bank::S, 0)],
                        },
                    ],
                    term: Terminator::Halt,
                },
            ],
            entry: BlockId(0),
        };
        // ALU b-operand immediates over 31 are a validator error, but 1 and
        // 5 are fine.
        let mut mem = SimMemory::with_sizes(16, 16, 16);
        simulate(
            &prog,
            &mut mem,
            &SimConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(mem.sram[0], 5);
    }

    #[test]
    fn memory_latency_blocks_thread() {
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![Instr::MemRead {
                    space: MemSpace::Sdram,
                    addr: Addr::Imm(0),
                    dst: vec![r(Bank::Ld, 0), r(Bank::Ld, 1)],
                }],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let mut mem = SimMemory::with_sizes(16, 16, 16);
        mem.sdram[0] = 0xAA;
        let res = simulate(
            &prog,
            &mut mem,
            &SimConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            res.cycles >= read_latency(MemSpace::Sdram),
            "cycles: {}",
            res.cycles
        );
        assert_eq!(res.engines[0].swap_outs, 1);
        assert!(
            res.engines[0].idle_cycles > 0,
            "the lone context waits on the read"
        );
    }

    #[test]
    fn multithreading_hides_latency() {
        // Each context: read sdram, halt. With 4 threads the reads overlap.
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![Instr::MemRead {
                    space: MemSpace::Sdram,
                    addr: Addr::Imm(0),
                    dst: vec![r(Bank::Ld, 0), r(Bank::Ld, 1)],
                }],
                term: Terminator::Halt,
            }],
            entry: BlockId(0),
        };
        let mut m1 = SimMemory::with_sizes(16, 16, 16);
        let r1 = simulate(
            &prog,
            &mut m1,
            &SimConfig {
                threads: 1,
                max_cycles: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap();
        let mut m4 = SimMemory::with_sizes(16, 16, 16);
        let r4 = simulate(
            &prog,
            &mut m4,
            &SimConfig {
                threads: 4,
                max_cycles: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap();
        // 4 reads but nowhere near 4x the time.
        assert!(
            r4.cycles < r1.cycles * 3,
            "1t {} vs 4t {}",
            r1.cycles,
            r4.cycles
        );
    }

    #[test]
    fn packet_flow() {
        // rx -> tx loop until the queue drains.
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![
                    Instr::RxPacket {
                        len_dst: r(Bank::A, 0),
                        addr_dst: r(Bank::A, 1),
                    },
                    Instr::TxPacket {
                        addr: r(Bank::A, 1),
                        len: r(Bank::A, 0),
                    },
                ],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        };
        let mut mem = SimMemory::with_sizes(16, 256, 16);
        for i in 0..5 {
            mem.rx_queue.push_back((64, i * 16));
        }
        let res = simulate(&prog, &mut mem, &SimConfig::default()).unwrap();
        assert_eq!(res.packets, 5);
        assert_eq!(res.bytes, 320);
        assert_eq!(mem.tx_log.len(), 5);
        assert!(res.mbps > 0.0);
        assert_eq!(res.engines[0].packets, 5);
    }

    #[test]
    fn cycle_limit_enforced() {
        let prog = Program {
            blocks: vec![Block {
                instrs: vec![],
                term: Terminator::Jump(BlockId(0)),
            }],
            entry: BlockId(0),
        };
        let mut mem = SimMemory::default();
        let res = simulate(
            &prog,
            &mut mem,
            &SimConfig {
                threads: 1,
                max_cycles: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.stop, StopReason::CycleLimit);
    }
}
