//! Channel fault injection: perturbed memory channels slow a run down
//! deterministically, never wedge it — the cycle watchdog still fires
//! and partial statistics still come back.

use ixp_machine::{
    Addr, AluOp, AluSrc, Bank, Block, BlockId, ChannelFaults, Instr, MemSpace, PhysReg, Program,
    Terminator,
};
use ixp_sim::{simulate, simulate_chip, ChipConfig, SimConfig, SimMemory, StopReason};

fn reg(b: Bank, n: u8) -> PhysReg {
    PhysReg::new(b, n)
}

/// A program that never halts: an ALU op and an SRAM read, forever.
fn spin_forever() -> Program<PhysReg> {
    Program {
        blocks: vec![Block {
            instrs: vec![
                Instr::Alu {
                    op: AluOp::Add,
                    dst: reg(Bank::A, 0),
                    a: reg(Bank::A, 0),
                    b: AluSrc::Imm(1),
                },
                Instr::MemRead {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(0),
                    dst: vec![reg(Bank::L, 0)],
                },
            ],
            term: Terminator::Jump(BlockId(0)),
        }],
        entry: BlockId(0),
    }
}

/// A short program: read two words, add, store, halt.
fn read_add_store() -> Program<PhysReg> {
    Program {
        blocks: vec![Block {
            instrs: vec![
                Instr::MemRead {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(0),
                    dst: vec![reg(Bank::L, 0), reg(Bank::L, 1)],
                },
                Instr::Move {
                    dst: reg(Bank::A, 0),
                    src: reg(Bank::L, 0),
                },
                Instr::Move {
                    dst: reg(Bank::B, 0),
                    src: reg(Bank::L, 1),
                },
                Instr::Alu {
                    op: AluOp::Add,
                    dst: reg(Bank::A, 1),
                    a: reg(Bank::A, 0),
                    b: AluSrc::Reg(reg(Bank::B, 0)),
                },
                Instr::Move {
                    dst: reg(Bank::S, 0),
                    src: reg(Bank::A, 1),
                },
                Instr::MemWrite {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(8),
                    src: vec![reg(Bank::S, 0)],
                },
            ],
            term: Terminator::Halt,
        }],
        entry: BlockId(0),
    }
}

const FAULTS: ChannelFaults = ChannelFaults {
    stall_every: 2,
    stall_cycles: 64,
    drop_every: 3,
};

#[test]
fn faults_slow_the_run_but_preserve_results() {
    let run = |faults: ChannelFaults| {
        let mut mem = SimMemory::with_sizes(64, 16, 16);
        mem.sram[0] = 30;
        mem.sram[1] = 12;
        let res = simulate(
            &read_add_store(),
            &mut mem,
            &SimConfig {
                threads: 1,
                max_cycles: 1 << 20,
                faults,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(res.stop, StopReason::AllHalted);
        assert_eq!(mem.sram[8], 42, "faults must not corrupt data");
        res.cycles
    };
    let clean = run(ChannelFaults::default());
    let faulty = run(FAULTS);
    assert!(
        faulty > clean,
        "injected stalls/retries must cost cycles ({clean} vs {faulty})"
    );
    // Deterministic: the same knobs reproduce the same slowdown.
    assert_eq!(faulty, run(FAULTS));
}

#[test]
fn watchdog_still_fires_under_faults_with_partial_stats() {
    const LIMIT: u64 = 5_000;
    let mut mem = SimMemory::with_sizes(64, 16, 16);
    let res = simulate(
        &spin_forever(),
        &mut mem,
        &SimConfig {
            threads: 2,
            max_cycles: LIMIT,
            faults: FAULTS,
            ..SimConfig::default()
        },
    )
    .unwrap();
    assert_eq!(res.stop, StopReason::CycleLimit);
    assert!(res.instructions > 0, "partial stats survive the cutoff");
    let sram = &res.channels[ixp_machine::Channel::index(MemSpace::Sram)];
    assert!(sram.reads > 0);
    assert!(sram.stalled > 0, "stalls were injected and counted");
    assert!(sram.dropped > 0, "drops were injected and counted");
    assert!(
        sram.wait_cycles > 0,
        "injected stalls show up as queueing delay"
    );
}

#[test]
fn chip_simulator_honors_faults_and_cycle_limit() {
    const LIMIT: u64 = 5_000;
    let mut mem = SimMemory::with_sizes(64, 16, 16);
    let res = simulate_chip(
        &spin_forever(),
        &mut mem,
        &ChipConfig {
            engines: 2,
            contexts: 2,
            max_cycles: LIMIT,
            faults: FAULTS,
            ..ChipConfig::default()
        },
    )
    .unwrap();
    assert_eq!(res.stop, StopReason::CycleLimit);
    assert!(res.instructions > 0);
    let sram = &res.channels[ixp_machine::Channel::index(MemSpace::Sram)];
    assert!(sram.stalled > 0);
    assert!(sram.dropped > 0);
}
