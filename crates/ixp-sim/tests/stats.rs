//! Statistics contracts: cycle-limit partial results and channel
//! queue-depth accounting, on both simulators, plus the observability
//! events the instrumented entry points emit for them.

use ixp_machine::{
    Addr, AluOp, AluSrc, Bank, Block, BlockId, Instr, MemSpace, PhysReg, Program, Terminator,
};
use ixp_sim::{
    simulate, simulate_chip, simulate_chip_with, simulate_with, ChipConfig, SimConfig, SimMemory,
    StopReason,
};
use nova_obs::{MemoryRecorder, Obs};

fn reg(b: Bank, n: u8) -> PhysReg {
    PhysReg::new(b, n)
}

/// A program that never halts: an ALU op and an SRAM read, forever.
fn spin_forever() -> Program<PhysReg> {
    Program {
        blocks: vec![Block {
            instrs: vec![
                Instr::Alu {
                    op: AluOp::Add,
                    dst: reg(Bank::A, 0),
                    a: reg(Bank::A, 0),
                    b: AluSrc::Imm(1),
                },
                Instr::MemRead {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(0),
                    dst: vec![reg(Bank::L, 0)],
                },
            ],
            term: Terminator::Jump(BlockId(0)),
        }],
        entry: BlockId(0),
    }
}

#[test]
fn cycle_limit_returns_partial_stats() {
    const LIMIT: u64 = 2_000;
    let mut mem = SimMemory::with_sizes(64, 16, 16);
    let res = simulate(
        &spin_forever(),
        &mut mem,
        &SimConfig {
            threads: 2,
            max_cycles: LIMIT,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(res.stop, StopReason::CycleLimit);
    // The run is cut off, but everything accumulated so far must be
    // reported: issued instructions, channel traffic, engine telemetry.
    assert!(
        res.cycles >= LIMIT,
        "stopped at or after the budget: {}",
        res.cycles
    );
    assert!(res.instructions > 0, "partial instruction count survives");
    let sram = &res.channels[0];
    assert_eq!(sram.space, MemSpace::Sram);
    assert!(sram.reads > 0, "partial channel reads survive");
    assert!(sram.busy_cycles > 0, "partial channel busy time survives");
    assert_eq!(res.engines.len(), 1);
    assert!(res.engines[0].instructions > 0);
    assert_eq!(res.packets, 0, "the spin loop transmits nothing");

    // Doubling the budget must scale the partial work: the limit is a
    // real cut-off, not an early abort.
    let mut mem2 = SimMemory::with_sizes(64, 16, 16);
    let res2 = simulate(
        &spin_forever(),
        &mut mem2,
        &SimConfig {
            threads: 2,
            max_cycles: 2 * LIMIT,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(res2.stop, StopReason::CycleLimit);
    assert!(res2.instructions > res.instructions);
}

#[test]
fn chip_cycle_limit_reports_every_engine() {
    const LIMIT: u64 = 2_000;
    let mut mem = SimMemory::with_sizes(64, 16, 16);
    let cfg = ChipConfig {
        engines: 3,
        contexts: 2,
        max_cycles: LIMIT,
        ..ChipConfig::default()
    };
    let res = simulate_chip(&spin_forever(), &mut mem, &cfg).unwrap();
    assert_eq!(res.stop, StopReason::CycleLimit);
    assert_eq!(res.engines.len(), 3);
    for e in &res.engines {
        assert!(
            e.instructions > 0,
            "engine {} issued before the cut-off",
            e.engine
        );
    }
    let total: u64 = res.engines.iter().map(|e| e.instructions).sum();
    assert_eq!(
        total, res.instructions,
        "per-engine counts sum to the total"
    );
}

#[test]
fn queue_depth_tracks_contending_requesters_per_epoch() {
    // Queue depth is an arbitration-epoch statistic: the chip simulator
    // batches the requests contending for a channel and records the
    // largest batch. Every context of every engine issues its SRAM read
    // in the same epoch here, so the recorded maximum must equal the
    // total requester count.
    let one_read = Program {
        blocks: vec![Block {
            instrs: vec![Instr::MemRead {
                space: MemSpace::Sram,
                addr: Addr::Imm(0),
                dst: vec![reg(Bank::L, 0)],
            }],
            term: Terminator::Halt,
        }],
        entry: BlockId(0),
    };
    let chip = |engines: usize, contexts: usize| {
        let mut mem = SimMemory::with_sizes(64, 16, 16);
        let cfg = ChipConfig {
            engines,
            contexts,
            ..ChipConfig::default()
        };
        simulate_chip(&one_read, &mut mem, &cfg).unwrap()
    };
    let solo = chip(1, 1);
    assert_eq!(
        solo.channels[0].max_queue_depth, 1,
        "one requester, depth 1"
    );
    assert_eq!(solo.channels[0].wait_cycles, 0, "nothing to queue behind");
    let four = chip(2, 2);
    assert_eq!(
        four.channels[0].max_queue_depth, 4,
        "2 engines x 2 contexts contend"
    );
    assert_eq!(four.channels[0].reads, 4);
    assert!(
        four.channels[0].wait_cycles > 0,
        "latecomers in the batch waited"
    );
    // Untouched channels must stay at depth 0.
    assert_eq!(four.channels[1].space, MemSpace::Sdram);
    assert_eq!(four.channels[1].max_queue_depth, 0);
    assert_eq!(four.channels[2].max_queue_depth, 0);

    // The per-reference single-engine simulator drives channels without
    // arbitration epochs; its documented contract is that the depth
    // statistic stays 0 and contention shows up as wait cycles instead.
    let mut mem = SimMemory::with_sizes(64, 16, 16);
    let serial = simulate(
        &one_read,
        &mut mem,
        &SimConfig {
            threads: 4,
            max_cycles: 1 << 20,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(serial.channels[0].max_queue_depth, 0);
    assert!(serial.channels[0].wait_cycles > 0);
}

#[test]
fn instrumented_run_reports_partial_stats_as_events() {
    const LIMIT: u64 = 2_000;
    let rec = MemoryRecorder::new();
    let obs = Obs::new(rec.clone());
    let mut mem = SimMemory::with_sizes(64, 16, 16);
    let res = simulate_with(
        &spin_forever(),
        &mut mem,
        &SimConfig {
            threads: 2,
            max_cycles: LIMIT,
            ..Default::default()
        },
        &obs,
    )
    .unwrap();
    assert_eq!(res.stop, StopReason::CycleLimit);
    let sum = rec.summary();
    assert!(
        sum.span("phase.sim").is_some(),
        "sim phase span closes on cycle-limit too"
    );
    assert_eq!(sum.counter_total("sim.cycles"), Some(res.cycles));
    assert_eq!(
        sum.counter_total("sim.instructions"),
        Some(res.instructions)
    );
    assert_eq!(
        sum.counter_total("sim.channel.sram.reads"),
        Some(res.channels[0].reads),
        "partial channel telemetry is mirrored into counters"
    );
    assert_eq!(
        sum.counter_total("sim.channel.sram.max_queue_depth"),
        Some(res.channels[0].max_queue_depth as u64)
    );
}

#[test]
fn chip_and_engine_events_match_result() {
    let rec = MemoryRecorder::new();
    let obs = Obs::new(rec.clone());
    let mut mem = SimMemory::with_sizes(64, 16, 16);
    let cfg = ChipConfig {
        engines: 2,
        contexts: 2,
        max_cycles: 2_000,
        ..ChipConfig::default()
    };
    let res = simulate_chip_with(&spin_forever(), &mut mem, &cfg, &obs).unwrap();
    let sum = rec.summary();
    assert_eq!(sum.counter_total("sim.cycles"), Some(res.cycles));
    for e in &res.engines {
        assert_eq!(
            sum.counter_total(&format!("sim.engine.{}.instructions", e.engine)),
            Some(e.instructions)
        );
    }
    // The windowed occupancy sampler only fires every 16 384 modeled
    // cycles; a 2 000-cycle run must rely on the end-of-run summary
    // sample instead, which is always present per channel.
    assert!(sum.sample("sim.channel.sram.occupancy").is_some());
}
