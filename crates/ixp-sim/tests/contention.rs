//! Timing-model behaviour: channel contention and latency hiding.

use ixp_machine::timing::{burst_extra, read_latency};
use ixp_machine::{Addr, Bank, Block, BlockId, Instr, MemSpace, PhysReg, Program, Terminator};
use ixp_sim::{simulate, simulate_chip, ChipConfig, SimConfig, SimMemory};

fn reg(b: Bank, n: u8) -> PhysReg {
    PhysReg::new(b, n)
}

/// N back-to-back SRAM reads in one thread.
fn serial_reads(n: usize) -> Program<PhysReg> {
    let instrs = (0..n)
        .map(|i| Instr::MemRead {
            space: MemSpace::Sram,
            addr: Addr::Imm(i as u32),
            dst: vec![reg(Bank::L, 0)],
        })
        .collect();
    Program {
        blocks: vec![Block {
            instrs,
            term: Terminator::Halt,
        }],
        entry: BlockId(0),
    }
}

#[test]
fn serial_reads_pay_full_latency() {
    let one = {
        let mut m = SimMemory::with_sizes(64, 16, 16);
        simulate(
            &serial_reads(1),
            &mut m,
            &SimConfig {
                threads: 1,
                max_cycles: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap()
        .cycles
    };
    let ten = {
        let mut m = SimMemory::with_sizes(64, 16, 16);
        simulate(
            &serial_reads(10),
            &mut m,
            &SimConfig {
                threads: 1,
                max_cycles: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap()
        .cycles
    };
    // A single thread cannot overlap its own reads: ~10x the single-read
    // time.
    assert!(ten > one * 8, "one={one} ten={ten}");
}

#[test]
fn threads_overlap_but_channel_serializes_bursts() {
    // 4 threads each read 8 words: the channel's per-word occupancy
    // bounds the speedup below perfect overlap.
    let prog = Program {
        blocks: vec![Block {
            instrs: vec![Instr::MemRead {
                space: MemSpace::Sram,
                addr: Addr::Imm(0),
                dst: (0..8).map(|i| reg(Bank::L, i)).collect(),
            }],
            term: Terminator::Halt,
        }],
        entry: BlockId(0),
    };
    let t1 = {
        let mut m = SimMemory::with_sizes(64, 16, 16);
        simulate(
            &prog,
            &mut m,
            &SimConfig {
                threads: 1,
                max_cycles: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap()
        .cycles
    };
    let t4 = {
        let mut m = SimMemory::with_sizes(64, 16, 16);
        simulate(
            &prog,
            &mut m,
            &SimConfig {
                threads: 4,
                max_cycles: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap()
        .cycles
    };
    assert!(t4 < t1 * 4, "overlap must help: t1={t1} t4={t4}");
    assert!(t4 > t1, "but four bursts cannot be free: t1={t1} t4={t4}");
}

#[test]
fn six_engines_serialize_on_one_sdram_channel() {
    // Six engines, one context each, all issuing an 8-word SDRAM burst in
    // the same cycle: the shared channel must grant them one at a time,
    // each occupying the bus for its burst. With every engine running the
    // identical program the issue cycle is identical too, so the expected
    // channel telemetry is exact.
    const WORDS: usize = 8;
    const ENGINES: usize = 6;
    let prog = Program {
        blocks: vec![Block {
            instrs: vec![Instr::MemRead {
                space: MemSpace::Sdram,
                addr: Addr::Imm(0),
                dst: (0..WORDS as u8).map(|i| reg(Bank::Ld, i)).collect(),
            }],
            term: Terminator::Halt,
        }],
        entry: BlockId(0),
    };
    let run = |engines: usize| {
        let mut m = SimMemory::with_sizes(16, 64, 16);
        let cfg = ChipConfig {
            engines,
            contexts: 1,
            ..ChipConfig::default()
        };
        simulate_chip(&prog, &mut m, &cfg).unwrap()
    };
    let one = run(1);
    let six = run(ENGINES);

    // Bus occupancy per burst read: the burst transfer plus the grant slot.
    let per_burst = burst_extra(MemSpace::Sdram) * WORDS as u64 + 1;
    let sdram = &six.channels[1];
    assert_eq!(sdram.space, MemSpace::Sdram);
    assert_eq!(sdram.reads, ENGINES as u64);
    assert_eq!(
        sdram.busy_cycles,
        ENGINES as u64 * per_burst,
        "bursts serialize on the bus"
    );
    // Request k (0-based, canonical engine order) waits k full bursts.
    let expected_wait: u64 = (0..ENGINES as u64).map(|k| k * per_burst).sum();
    assert_eq!(sdram.wait_cycles, expected_wait, "FIFO queueing delay");
    assert_eq!(
        sdram.max_queue_depth, ENGINES,
        "all six contended in one epoch"
    );

    // The last engine cannot finish before five whole bursts of queueing
    // plus its own read; a single engine pays only the unloaded latency.
    let unloaded = read_latency(MemSpace::Sdram) + burst_extra(MemSpace::Sdram) * WORDS as u64;
    assert!(
        six.cycles >= 5 * per_burst + unloaded,
        "six-engine run: {}",
        six.cycles
    );
    assert!(
        one.cycles < six.cycles,
        "contention must cost: {} vs {}",
        one.cycles,
        six.cycles
    );
}

#[test]
fn scratch_beats_sram_beats_sdram() {
    let mk = |space: MemSpace, n: usize| Program {
        blocks: vec![Block {
            instrs: (0..n)
                .map(|i| Instr::MemRead {
                    space,
                    addr: Addr::Imm(i as u32 * 2),
                    dst: if space == MemSpace::Sdram {
                        vec![reg(Bank::Ld, 0), reg(Bank::Ld, 1)]
                    } else {
                        vec![reg(Bank::L, 0)]
                    },
                })
                .collect(),
            term: Terminator::Halt,
        }],
        entry: BlockId(0),
    };
    let run = |p: &Program<PhysReg>| {
        let mut m = SimMemory::with_sizes(64, 64, 64);
        simulate(
            p,
            &mut m,
            &SimConfig {
                threads: 1,
                max_cycles: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap()
        .cycles
    };
    let scratch = run(&mk(MemSpace::Scratch, 8));
    let sram = run(&mk(MemSpace::Sram, 8));
    let sdram = run(&mk(MemSpace::Sdram, 8));
    assert!(scratch < sram, "scratch {scratch} vs sram {sram}");
    assert!(sram < sdram, "sram {sram} vs sdram {sdram}");
}
