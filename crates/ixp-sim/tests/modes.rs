//! Differential tests of the two scheduler modes: the event-driven fast
//! path must be bit-identical to the cycle-slice oracle — same cycles,
//! same telemetry, same channel stats, same memory image, same transmit
//! log — on every workload shape, at every host thread count, for any
//! traffic seed. The fast path is only allowed to change how much *host*
//! time a run costs.

use ixp_machine::{Addr, Bank, Block, BlockId, Instr, MemSpace, PhysReg, Program, Terminator};
use ixp_sim::{simulate_chip, ChipConfig, SimMemory, SimMode, SimResult, StopReason, TrafficSpec};
use proptest::prelude::*;

fn r(bank: Bank, n: u8) -> PhysReg {
    PhysReg::new(bank, n)
}

/// rx -> burst read -> header rewrite -> tx, forever.
fn rewriting_forwarder() -> Program<PhysReg> {
    Program {
        blocks: vec![Block {
            instrs: vec![
                Instr::RxPacket {
                    len_dst: r(Bank::A, 0),
                    addr_dst: r(Bank::A, 1),
                },
                Instr::MemRead {
                    space: MemSpace::Sdram,
                    addr: Addr::Reg(r(Bank::A, 1), 0),
                    dst: vec![r(Bank::Ld, 0), r(Bank::Ld, 1)],
                },
                Instr::Alu {
                    op: ixp_machine::AluOp::Xor,
                    dst: r(Bank::Sd, 0),
                    a: r(Bank::Ld, 0),
                    b: ixp_machine::AluSrc::Imm(0xFFFF),
                },
                Instr::Move {
                    dst: r(Bank::Sd, 1),
                    src: r(Bank::Ld, 1),
                },
                Instr::MemWrite {
                    space: MemSpace::Sdram,
                    addr: Addr::Reg(r(Bank::A, 1), 0),
                    src: vec![r(Bank::Sd, 0), r(Bank::Sd, 1)],
                },
                Instr::TxPacket {
                    addr: r(Bank::A, 1),
                    len: r(Bank::A, 0),
                },
            ],
            term: Terminator::Jump(BlockId(0)),
        }],
        entry: BlockId(0),
    }
}

/// A workload with SRAM contention and a shared-counter race on top of
/// packet forwarding: every packet also bumps a shared SRAM counter via
/// test-and-set-free read/write (races resolve in canonical order).
fn counting_forwarder() -> Program<PhysReg> {
    Program {
        blocks: vec![Block {
            instrs: vec![
                Instr::RxPacket {
                    len_dst: r(Bank::A, 0),
                    addr_dst: r(Bank::A, 1),
                },
                Instr::MemRead {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(0),
                    dst: vec![r(Bank::L, 0)],
                },
                Instr::Alu {
                    op: ixp_machine::AluOp::Add,
                    dst: r(Bank::S, 0),
                    a: r(Bank::L, 0),
                    b: ixp_machine::AluSrc::Imm(1),
                },
                Instr::MemWrite {
                    space: MemSpace::Sram,
                    addr: Addr::Imm(0),
                    src: vec![r(Bank::S, 0)],
                },
                Instr::TxPacket {
                    addr: r(Bank::A, 1),
                    len: r(Bank::A, 0),
                },
            ],
            term: Terminator::Jump(BlockId(0)),
        }],
        entry: BlockId(0),
    }
}

/// Timed traffic memory from a TrafficSpec trace, all steered to one chip
/// with a 16-slot ring of 16-word buffers.
fn traffic_mem(packets: usize, seed: u64, capacity: usize) -> SimMemory {
    let trace = TrafficSpec {
        packets,
        flows: 24,
        length_classes: vec![64, 200, 576],
        seed,
        ..TrafficSpec::default()
    }
    .generate();
    let mut mem = SimMemory::with_sizes(64, 4096, 64);
    mem.rx_capacity = capacity;
    for (i, p) in trace.iter().enumerate() {
        mem.rx_arrivals
            .push_back((p.arrival, p.bytes, (i % 32 * 16) as u32));
    }
    mem
}

fn fingerprint(res: &SimResult, mem: &SimMemory) -> impl PartialEq + std::fmt::Debug {
    (
        (
            res.cycles,
            res.instructions,
            res.packets,
            res.bytes,
            res.mem_refs.clone(),
            res.stop,
            res.channels.clone(),
            res.engines.clone(),
        ),
        (
            mem.sram.clone(),
            mem.sdram.clone(),
            mem.scratch.clone(),
            mem.csr.clone(),
            mem.tx_log.clone(),
            mem.rx_grants.clone(),
            mem.rx_dropped,
        ),
    )
}

fn run(
    prog: &Program<PhysReg>,
    mut mem: SimMemory,
    mode: SimMode,
    host_threads: usize,
    max_cycles: u64,
) -> (impl PartialEq + std::fmt::Debug, StopReason) {
    let cfg = ChipConfig {
        engines: 3,
        contexts: 2,
        host_threads,
        max_cycles,
        mode,
        ..ChipConfig::default()
    };
    let res = simulate_chip(prog, &mut mem, &cfg).expect("simulation");
    let stop = res.stop;
    (fingerprint(&res, &mem), stop)
}

#[test]
fn modes_agree_on_every_workload_and_host_thread_count() {
    let progs = [rewriting_forwarder(), counting_forwarder()];
    for prog in &progs {
        for host_threads in [1usize, 2, 4] {
            let (slow, stop) = run(
                prog,
                traffic_mem(200, 0xBEEF, 8),
                SimMode::CycleSlice,
                host_threads,
                u64::MAX,
            );
            let (fast, _) = run(
                prog,
                traffic_mem(200, 0xBEEF, 8),
                SimMode::FastPath,
                host_threads,
                u64::MAX,
            );
            assert_eq!(stop, StopReason::AllHalted);
            assert_eq!(slow, fast, "{host_threads} host threads");
        }
    }
}

#[test]
fn modes_agree_on_partial_cycle_limited_runs() {
    // Cut the run off mid-trace at an uneven budget (not a slice
    // multiple), in the middle of a skip window for the fast path.
    let prog = rewriting_forwarder();
    for budget in [1_001u64, 4_999, 20_000] {
        let (slow, stop) = run(
            &prog,
            traffic_mem(300, 7, 4),
            SimMode::CycleSlice,
            1,
            budget,
        );
        let (fast, _) = run(&prog, traffic_mem(300, 7, 4), SimMode::FastPath, 1, budget);
        assert_eq!(stop, StopReason::CycleLimit, "budget {budget} must cut off");
        assert_eq!(slow, fast, "budget {budget}");
    }
}

#[test]
fn modes_agree_on_the_legacy_preloaded_queue() {
    // No timed arrivals at all: the original rx_queue model.
    let prog = counting_forwarder();
    let mem = || {
        let mut m = SimMemory::with_sizes(64, 4096, 64);
        for i in 0..48u32 {
            m.rx_queue.push_back((64, (i % 16) * 16));
        }
        m
    };
    let (slow, _) = run(&prog, mem(), SimMode::CycleSlice, 2, u64::MAX);
    let (fast, _) = run(&prog, mem(), SimMode::FastPath, 2, u64::MAX);
    assert_eq!(slow, fast);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any traffic seed, any buffer bound, any host thread count: the
    /// fast path and the oracle tell exactly the same story, drops and
    /// all.
    #[test]
    fn modes_agree_for_random_traffic(
        seed in any::<u64>(),
        packets in 50usize..250,
        capacity in 0usize..12,
        host_threads in 1usize..=4,
    ) {
        let prog = rewriting_forwarder();
        let (slow, _) = run(
            &prog,
            traffic_mem(packets, seed, capacity),
            SimMode::CycleSlice,
            host_threads,
            u64::MAX,
        );
        let (fast, _) = run(
            &prog,
            traffic_mem(packets, seed, capacity),
            SimMode::FastPath,
            host_threads,
            u64::MAX,
        );
        prop_assert_eq!(slow, fast);
    }
}
