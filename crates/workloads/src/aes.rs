//! Reference AES-128 (Rijndael) implementation and the T-tables the Nova
//! benchmark uses.
//!
//! The paper's AES benchmark (§11) follows "the fast C reference
//! implementation available from nist.gov": T-table encryption with the
//! round keys statically expanded and all tables in SRAM. This module is
//! the trusted oracle — validated against the FIPS-197 appendix vectors —
//! and the provider of the tables/keys the harness preloads into the
//! simulated SRAM.

/// The AES S-box.
pub const SBOX: [u8; 256] = {
    // Computed by exponentiation tables at compile time would be nice, but
    // a literal is clearer and verifiable against FIPS-197.
    [
        0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
        0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
        0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
        0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
        0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
        0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
        0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
        0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
        0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
        0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
        0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
        0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
        0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
        0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
        0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
        0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
        0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
        0x16,
    ]
};

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0 })
}

/// Build the four T-tables (encryption). `T0[x] = (2s, s, s, 3s)` in
/// big-endian byte order, `T1..T3` are byte rotations of `T0`.
pub fn t_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    for x in 0..256usize {
        let s = SBOX[x];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        let w = u32::from_be_bytes([s2, s, s, s3]);
        t[0][x] = w;
        t[1][x] = w.rotate_right(8);
        t[2][x] = w.rotate_right(16);
        t[3][x] = w.rotate_right(24);
    }
    t
}

/// AES-128 key expansion: 44 round-key words (big-endian packing).
pub fn expand_key(key: &[u8; 16]) -> [u32; 44] {
    let mut w = [0u32; 44];
    for i in 0..4 {
        w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    let rcon: [u32; 10] = [
        0x0100_0000,
        0x0200_0000,
        0x0400_0000,
        0x0800_0000,
        0x1000_0000,
        0x2000_0000,
        0x4000_0000,
        0x8000_0000,
        0x1b00_0000,
        0x3600_0000,
    ];
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp = sub_word(temp.rotate_left(8)) ^ rcon[i / 4 - 1];
        }
        w[i] = w[i - 4] ^ temp;
    }
    w
}

fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

/// Encrypt one 16-byte block (given as 4 big-endian words) with expanded
/// round keys, using the same T-table formulation the Nova program uses.
pub fn encrypt_block(block: [u32; 4], rk: &[u32; 44]) -> [u32; 4] {
    let t = t_tables();
    let mut s = [
        block[0] ^ rk[0],
        block[1] ^ rk[1],
        block[2] ^ rk[2],
        block[3] ^ rk[3],
    ];
    for round in 1..10 {
        let mut ns = [0u32; 4];
        for i in 0..4 {
            ns[i] = t[0][(s[i] >> 24) as usize]
                ^ t[1][((s[(i + 1) % 4] >> 16) & 0xFF) as usize]
                ^ t[2][((s[(i + 2) % 4] >> 8) & 0xFF) as usize]
                ^ t[3][(s[(i + 3) % 4] & 0xFF) as usize]
                ^ rk[4 * round + i];
        }
        s = ns;
    }
    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    let mut out = [0u32; 4];
    for i in 0..4 {
        let b0 = SBOX[(s[i] >> 24) as usize] as u32;
        let b1 = SBOX[((s[(i + 1) % 4] >> 16) & 0xFF) as usize] as u32;
        let b2 = SBOX[((s[(i + 2) % 4] >> 8) & 0xFF) as usize] as u32;
        let b3 = SBOX[(s[(i + 3) % 4] & 0xFF) as usize] as u32;
        out[i] = (b0 << 24 | b1 << 16 | b2 << 8 | b3) ^ rk[40 + i];
    }
    out
}

/// Encrypt a whole word buffer in place (length must be a multiple of 4
/// words — the paper's implementation likewise requires 16-byte multiples).
pub fn encrypt_words(words: &mut [u32], rk: &[u32; 44]) {
    assert!(
        words.len().is_multiple_of(4),
        "data must be a multiple of 16 bytes"
    );
    for chunk in words.chunks_mut(4) {
        let out = encrypt_block([chunk[0], chunk[1], chunk[2], chunk[3]], rk);
        chunk.copy_from_slice(&out);
    }
}

/// SRAM layout used by the Nova AES program (word addresses).
pub mod layout {
    /// Base of T0 (256 words).
    pub const T0: u32 = 0x000;
    /// Base of T1.
    pub const T1: u32 = 0x100;
    /// Base of T2.
    pub const T2: u32 = 0x200;
    /// Base of T3.
    pub const T3: u32 = 0x300;
    /// Base of the S-box stored one entry per word.
    pub const SBOX: u32 = 0x400;
    /// Base of the 44 round-key words.
    pub const RK: u32 = 0x500;
}

/// Fill SRAM (via the writer) with the tables and round keys the Nova
/// program expects.
pub fn load_sram(key: &[u8; 16], mut write: impl FnMut(u32, u32)) {
    let t = t_tables();
    for (ti, table) in t.iter().enumerate() {
        for (i, w) in table.iter().enumerate() {
            write(layout::T0 + (ti as u32) * 0x100 + i as u32, *w);
        }
    }
    for (i, s) in SBOX.iter().enumerate() {
        write(layout::SBOX + i as u32, *s as u32);
    }
    for (i, w) in expand_key(key).iter().enumerate() {
        write(layout::RK + i as u32, *w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b() {
        // FIPS-197 Appendix B: key 2b7e..., plaintext 3243f6a8...
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rk = expand_key(&key);
        let pt = [0x3243f6a8, 0x885a308d, 0x313198a2, 0xe0370734];
        let ct = encrypt_block(pt, &rk);
        assert_eq!(ct, [0x3925841d, 0x02dc09fb, 0xdc118597, 0x196a0b32]);
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let rk = expand_key(&key);
        let pt = [0x00112233, 0x44556677, 0x8899aabb, 0xccddeeff];
        let ct = encrypt_block(pt, &rk);
        assert_eq!(ct, [0x69c4e0d8, 0x6a7b0430, 0xd8cdb780, 0x70b4c55a]);
    }

    #[test]
    fn key_expansion_first_words() {
        // FIPS-197 Appendix A.1 intermediate values.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let w = expand_key(&key);
        assert_eq!(w[4], 0xa0fafe17);
        assert_eq!(w[43], 0xb6630ca6);
    }

    #[test]
    fn t_table_consistency() {
        // Every Ti is a rotation of T0, and T0's bytes follow (2s, s, s, 3s).
        let t = t_tables();
        for x in 0..256 {
            assert_eq!(t[1][x], t[0][x].rotate_right(8));
            assert_eq!(t[2][x], t[0][x].rotate_right(16));
            assert_eq!(t[3][x], t[0][x].rotate_right(24));
            let b = t[0][x].to_be_bytes();
            assert_eq!(b[1], SBOX[x]);
            assert_eq!(b[2], SBOX[x]);
            assert_eq!(b[0], xtime(SBOX[x]));
            assert_eq!(b[3], xtime(SBOX[x]) ^ SBOX[x]);
        }
    }

    #[test]
    fn multi_block_buffer() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let rk = expand_key(&key);
        let mut buf = vec![0u32; 8];
        buf[0..4].copy_from_slice(&[0x00112233, 0x44556677, 0x8899aabb, 0xccddeeff]);
        buf[4..8].copy_from_slice(&[0x00112233, 0x44556677, 0x8899aabb, 0xccddeeff]);
        encrypt_words(&mut buf, &rk);
        assert_eq!(&buf[0..4], &buf[4..8]);
        assert_eq!(buf[0], 0x69c4e0d8);
    }
}
