//! The paper's benchmark workloads (§11): AES Rijndael, Kasumi, and
//! IPv6→IPv4 NAT.
//!
//! Each workload comes in two forms that must agree bit for bit:
//!
//! * a trusted Rust **reference implementation** ([`aes`], [`kasumi`],
//!   [`nat`]), validated against published test vectors where available;
//! * a **Nova program** ([`nova_programs`]) compiled by this repository's
//!   compiler and executed on the CPS interpreter and the cycle simulator.
//!
//! The equality of the two is the compiler's application-level
//! correctness argument, and the Nova programs drive the Figure 5/6/7 and
//! throughput experiments.

#![warn(missing_docs)]

pub mod aes;
pub mod classifier;
pub mod kasumi;
pub mod nat;
pub mod nova_programs;

pub use classifier::{classifier_rules, classifier_source, ClassifierRule, CLASSIFIER_RULES};
pub use nova_programs::{AES_NOVA, HEADER_BYTES, HEADER_WORDS, KASUMI_NOVA, NAT_NOVA};
