//! The paper's three benchmark programs (§11), written in Nova.
//!
//! Each program implements the fast path of a packet application as a
//! tail-recursive receive loop: synchronize with the receive scheduler
//! (`rx_packet`), process the packet in SDRAM, hand it to the transmit
//! scheduler (`tx_packet`), and loop. Packets carry a 56-byte (14-word)
//! header before the payload.
//!
//! The constants must agree with the memory layouts in
//! [`crate::aes::layout`], [`crate::kasumi::layout`], and
//! the `MAP` table base used by the harnesses.

/// Words of packet header preceding the payload.
pub const HEADER_WORDS: u32 = 14;
/// Bytes of packet header.
pub const HEADER_BYTES: u32 = 56;

/// AES-128 Rijndael over the packet payload (16-byte blocks), T-table
/// formulation with statically expanded round keys in SRAM, maintaining a
/// TCP-style checksum over the ciphertext (stored into the last header
/// word before transmit).
pub const AES_NOVA: &str = r#"
// SRAM layout (must match workloads::aes::layout).
const T0 = 0x000; const T1 = 0x100; const T2 = 0x200; const T3 = 0x300;
const SBOX = 0x400; const RK = 0x500;

// Fast-path header view over the first two header words (the paper's AES
// parses and shifts Ethernet/IP/TCP headers; we check and refresh the
// IP-ish fields and maintain the checksum).
layout fp_hdr = {
    version: 4, ihl: 4, tos: 8, total_len: 16,
    ttl: 8, protocol: 8, hcsum: 16
};

fun main() {
    let (len, addr) = rx_packet();
    try {
        let (w0, w1) = sdram(addr);
        let h = unpack[fp_hdr]((w0, w1));
        if (h.version != 4) raise Slow (addr, len);
        if (h.protocol != 6) raise Slow (addr, len);
        // Decrement the TTL on the way through, as a gateway would.
        let (n0, n1) = pack[fp_hdr] [
            version = h.version, ihl = h.ihl, tos = h.tos,
            total_len = h.total_len, ttl = h.ttl - 1,
            protocol = h.protocol, hcsum = h.hcsum
        ];
        sdram(addr) <- (n0, n1);
        let blocks = (len - 56) >> 4;
        encrypt_blocks(addr + 14, blocks, addr, len, 0)
    } handle Slow (a, l) {
        // Not fast-path traffic: hand to the host CPU unmodified.
        tx_packet(a, l);
        main()
    }
}

// One 16-byte block per iteration; csum accumulates the TCP-style
// ones-complement sum of the ciphertext.
fun encrypt_blocks(p, n, addr, len, csum) {
    if (n == 0) {
        // Fold the checksum and maintain it in the last header word.
        let folded = (csum & 0xFFFF) + (csum >> 16);
        let folded2 = (folded & 0xFFFF) + (folded >> 16);
        let start = addr + 12;
        let (h0, h1) = sdram(start);
        sdram(start) <- (h0, folded2);
        tx_packet(addr, len);
        main()
    } else {
        let (x0, x1, x2, x3) = sdram(p);
        let (k0, k1, k2, k3) = sram(RK);
        rounds(1, x0 ^ k0, x1 ^ k1, x2 ^ k2, x3 ^ k3, p, n, addr, len, csum)
    }
}

fun rounds(i, s0, s1, s2, s3, p, n, addr, len, csum) {
    if (i == 10) {
        final_round(s0, s1, s2, s3, p, n, addr, len, csum)
    } else {
        let (k0, k1, k2, k3) = sram(RK + (i << 2));
        let t0 = col(s0, s1, s2, s3) ^ k0;
        let t1 = col(s1, s2, s3, s0) ^ k1;
        let t2 = col(s2, s3, s0, s1) ^ k2;
        let t3 = col(s3, s0, s1, s2) ^ k3;
        rounds(i + 1, t0, t1, t2, t3, p, n, addr, len, csum)
    }
}

// One MixColumns column via the four T-tables.
fun col(a, b, c, d) {
    let (w0) = sram(T0 + (a >> 24));
    let (w1) = sram(T1 + ((b >> 16) & 0xFF));
    let (w2) = sram(T2 + ((c >> 8) & 0xFF));
    let (w3) = sram(T3 + (d & 0xFF));
    w0 ^ w1 ^ w2 ^ w3
}

fun final_round(s0, s1, s2, s3, p, n, addr, len, csum) {
    let (k0, k1, k2, k3) = sram(RK + 40);
    let c0 = fcol(s0, s1, s2, s3) ^ k0;
    let c1 = fcol(s1, s2, s3, s0) ^ k1;
    let c2 = fcol(s2, s3, s0, s1) ^ k2;
    let c3 = fcol(s3, s0, s1, s2) ^ k3;
    sdram(p) <- (c0, c1, c2, c3);
    let cs = csum + (c0 >> 16) + (c0 & 0xFFFF) + (c1 >> 16) + (c1 & 0xFFFF)
                  + (c2 >> 16) + (c2 & 0xFFFF) + (c3 >> 16) + (c3 & 0xFFFF);
    encrypt_blocks(p + 4, n - 1, addr, len, cs)
}

// Final round column: SubBytes + ShiftRows only.
fun fcol(a, b, c, d) {
    let (b0) = sram(SBOX + (a >> 24));
    let (b1) = sram(SBOX + ((b >> 16) & 0xFF));
    let (b2) = sram(SBOX + ((c >> 8) & 0xFF));
    let (b3) = sram(SBOX + (d & 0xFF));
    (b0 << 24) | (b1 << 16) | (b2 << 8) | b3
}
"#;

/// Kasumi (3GPP structure) over the payload in 8-byte blocks. The S9
/// table lives in SRAM, S7 and the packed per-round subkeys in scratch
/// (one scratch read fetches a round's eight subkey words, the paper's
/// packed-subkey trick).
pub const KASUMI_NOVA: &str = r#"
// Memory layout (must match workloads::kasumi::layout).
const S9 = 0x600;   // SRAM
const S7 = 0x000;   // scratch
const SK = 0x080;   // scratch: 8 subkey words per round

// Same fast-path gate as the AES program (the paper's Kasumi "like
// Rijndael ... shifts headers ... and maintains the TCP checksum").
layout kfp_hdr = {
    version: 4, ihl: 4, tos: 8, total_len: 16,
    ttl: 8, protocol: 8, hcsum: 16
};

fun main() {
    let (len, addr) = rx_packet();
    try {
        let (w0, w1) = sdram(addr);
        let h = unpack[kfp_hdr]((w0, w1));
        if (h.version != 4) raise Slow (addr, len);
        if (h.protocol != 6) raise Slow (addr, len);
        let (n0, n1) = pack[kfp_hdr] [
            version = h.version, ihl = h.ihl, tos = h.tos,
            total_len = h.total_len, ttl = h.ttl - 1,
            protocol = h.protocol, hcsum = h.hcsum
        ];
        sdram(addr) <- (n0, n1);
        let blocks = (len - 56) >> 3;
        kas_blocks(addr + 14, blocks, addr, len, 0)
    } handle Slow (a, l) {
        tx_packet(a, l);
        main()
    }
}

fun kas_blocks(p, n, addr, len, csum) {
    if (n == 0) {
        let folded = (csum & 0xFFFF) + (csum >> 16);
        let folded2 = (folded & 0xFFFF) + (folded >> 16);
        let start = addr + 12;
        let (h0, h1) = sdram(start);
        sdram(start) <- (h0, folded2);
        tx_packet(addr, len);
        main()
    } else {
        let (hi, lo) = sdram(p);
        kas_round(0, hi, lo, p, n, addr, len, csum)
    }
}

// Two Feistel rounds per iteration (odd: FL then FO; even: FO then FL).
fun kas_round(i, left, right, p, n, addr, len, csum) {
    if (i == 8) {
        sdram(p) <- (left, right);
        let cs = csum + (left >> 16) + (left & 0xFFFF) + (right >> 16) + (right & 0xFFFF);
        kas_blocks(p + 2, n - 1, addr, len, cs)
    } else {
        let (kl1, kl2, ko1, ko2, ko3, ki1, ki2, ki3) = scratch(SK + (i << 3));
        let t = fo(fl(left, kl1, kl2), ko1, ko2, ko3, ki1, ki2, ki3);
        let right2 = right ^ t;
        let (ml1, ml2, mo1, mo2, mo3, mi1, mi2, mi3) = scratch(SK + ((i + 1) << 3));
        let u = fl(fo(right2, mo1, mo2, mo3, mi1, mi2, mi3), ml1, ml2);
        kas_round(i + 2, left ^ u, right2, p, n, addr, len, csum)
    }
}

fun fl(x, k1, k2) {
    let l = x >> 16;
    let r = x & 0xFFFF;
    let a = l & k1;
    let rp = r ^ (((a << 1) | (a >> 15)) & 0xFFFF);
    let b = rp | k2;
    let lp = l ^ (((b << 1) | (b >> 15)) & 0xFFFF);
    (lp << 16) | rp
}

fun fo(x, ko1, ko2, ko3, ki1, ki2, ki3) {
    let l0 = x >> 16;
    let r0 = x & 0xFFFF;
    let r1 = fi(l0 ^ ko1, ki1) ^ r0;
    let r2 = fi(r0 ^ ko2, ki2) ^ r1;
    let r3 = fi(r1 ^ ko3, ki3) ^ r2;
    (r2 << 16) | r3
}

fun fi(x, ki) {
    let nine = x >> 7;
    let seven = x & 0x7F;
    let (t9) = sram(S9 + nine);
    let nine2 = t9 ^ seven;
    let (t7) = scratch(S7 + seven);
    let seven2 = (t7 ^ (nine2 & 0x7F)) ^ (ki >> 9);
    let nine3 = nine2 ^ (ki & 0x1FF);
    let (u9) = sram(S9 + nine3);
    let nine4 = u9 ^ seven2;
    let (u7) = scratch(S7 + seven2);
    let seven3 = u7 ^ (nine4 & 0x7F);
    (seven3 << 9) | nine4
}
"#;

/// IPv6 → IPv4 NAT: parse the IPv6 header with layouts, look up the
/// address mapping through the hash unit, build the IPv4 header with
/// `pack`, compute its checksum, move the packet start forward by five
/// words, and transmit. Non-IPv6 / non-TCP packets take the exception
/// path to the slow-path handler (transmitted unmodified here).
pub const NAT_NOVA: &str = r#"
const MAP = 0x700;    // SRAM: 64-entry address-mapping adjustment table

layout ipv6_address = { a1: 32, a2: 32, a3: 32, a4: 32 };
layout ipv6_header = {
    version: 4, traffic: 8, flow: 20,
    payload_length: 16, next_header: 8, hop_limit: 8,
    src: ipv6_address, dst: ipv6_address
};
layout ipv4_header = {
    version: 4, ihl: 4, tos: 8, total_length: 16,
    ident: 16, flags_frag: 16,
    ttl: 8, protocol: 8, checksum: 16,
    src: 32, dst: 32
};

fun main() {
    let (len, addr) = rx_packet();
    try {
        translate(addr, len, SlowPath)
    } handle SlowPath (a, l) {
        // Hand off to the host processor's slow path: transmit unmodified.
        tx_packet(a, l);
        main()
    }
}

fun translate [addr: word, len: word, slow: exn(word, word)] {
    // The 10-word IPv6 header exceeds the 8-word SDRAM burst limit: two
    // reads, recombined into the packed tuple.
    let (w0, w1, w2, w3, w4, w5, w6, w7) = sdram(addr);
    let (w8, w9) = sdram(addr + 8);
    let u = unpack[ipv6_header]((w0, w1, w2, w3, w4, w5, w6, w7, w8, w9));
    if (u.version != 6) raise slow (addr, len);
    if (u.next_header != 6) raise slow (addr, len);
    // Address mapping: hash the low source word into the adjustment table.
    let hs = hash(u.src.a4);
    let (madj) = sram(MAP + (hs & 0x3F));
    let v4src = u.src.a4 + madj;
    let total = u.payload_length + 20;
    let (h0, h1, h2, h3, h4) = pack[ipv4_header] [
        version = 4, ihl = 5, tos = u.traffic, total_length = total,
        ident = 0, flags_frag = 0,
        ttl = u.hop_limit, protocol = u.next_header, checksum = 0,
        src = v4src, dst = u.dst.a4
    ];
    // Ones-complement header checksum.
    let sum = (h0 >> 16) + (h0 & 0xFFFF) + (h1 >> 16) + (h1 & 0xFFFF)
            + (h2 >> 16) + (h2 & 0xFFFF) + (h3 >> 16) + (h3 & 0xFFFF)
            + (h4 >> 16) + (h4 & 0xFFFF);
    let f1 = (sum & 0xFFFF) + (sum >> 16);
    let f2 = (f1 & 0xFFFF) + (f1 >> 16);
    let csum = (~f2) & 0xFFFF;
    let h2f = h2 | csum;
    // The packet start moves forward: the IPv4 header lands in words
    // 5..10, directly in front of the payload (word 10). SDRAM bursts are
    // even-sized, so the write starts at the (even) word 4 with a dummy.
    sdram(addr + 4) <- (0, h0, h1, h2f, h3, h4);
    tx_packet(addr + 5, len - 20);
    main()
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use nova_frontend::{check, parse};

    #[test]
    fn all_three_parse_and_typecheck() {
        for (name, src) in [
            ("aes", AES_NOVA),
            ("kasumi", KASUMI_NOVA),
            ("nat", NAT_NOVA),
        ] {
            let p = parse(src).unwrap_or_else(|d| panic!("{name}: parse: {}", d.render(src)));
            check(&p).unwrap_or_else(|d| panic!("{name}: check: {}", d.render(src)));
        }
    }

    #[test]
    fn figure5_style_static_stats() {
        let nat = parse(NAT_NOVA).unwrap().static_stats();
        assert_eq!(nat.layouts, 3);
        assert_eq!(nat.packs, 1);
        assert_eq!(nat.unpacks, 1);
        assert_eq!(nat.raises, 2);
        assert_eq!(nat.handles, 1);
        let aes = parse(AES_NOVA).unwrap().static_stats();
        assert_eq!(aes.functions, 6);
        assert_eq!(aes.layouts, 1);
        assert_eq!(aes.packs, 1);
        assert_eq!(aes.unpacks, 1);
        assert_eq!(aes.raises, 2);
        assert_eq!(aes.handles, 1);
    }
}
