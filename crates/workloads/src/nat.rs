//! Reference IPv6 → IPv4 network address translation.
//!
//! The paper's third benchmark implements NAT between IPv6 and IPv4
//! headers after Grosse & Lakshman \[17\]: "Because of the different header
//! sizes, the start of the packet must be moved to a new location and
//! care is required in updating the new checksum field."
//!
//! Our packets carry a 40-byte IPv6 header (10 words) followed by the
//! payload. Translation builds a 20-byte IPv4 header (5 words) directly in
//! front of the payload — so the packet start moves forward by 5 words —
//! mapping addresses with the IPv4-mapped-address convention (the low 32
//! bits of the IPv6 address) and computing the IPv4 header checksum.

/// Fields of an IPv6 header we model (words are big-endian packed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Version (6).
    pub version: u32,
    /// Traffic class.
    pub traffic_class: u32,
    /// Flow label.
    pub flow: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Next header (protocol).
    pub next_header: u32,
    /// Hop limit.
    pub hop_limit: u32,
    /// Source address (4 words).
    pub src: [u32; 4],
    /// Destination address (4 words).
    pub dst: [u32; 4],
}

impl Ipv6Header {
    /// Parse from 10 packed words.
    pub fn parse(w: &[u32]) -> Ipv6Header {
        Ipv6Header {
            version: w[0] >> 28,
            traffic_class: (w[0] >> 20) & 0xFF,
            flow: w[0] & 0xF_FFFF,
            payload_len: w[1] >> 16,
            next_header: (w[1] >> 8) & 0xFF,
            hop_limit: w[1] & 0xFF,
            src: [w[2], w[3], w[4], w[5]],
            dst: [w[6], w[7], w[8], w[9]],
        }
    }

    /// Pack into 10 words.
    pub fn pack(&self) -> [u32; 10] {
        [
            (self.version << 28) | (self.traffic_class << 20) | self.flow,
            (self.payload_len << 16) | (self.next_header << 8) | self.hop_limit,
            self.src[0],
            self.src[1],
            self.src[2],
            self.src[3],
            self.dst[0],
            self.dst[1],
            self.dst[2],
            self.dst[3],
        ]
    }
}

/// The ones-complement sum used by the IPv4 header checksum, over packed
/// words (16-bit units).
pub fn checksum(words: &[u32]) -> u32 {
    let mut sum: u32 = 0;
    for w in words {
        sum += w >> 16;
        sum += w & 0xFFFF;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    (!sum) & 0xFFFF
}

/// Translate an IPv6 header to the 5 IPv4 header words. The checksum field
/// is filled in.
pub fn translate(v6: &Ipv6Header) -> [u32; 5] {
    let total_len = v6.payload_len + 20;
    let mut v4 = [
        (4u32 << 28) | (5 << 24) | (v6.traffic_class << 16) | total_len,
        0, // identification, flags, fragment offset: zero on the fast path
        (v6.hop_limit << 24) | (v6.next_header << 16), // checksum filled below
        v6.src[3],
        v6.dst[3],
    ];
    let csum = checksum(&v4);
    v4[2] |= csum;
    v4
}

/// Translate a whole packet in a word buffer: the IPv6 header occupies
/// `words[0..10]`, payload follows. Returns the new packet start (in
/// words) and new length in bytes; the IPv4 header is written to
/// `words[5..10]`.
pub fn translate_packet(words: &mut [u32], len_bytes: u32) -> (usize, u32) {
    let v6 = Ipv6Header::parse(&words[0..10]);
    let v4 = translate(&v6);
    words[5..10].copy_from_slice(&v4);
    (5, len_bytes - 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Ipv6Header {
        Ipv6Header {
            version: 6,
            traffic_class: 0x2E,
            flow: 0xBEEF5,
            payload_len: 128,
            next_header: 6,
            hop_limit: 64,
            src: [0x2001_0DB8, 0, 0, 0xC0A8_0101],
            dst: [0x2001_0DB8, 0, 1, 0x0A00_0002],
        }
    }

    #[test]
    fn parse_pack_roundtrip() {
        let h = header();
        assert_eq!(Ipv6Header::parse(&h.pack()), h);
    }

    #[test]
    fn checksum_verifies_to_zero() {
        // A correct IPv4 header checksums to 0xFFFF-complement zero: the
        // ones-complement sum over the final header (checksum included)
        // must be 0xFFFF before complementing.
        let v4 = translate(&header());
        let mut sum: u32 = 0;
        for w in v4 {
            sum += w >> 16;
            sum += w & 0xFFFF;
        }
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(sum, 0xFFFF);
    }

    #[test]
    fn translation_fields() {
        let v4 = translate(&header());
        assert_eq!(v4[0] >> 28, 4, "version");
        assert_eq!((v4[0] >> 24) & 0xF, 5, "ihl");
        assert_eq!(v4[0] & 0xFFFF, 148, "total length = payload + 20");
        assert_eq!(v4[2] >> 24, 64, "ttl from hop limit");
        assert_eq!((v4[2] >> 16) & 0xFF, 6, "protocol from next header");
        assert_eq!(v4[3], 0xC0A8_0101, "IPv4-mapped source");
        assert_eq!(v4[4], 0x0A00_0002, "IPv4-mapped destination");
    }

    #[test]
    fn packet_translation_moves_start() {
        let h = header();
        let mut buf = vec![0u32; 16];
        buf[0..10].copy_from_slice(&h.pack());
        for (i, w) in buf.iter_mut().enumerate().skip(10) {
            *w = 0x1000 + i as u32; // payload
        }
        let (start, len) = translate_packet(&mut buf, 40 + 24);
        assert_eq!(start, 5);
        assert_eq!(len, 44);
        assert_eq!(buf[start] >> 28, 4);
        assert_eq!(buf[10], 0x100A, "payload untouched");
    }
}
