//! A rule-table packet classifier, generated from constant rule sets.
//!
//! This is the compile-service workload: a network operator's rule
//! updates change *constants* (masks, match values, output ports) but
//! not the program's *structure*, which is exactly the edit class the
//! session cache's immediate-masked allocation key turns into a
//! solve-free recompile. [`classifier_source`] renders one program per
//! rule set; [`classifier_rules`] derives deterministic rule sets from a
//! seed so benches and tests can replay identical update streams.

use std::fmt::Write as _;

/// One classifier rule: packets whose first header word matches
/// `match_value` under `mask` are counted and forwarded on `port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifierRule {
    /// Bits of the header word the rule examines.
    pub mask: u32,
    /// Required value of the masked bits.
    pub match_value: u32,
    /// Output port index (1-based; 0 is the default drop/slow port).
    pub port: u32,
}

/// Number of rules in the canonical classifier shape. Fixed across rule
/// updates: changing it is a *structural* edit.
pub const CLASSIFIER_RULES: usize = 4;

/// SplitMix64 step — the repo's standard cheap deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a deterministic rule set from `(seed, variant)`. Masks and
/// match values avoid the degenerate constants (`0`, all-ones) that the
/// CPS optimizer folds structurally, so every variant of a fixed rule
/// count instruction-selects to the same masked program shape.
pub fn classifier_rules(seed: u64, variant: u64, n: usize) -> Vec<ClassifierRule> {
    let mut state = seed
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(variant);
    (0..n)
        .map(|i| {
            let r = splitmix64(&mut state);
            // Byte-granular masks: 1..=3 of the word's 4 bytes.
            let mask = match (r >> 8) % 3 {
                0 => 0xFF00_0000,
                1 => 0xFFFF_0000,
                _ => 0x00FF_FF00,
            };
            let match_value = ((r >> 16) as u32 | 0x0101_0101) & mask;
            ClassifierRule {
                mask,
                match_value,
                port: (i as u32 % 7) + 1,
            }
        })
        .collect()
}

/// Render the classifier program for one rule set. The structure (rule
/// count, cascade shape, counter update) depends only on `rules.len()`;
/// the rule constants land in `const` definitions.
pub fn classifier_source(rules: &[ClassifierRule]) -> String {
    let mut src = String::new();
    for (i, r) in rules.iter().enumerate() {
        let _ = writeln!(src, "const R{i}_MASK = {:#010x};", r.mask);
        let _ = writeln!(src, "const R{i}_MATCH = {:#010x};", r.match_value);
        let _ = writeln!(src, "const R{i}_PORT = {};", r.port);
    }
    src.push_str(
        r#"const DEFAULT_PORT = 0;
const COUNTERS = 0x40;   // scratch: per-port packet counters

fun main() {
    let (len, addr) = rx_packet();
    let (w0, w1) = sdram(addr);
    let port = classify(w0);
    let (c) = scratch(COUNTERS + port);
    scratch(COUNTERS + port) <- (c + 1);
    // Tag the packet with its classification before forwarding.
    sdram(addr) <- (w0, w1 | (port << 24));
    tx_packet(addr, len);
    main()
}

fun classify(w) {
"#,
    );
    // A right-leaning cascade: rule 0 outermost, default port innermost.
    for (i, _) in rules.iter().enumerate() {
        let indent = "    ".repeat(i + 1);
        let _ = writeln!(
            src,
            "{indent}if ((w & R{i}_MASK) == R{i}_MATCH) {{ R{i}_PORT }} else {{"
        );
    }
    let _ = writeln!(src, "{}DEFAULT_PORT", "    ".repeat(rules.len() + 1));
    for i in (0..rules.len()).rev() {
        let _ = writeln!(src, "{}}}", "    ".repeat(i + 1));
    }
    src.push_str("}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_frontend::{check, parse};

    #[test]
    fn generated_classifiers_parse_and_typecheck() {
        for variant in 0..4 {
            let rules = classifier_rules(7, variant, CLASSIFIER_RULES);
            let src = classifier_source(&rules);
            let p = parse(&src).unwrap_or_else(|d| panic!("variant {variant}: {}", d.render(&src)));
            check(&p).unwrap_or_else(|d| panic!("variant {variant}: {}", d.render(&src)));
        }
    }

    #[test]
    fn rule_sets_are_deterministic_and_variant_sensitive() {
        let a = classifier_rules(7, 3, CLASSIFIER_RULES);
        let b = classifier_rules(7, 3, CLASSIFIER_RULES);
        let c = classifier_rules(7, 4, CLASSIFIER_RULES);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), CLASSIFIER_RULES);
    }
}
