//! Reference Kasumi implementation (3GPP TS 35.202 structure).
//!
//! The paper's second benchmark (§11) is the Kasumi cipher of the ETSI
//! 3GPP standard, with "all tables stored in scratch memory, except the S9
//! table, which is stored in SRAM", and the subkeys statically expanded
//! and packed.
//!
//! **Substitution note (see DESIGN.md):** the standard's S7/S9 tables are
//! specified as gate-level boolean equations we cannot transcribe reliably
//! offline, so this implementation uses the underlying MISTY design power
//! functions — `S7(x) = x^81` over GF(2⁷) and `S9(x) = x^5` over GF(2⁹) —
//! which are bijective S-boxes with the same table sizes, memory layout,
//! and access pattern. Everything the compiler experiment measures (table
//! lookups, 16-bit rotate-heavy Feistel structure, scratch/SRAM traffic)
//! is identical; only the exact ciphertext bits differ from the standard.

/// Multiply in GF(2^7) with the MISTY polynomial x^7 + x + 1 (0x83).
fn gf7_mul(mut a: u16, mut b: u16) -> u16 {
    let mut acc = 0u16;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        b >>= 1;
        a <<= 1;
        if a & 0x80 != 0 {
            a ^= 0x83;
        }
    }
    acc & 0x7F
}

/// Multiply in GF(2^9) with the MISTY polynomial x^9 + x^4 + 1 (0x211).
fn gf9_mul(mut a: u16, mut b: u16) -> u16 {
    let mut acc = 0u16;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        b >>= 1;
        a <<= 1;
        if a & 0x200 != 0 {
            a ^= 0x211;
        }
    }
    acc & 0x1FF
}

fn gf7_pow(x: u16, mut e: u32) -> u16 {
    let mut base = x;
    let mut acc = 1u16;
    while e != 0 {
        if e & 1 != 0 {
            acc = gf7_mul(acc, base);
        }
        base = gf7_mul(base, base);
        e >>= 1;
    }
    acc
}

fn gf9_pow(x: u16, mut e: u32) -> u16 {
    let mut base = x;
    let mut acc = 1u16;
    while e != 0 {
        if e & 1 != 0 {
            acc = gf9_mul(acc, base);
        }
        base = gf9_mul(base, base);
        e >>= 1;
    }
    acc
}

/// The 7-bit S-box: `x^81` in GF(2⁷) (0 maps to 0).
pub fn s7_table() -> [u16; 128] {
    core::array::from_fn(|i| if i == 0 { 0 } else { gf7_pow(i as u16, 81) })
}

/// The 9-bit S-box: `x^5` in GF(2⁹) (0 maps to 0).
pub fn s9_table() -> [u16; 512] {
    core::array::from_fn(|i| if i == 0 { 0 } else { gf9_pow(i as u16, 5) })
}

/// 16-bit left rotation.
fn rol16(x: u16, n: u32) -> u16 {
    x.rotate_left(n)
}

/// Expanded per-round subkeys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subkeys {
    /// FL first keys, rounds 0..8.
    pub kl1: [u16; 8],
    /// FL second keys.
    pub kl2: [u16; 8],
    /// FO keys.
    pub ko1: [u16; 8],
    /// FO second keys.
    pub ko2: [u16; 8],
    /// FO third keys.
    pub ko3: [u16; 8],
    /// FI keys.
    pub ki1: [u16; 8],
    /// FI second keys.
    pub ki2: [u16; 8],
    /// FI third keys.
    pub ki3: [u16; 8],
}

/// Key schedule (TS 35.202 §2.3): split the 128-bit key into eight 16-bit
/// words, derive the modified key with the standard constants, and rotate.
pub fn key_schedule(key: &[u8; 16]) -> Subkeys {
    let mut k = [0u16; 8];
    for i in 0..8 {
        k[i] = u16::from_be_bytes([key[2 * i], key[2 * i + 1]]);
    }
    const C: [u16; 8] = [
        0x0123, 0x4567, 0x89AB, 0xCDEF, 0xFEDC, 0xBA98, 0x7654, 0x3210,
    ];
    let kp: [u16; 8] = core::array::from_fn(|i| k[i] ^ C[i]);
    let mut s = Subkeys {
        kl1: [0; 8],
        kl2: [0; 8],
        ko1: [0; 8],
        ko2: [0; 8],
        ko3: [0; 8],
        ki1: [0; 8],
        ki2: [0; 8],
        ki3: [0; 8],
    };
    for i in 0..8 {
        s.kl1[i] = rol16(k[i], 1);
        s.kl2[i] = kp[(i + 2) % 8];
        s.ko1[i] = rol16(k[(i + 1) % 8], 5);
        s.ko2[i] = rol16(k[(i + 5) % 8], 8);
        s.ko3[i] = rol16(k[(i + 6) % 8], 13);
        s.ki1[i] = kp[(i + 4) % 8];
        s.ki2[i] = kp[(i + 3) % 8];
        s.ki3[i] = kp[(i + 7) % 8];
    }
    s
}

/// FI: the 16-bit keyed non-linear function (two S9/S7 stages).
pub fn fi(x: u16, ki: u16, s7: &[u16; 128], s9: &[u16; 512]) -> u16 {
    let mut nine = x >> 7;
    let mut seven = x & 0x7F;
    nine = s9[nine as usize] ^ seven;
    seven = s7[seven as usize] ^ (nine & 0x7F);
    seven ^= ki >> 9;
    nine ^= ki & 0x1FF;
    nine = s9[nine as usize] ^ seven;
    seven = s7[seven as usize] ^ (nine & 0x7F);
    (seven << 9) | nine
}

/// FO: three FI stages over the 32-bit half.
pub fn fo(x: u32, i: usize, sk: &Subkeys, s7: &[u16; 128], s9: &[u16; 512]) -> u32 {
    let mut l = (x >> 16) as u16;
    let mut r = x as u16;
    let t1 = fi(l ^ sk.ko1[i], sk.ki1[i], s7, s9) ^ r;
    l = r;
    r = t1;
    let t2 = fi(l ^ sk.ko2[i], sk.ki2[i], s7, s9) ^ r;
    l = r;
    r = t2;
    let t3 = fi(l ^ sk.ko3[i], sk.ki3[i], s7, s9) ^ r;
    l = r;
    r = t3;
    ((l as u32) << 16) | r as u32
}

/// FL: the 32-bit linear mixing function.
pub fn fl(x: u32, i: usize, sk: &Subkeys) -> u32 {
    let l = (x >> 16) as u16;
    let r = x as u16;
    let rp = r ^ rol16(l & sk.kl1[i], 1);
    let lp = l ^ rol16(rp | sk.kl2[i], 1);
    ((lp as u32) << 16) | rp as u32
}

/// Encrypt one 64-bit block.
pub fn encrypt_block(block: u64, sk: &Subkeys, s7: &[u16; 128], s9: &[u16; 512]) -> u64 {
    let mut left = (block >> 32) as u32;
    let mut right = block as u32;
    let mut i = 0;
    while i < 8 {
        // Odd round: FL then FO applied to the left half.
        let t = fo(fl(left, i, sk), i, sk, s7, s9);
        right ^= t;
        i += 1;
        // Even round: FO then FL applied to the right half.
        let t = fl(fo(right, i, sk, s7, s9), i, sk);
        left ^= t;
        i += 1;
    }
    ((left as u64) << 32) | right as u64
}

/// Encrypt a word buffer in place (pairs of words = 64-bit blocks).
pub fn encrypt_words(words: &mut [u32], sk: &Subkeys, s7: &[u16; 128], s9: &[u16; 512]) {
    assert!(
        words.len().is_multiple_of(2),
        "data must be a multiple of 8 bytes"
    );
    for chunk in words.chunks_mut(2) {
        let block = ((chunk[0] as u64) << 32) | chunk[1] as u64;
        let out = encrypt_block(block, sk, s7, s9);
        chunk[0] = (out >> 32) as u32;
        chunk[1] = out as u32;
    }
}

/// Memory layout for the Nova Kasumi program. S9 lives in SRAM (as in the
/// paper); S7 and the packed subkeys live in scratch.
pub mod layout {
    /// S9 base in SRAM (512 words).
    pub const S9_SRAM: u32 = 0x600;
    /// S7 base in scratch (128 words).
    pub const S7_SCRATCH: u32 = 0x000;
    /// Packed subkeys base in scratch: for each round i (0..8), eight
    /// words `kl1, kl2, ko1, ko2, ko3, ki1, ki2, ki3` at `SK + 8*i`.
    pub const SK_SCRATCH: u32 = 0x080;
}

/// Load the tables and subkeys into simulated memory.
pub fn load_memory(
    key: &[u8; 16],
    mut sram: impl FnMut(u32, u32),
    mut scratch: impl FnMut(u32, u32),
) {
    let s9 = s9_table();
    for (i, v) in s9.iter().enumerate() {
        sram(layout::S9_SRAM + i as u32, *v as u32);
    }
    let s7 = s7_table();
    for (i, v) in s7.iter().enumerate() {
        scratch(layout::S7_SCRATCH + i as u32, *v as u32);
    }
    let sk = key_schedule(key);
    for i in 0..8u32 {
        let base = layout::SK_SCRATCH + 8 * i;
        let j = i as usize;
        for (off, v) in [
            sk.kl1[j], sk.kl2[j], sk.ko1[j], sk.ko2[j], sk.ko3[j], sk.ki1[j], sk.ki2[j], sk.ki3[j],
        ]
        .iter()
        .enumerate()
        {
            scratch(base + off as u32, *v as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sboxes_are_bijections() {
        let s7 = s7_table();
        let mut seen = [false; 128];
        for v in s7 {
            assert!(!seen[v as usize], "S7 duplicate {v}");
            seen[v as usize] = true;
        }
        let s9 = s9_table();
        let mut seen = vec![false; 512];
        for v in s9 {
            assert!(!seen[v as usize], "S9 duplicate {v}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn encryption_is_deterministic_and_diffusing() {
        let key: [u8; 16] = core::array::from_fn(|i| (i * 17 + 3) as u8);
        let sk = key_schedule(&key);
        let (s7, s9) = (s7_table(), s9_table());
        let c1 = encrypt_block(0x0123_4567_89AB_CDEF, &sk, &s7, &s9);
        let c2 = encrypt_block(0x0123_4567_89AB_CDEF, &sk, &s7, &s9);
        assert_eq!(c1, c2);
        // Flipping one plaintext bit changes many ciphertext bits.
        let c3 = encrypt_block(0x0123_4567_89AB_CDEE, &sk, &s7, &s9);
        let diff = (c1 ^ c3).count_ones();
        assert!(diff > 16, "poor diffusion: {diff} bits");
    }

    #[test]
    fn key_schedule_matches_spec_structure() {
        let key = [0u8; 16];
        let sk = key_schedule(&key);
        // With an all-zero key, KL1 is 0 and KL2 is the constant C[(i+2)%8].
        assert_eq!(sk.kl1, [0; 8]);
        assert_eq!(sk.kl2[0], 0x89AB);
        assert_eq!(sk.kl2[6], 0x0123);
    }

    #[test]
    fn fl_is_invertible_structure() {
        // FL with zero keys: r' = r ^ rol(l & 0) = r; l' = l ^ rol(r | 0, 1).
        let key = [0u8; 16];
        let sk = key_schedule(&key);
        let x = 0xABCD_1234;
        let y = fl(x, 0, &sk);
        let r = (x & 0xFFFF) as u16;
        assert_eq!(y & 0xFFFF, r as u32);
    }

    #[test]
    fn word_buffer_roundtrip_shape() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let sk = key_schedule(&key);
        let (s7, s9) = (s7_table(), s9_table());
        let mut buf = vec![0x11111111u32, 0x22222222, 0x11111111, 0x22222222];
        encrypt_words(&mut buf, &sk, &s7, &s9);
        assert_eq!(buf[0], buf[2], "identical blocks encrypt identically");
        assert_ne!(buf[0], 0x11111111);
    }
}
