//! Compilation as a service: a multi-client batch compile server over a
//! shared [`nova::Compiler`] session.
//!
//! A [`Server`] owns a pool of worker threads that all hold clones of
//! one compile session, so the session's phase caches (token-fingerprint
//! frontend cache, immediate-masked MILP allocation cache, whole-image
//! cache — see [`nova::Compiler`]) are shared across every client:
//! after one client compiles a rule set, every other client's variants
//! of it are partial or full cache hits.
//!
//! Requests go in as batches ([`Server::submit_batch`]); responses come
//! back **in request order** regardless of which worker finished first
//! or fastest, so a batch's results are deterministic and positionally
//! addressable. Failures are first-class responses (the session caches
//! them like successes), not transport errors.
//!
//! The server is deliberately synchronous — plain threads and channels,
//! no async runtime — matching the repository's no-new-dependencies
//! constraint and keeping the worker loop trivially auditable.

#![warn(missing_docs)]

use nova::{CacheStats, CompileConfig, CompileError, CompileOutput, Compiler, Summary};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Worker threads. `0` picks the machine's available parallelism.
    pub workers: usize,
    /// Compile configuration shared by every worker's session clone.
    pub compile: CompileConfig,
}

/// One compile request: a client tag (echoed back, never interpreted)
/// plus the source text to compile.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Client-chosen identifier, echoed in the response.
    pub id: u64,
    /// Nova source text.
    pub source: String,
}

impl CompileRequest {
    /// Convenience constructor.
    pub fn new(id: u64, source: impl Into<String>) -> Self {
        CompileRequest {
            id,
            source: source.into(),
        }
    }
}

/// One compile response: the request's echoed id, the result, and the
/// wall-clock service latency of this request on its worker.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The request's `id`, echoed.
    pub id: u64,
    /// The compile result. Errors are cached, structured diagnostics —
    /// resubmitting the same broken source returns the same error.
    pub result: Result<CompileOutput, CompileError>,
    /// Aggregated trace of what actually ran for this request (near
    /// empty on a whole-image cache hit). `None` when the compile failed
    /// before producing a report.
    pub trace: Option<Summary>,
    /// Wall-clock time this request spent compiling on its worker.
    pub latency: Duration,
}

/// A queued unit of work: batch-local index + request + reply channel.
struct Job {
    index: usize,
    request: CompileRequest,
    reply: Sender<(usize, CompileResponse)>,
}

/// A batch compile server: worker threads draining a shared queue, each
/// holding a clone of one cached compile session.
///
/// Dropping the server closes the queue and joins every worker.
pub struct Server {
    session: Compiler,
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    obs: nova_obs::Obs,
}

impl Server {
    /// Spin up the worker pool.
    pub fn new(config: ServerConfig) -> Self {
        Server::with_observer(config, nova_obs::Obs::noop())
    }

    /// [`Server::new`] with a server-level observability handle:
    /// `server.requests`, `server.batches` counters and a
    /// `server.latency_us` sample per request land on it (compile-phase
    /// telemetry goes to the compile config's own observer as usual).
    pub fn with_observer(config: ServerConfig, obs: nova_obs::Obs) -> Self {
        let n = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let session = Compiler::new(config.compile);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let session = session.clone();
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("nova-server-{i}"))
                    .spawn(move || worker_loop(&rx, &session, &obs))
                    .expect("spawn nova-server worker")
            })
            .collect();
        Server {
            session,
            queue: Some(tx),
            workers,
            obs,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the shared session's cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }

    /// Compile one request on the calling thread's behalf (a batch of
    /// one).
    pub fn submit(&self, request: CompileRequest) -> CompileResponse {
        self.submit_batch(vec![request])
            .into_iter()
            .next()
            .expect("one response per request")
    }

    /// Submit a batch and block until every response is in. Responses
    /// are returned **in request order** (deterministic regardless of
    /// worker scheduling), one per request.
    pub fn submit_batch(&self, requests: Vec<CompileRequest>) -> Vec<CompileResponse> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        self.obs.counter("server.batches", 1);
        self.obs.counter("server.requests", n as u64);
        let queue = self.queue.as_ref().expect("queue open while server lives");
        let (reply_tx, reply_rx) = channel::<(usize, CompileResponse)>();
        for (index, request) in requests.into_iter().enumerate() {
            queue
                .send(Job {
                    index,
                    request,
                    reply: reply_tx.clone(),
                })
                .expect("workers alive while server lives");
        }
        drop(reply_tx);
        let mut slots: Vec<Option<CompileResponse>> = (0..n).map(|_| None).collect();
        for (index, response) in reply_rx {
            slots[index] = Some(response);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every request produces a response"))
            .collect()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Closing the queue makes every worker's recv fail; join them.
        self.queue.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, session: &Compiler, obs: &nova_obs::Obs) {
    loop {
        // Hold the lock only for the dequeue, not the compile.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let start = Instant::now();
        let (result, trace) = match session.compile(&job.request.source) {
            Ok(report) => (Ok(report.artifact), Some(report.trace)),
            Err(e) => (Err(e), None),
        };
        let latency = start.elapsed();
        obs.sample("server.latency_us", latency.as_secs_f64() * 1e6);
        // The batch may have been abandoned (submitter gone): ignore.
        let _ = job.reply.send((
            job.index,
            CompileResponse {
                id: job.request.id,
                result,
                trace,
                latency,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a); 0 }";

    fn server(workers: usize) -> Server {
        Server::new(ServerConfig {
            workers,
            compile: CompileConfig::builder().solver_threads(1).build(),
        })
    }

    #[test]
    fn batch_responses_come_back_in_request_order() {
        let srv = server(4);
        let reqs: Vec<CompileRequest> = (0..16)
            .map(|i| {
                // Distinct programs so different workers race on
                // genuinely different compiles.
                let addr = 8 + 4 * (i % 4);
                CompileRequest::new(
                    1000 + i,
                    format!("fun main() {{ let (a, b) = sram(0); sram({addr}) <- (a + b, a); 0 }}"),
                )
            })
            .collect();
        let responses = srv.submit_batch(reqs);
        assert_eq!(responses.len(), 16);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, 1000 + i as u64);
            assert!(r.result.is_ok(), "request {i} failed");
        }
    }

    #[test]
    fn second_batch_hits_the_shared_cache() {
        let srv = server(2);
        let batch: Vec<CompileRequest> = (0..4).map(|i| CompileRequest::new(i, BASE)).collect();
        let first = srv.submit_batch(batch.clone());
        let second = srv.submit_batch(batch);
        let stats = srv.cache_stats();
        // Everything after the very first compile of BASE is a
        // whole-image hit (workers may race the first batch, so only
        // the lower bound is exact).
        assert!(stats.output_hits >= 4, "expected ≥4 image hits: {stats:?}");
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(a.artifact_eq(b));
        }
    }

    #[test]
    fn failures_are_responses_not_crashes() {
        let srv = server(2);
        let responses = srv.submit_batch(vec![
            CompileRequest::new(1, "fun main() { y }"),
            CompileRequest::new(2, BASE),
            CompileRequest::new(3, "fun main() { y }"),
        ]);
        assert_eq!(responses.len(), 3);
        let e1 = responses[0].result.as_ref().unwrap_err();
        let e3 = responses[2].result.as_ref().unwrap_err();
        assert_eq!(e1, e3, "cached failure should be returned verbatim");
        assert!(responses[1].result.is_ok());
    }

    #[test]
    fn empty_batch_is_fine() {
        let srv = server(1);
        assert!(srv.submit_batch(Vec::new()).is_empty());
    }
}
