//! Compilation as a service: a multi-client batch compile server over a
//! shared [`nova::Compiler`] session.
//!
//! A [`Server`] owns a pool of worker threads that all hold clones of
//! one compile session, so the session's phase caches (token-fingerprint
//! frontend cache, immediate-masked MILP allocation cache, whole-image
//! cache — see [`nova::Compiler`]) are shared across every client:
//! after one client compiles a rule set, every other client's variants
//! of it are partial or full cache hits.
//!
//! Requests go in as batches ([`Server::submit_batch`]); responses come
//! back **in request order** regardless of which worker finished first
//! or fastest, so a batch's results are deterministic and positionally
//! addressable. Failures are first-class responses (the session caches
//! them like successes), not transport errors.
//!
//! The serving layer is hardened against its own failure modes, and
//! reports every one of them as a structured [`CompileError`] with
//! `phase == Phase::Service` rather than a hang or a crash:
//!
//! - **Worker panics** are caught at the job boundary, retried with
//!   bounded exponential backoff ([`ServerConfig::retries`],
//!   [`ServerConfig::retry_backoff`]), and surface as an `E-PANIC`
//!   response if they persist. A panicking compile never takes down the
//!   batch or wedges the queue.
//! - **Per-request deadlines** ([`ServerConfig::deadline`]) are checked
//!   when a worker dequeues a job and again before every retry sleep;
//!   expired requests answer `E-DEADLINE` without compiling.
//! - **Admission control** ([`ServerConfig::queue_limit`]) bounds the
//!   number of outstanding requests; excess load is shed at submission
//!   with an immediate `E-OVERLOAD` response instead of unbounded
//!   queueing.
//!
//! The server is deliberately synchronous — plain threads and channels,
//! no async runtime — matching the repository's no-new-dependencies
//! constraint and keeping the worker loop trivially auditable.

#![warn(missing_docs)]

use nova::{
    CacheStats, CompileConfig, CompileError, CompileOutput, CompileReport, Compiler, Phase, Summary,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads. `0` picks the machine's available parallelism.
    pub workers: usize,
    /// Compile configuration shared by every worker's session clone.
    pub compile: CompileConfig,
    /// Per-request service deadline, measured from batch submission.
    /// A request that is still queued (or between retries) when its
    /// deadline passes answers with an `E-DEADLINE` service error
    /// instead of compiling. `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// How many times a request whose compile **panicked** is retried
    /// before the panic is reported as an `E-PANIC` service error.
    /// Compile *errors* are never retried — they are deterministic,
    /// cached diagnostics, not transient faults.
    pub retries: u32,
    /// Backoff before the first retry; doubles on each subsequent
    /// retry (bounded exponential backoff).
    pub retry_backoff: Duration,
    /// Maximum number of admitted-but-unanswered requests across all
    /// in-flight batches. Submissions beyond the limit are shed with an
    /// immediate `E-OVERLOAD` response. `0` means unbounded.
    pub queue_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            compile: CompileConfig::default(),
            deadline: None,
            retries: 2,
            retry_backoff: Duration::from_millis(1),
            queue_limit: 0,
        }
    }
}

/// One compile request: a client tag (echoed back, never interpreted)
/// plus the source text to compile.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Client-chosen identifier, echoed in the response.
    pub id: u64,
    /// Nova source text.
    pub source: String,
}

impl CompileRequest {
    /// Convenience constructor.
    pub fn new(id: u64, source: impl Into<String>) -> Self {
        CompileRequest {
            id,
            source: source.into(),
        }
    }
}

/// One compile response: the request's echoed id, the result, and the
/// wall-clock service latency of this request on its worker.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The request's `id`, echoed.
    pub id: u64,
    /// The compile result. Errors are cached, structured diagnostics —
    /// resubmitting the same broken source returns the same error.
    /// Serving-layer failures (panic, deadline, overload) come back as
    /// errors with `phase == Phase::Service`.
    pub result: Result<CompileOutput, CompileError>,
    /// Aggregated trace of what actually ran for this request (near
    /// empty on a whole-image cache hit). `None` when the compile failed
    /// before producing a report.
    pub trace: Option<Summary>,
    /// Wall-clock time this request spent compiling on its worker
    /// (zero when it never reached a compile: shed or expired).
    pub latency: Duration,
}

/// A queued unit of work: batch-local index + request + reply channel.
struct Job {
    index: usize,
    request: CompileRequest,
    /// When the request was admitted; deadlines are measured from here.
    admitted: Instant,
    reply: Sender<(usize, CompileResponse)>,
}

/// The compile function workers invoke per request. The indirection is
/// the fault-injection seam: tests swap in hooks that panic or stall to
/// exercise the retry/deadline/shedding paths without touching nova.
type CompileHook =
    Arc<dyn Fn(&Compiler, &str) -> Result<CompileReport, CompileError> + Send + Sync>;

/// Per-worker serving policy, shared by every worker thread.
struct ServicePolicy {
    compile: CompileHook,
    deadline: Option<Duration>,
    retries: u32,
    retry_backoff: Duration,
    /// Admitted-but-unanswered requests, decremented after the reply.
    pending: Arc<AtomicUsize>,
}

fn service_error(code: &'static str, message: String) -> CompileError {
    CompileError {
        phase: Phase::Service,
        code,
        span: None,
        message,
    }
}

/// A batch compile server: worker threads draining a shared queue, each
/// holding a clone of one cached compile session.
///
/// Dropping the server closes the queue and joins every worker.
pub struct Server {
    session: Compiler,
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    obs: nova_obs::Obs,
    pending: Arc<AtomicUsize>,
    queue_limit: usize,
}

impl Server {
    /// Spin up the worker pool.
    pub fn new(config: ServerConfig) -> Self {
        Server::with_observer(config, nova_obs::Obs::noop())
    }

    /// [`Server::new`] with a server-level observability handle:
    /// `server.requests`, `server.batches` counters and a
    /// `server.latency_us` sample per request land on it, along with
    /// `server.panics`, `server.retries`, `server.deadline_drops` and
    /// `server.overload_sheds` fault counters (compile-phase telemetry
    /// goes to the compile config's own observer as usual).
    pub fn with_observer(config: ServerConfig, obs: nova_obs::Obs) -> Self {
        Server::with_hook(
            config,
            obs,
            Arc::new(|s: &Compiler, src: &str| s.compile(src)),
        )
    }

    /// Full constructor with an injectable compile hook (the
    /// fault-injection seam used by the hardening tests).
    fn with_hook(config: ServerConfig, obs: nova_obs::Obs, hook: CompileHook) -> Self {
        let n = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let session = Compiler::new(config.compile);
        let pending = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let session = session.clone();
                let obs = obs.clone();
                let policy = ServicePolicy {
                    compile: Arc::clone(&hook),
                    deadline: config.deadline,
                    retries: config.retries,
                    retry_backoff: config.retry_backoff,
                    pending: Arc::clone(&pending),
                };
                std::thread::Builder::new()
                    .name(format!("nova-server-{i}"))
                    .spawn(move || worker_loop(&rx, &session, &obs, &policy))
                    .expect("spawn nova-server worker")
            })
            .collect();
        Server {
            session,
            queue: Some(tx),
            workers,
            obs,
            pending,
            queue_limit: config.queue_limit,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the shared session's cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }

    /// Compile one request on the calling thread's behalf (a batch of
    /// one).
    pub fn submit(&self, request: CompileRequest) -> CompileResponse {
        self.submit_batch(vec![request])
            .into_iter()
            .next()
            .expect("one response per request")
    }

    /// Try to reserve an admission slot; `false` means shed this
    /// request. The counter is released by the worker after it replies.
    fn admit(&self) -> bool {
        if self.queue_limit == 0 {
            self.pending.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut cur = self.pending.load(Ordering::Relaxed);
        loop {
            if cur >= self.queue_limit {
                return false;
            }
            match self.pending.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Submit a batch and block until every response is in. Responses
    /// are returned **in request order** (deterministic regardless of
    /// worker scheduling), one per request — including for requests the
    /// serving layer itself failed (shed, expired, panicked): those come
    /// back as `Phase::Service` errors, never as a hang or a panic.
    pub fn submit_batch(&self, requests: Vec<CompileRequest>) -> Vec<CompileResponse> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        self.obs.counter("server.batches", 1);
        self.obs.counter("server.requests", n as u64);
        let queue = self.queue.as_ref().expect("queue open while server lives");
        let ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        let (reply_tx, reply_rx) = channel::<(usize, CompileResponse)>();
        let mut slots: Vec<Option<CompileResponse>> = (0..n).map(|_| None).collect();
        for (index, request) in requests.into_iter().enumerate() {
            if !self.admit() {
                self.obs.counter("server.overload_sheds", 1);
                slots[index] = Some(CompileResponse {
                    id: request.id,
                    result: Err(service_error(
                        "E-OVERLOAD",
                        format!(
                            "admission queue full ({} outstanding, limit {})",
                            self.pending.load(Ordering::Relaxed),
                            self.queue_limit
                        ),
                    )),
                    trace: None,
                    latency: Duration::ZERO,
                });
                continue;
            }
            queue
                .send(Job {
                    index,
                    request,
                    admitted: Instant::now(),
                    reply: reply_tx.clone(),
                })
                .expect("workers alive while server lives");
        }
        drop(reply_tx);
        for (index, response) in reply_rx {
            slots[index] = Some(response);
        }
        // A missing slot means a worker died without replying. The
        // catch_unwind boundary makes that unreachable in practice, but
        // a structured error beats poisoning the whole batch.
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.unwrap_or_else(|| CompileResponse {
                    id: ids[i],
                    result: Err(service_error(
                        "E-LOST",
                        "worker lost before responding".to_string(),
                    )),
                    trace: None,
                    latency: Duration::ZERO,
                })
            })
            .collect()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Closing the queue makes every worker's recv fail; join them.
        self.queue.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// Run one job to a response: deadline gate, compile with panic
/// containment, bounded-backoff retries on panic.
fn serve_job(
    job: &Job,
    session: &Compiler,
    obs: &nova_obs::Obs,
    policy: &ServicePolicy,
) -> CompileResponse {
    let respond = |result, trace, latency| CompileResponse {
        id: job.request.id,
        result,
        trace,
        latency,
    };
    // Deadline gate at dequeue: a request that waited out its budget in
    // the queue is answered without burning compile time on it.
    if let Some(deadline) = policy.deadline {
        if job.admitted.elapsed() >= deadline {
            obs.counter("server.deadline_drops", 1);
            return respond(
                Err(service_error(
                    "E-DEADLINE",
                    format!("deadline of {deadline:?} expired before service"),
                )),
                None,
                Duration::ZERO,
            );
        }
    }
    let start = Instant::now();
    let mut attempt = 0u32;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            (policy.compile)(session, &job.request.source)
        }));
        match outcome {
            Ok(Ok(report)) => {
                let latency = start.elapsed();
                obs.sample("server.latency_us", latency.as_secs_f64() * 1e6);
                return respond(Ok(report.artifact), Some(report.trace), latency);
            }
            Ok(Err(e)) => {
                // Deterministic compile diagnostic: cached, not retried.
                let latency = start.elapsed();
                obs.sample("server.latency_us", latency.as_secs_f64() * 1e6);
                return respond(Err(e), None, latency);
            }
            Err(payload) => {
                obs.counter("server.panics", 1);
                let message = panic_message(payload.as_ref()).to_string();
                if attempt >= policy.retries {
                    return respond(
                        Err(service_error(
                            "E-PANIC",
                            format!(
                                "compile panicked after {} attempt(s): {message}",
                                attempt + 1
                            ),
                        )),
                        None,
                        start.elapsed(),
                    );
                }
                // Bounded exponential backoff, clipped to whatever
                // deadline budget the request has left.
                let backoff = policy.retry_backoff.saturating_mul(1u32 << attempt.min(20));
                if let Some(deadline) = policy.deadline {
                    match deadline.checked_sub(job.admitted.elapsed()) {
                        Some(budget) if budget > Duration::ZERO => {
                            std::thread::sleep(backoff.min(budget));
                        }
                        _ => {
                            obs.counter("server.deadline_drops", 1);
                            return respond(
                                Err(service_error(
                                    "E-DEADLINE",
                                    format!(
                                        "deadline of {deadline:?} expired during panic retry \
                                         (last panic: {message})"
                                    ),
                                )),
                                None,
                                start.elapsed(),
                            );
                        }
                    }
                } else {
                    std::thread::sleep(backoff);
                }
                obs.counter("server.retries", 1);
                attempt += 1;
            }
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<Job>>>,
    session: &Compiler,
    obs: &nova_obs::Obs,
    policy: &ServicePolicy,
) {
    loop {
        // Hold the lock only for the dequeue, not the compile.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let response = serve_job(&job, session, obs, policy);
        // The batch may have been abandoned (submitter gone): ignore.
        let _ = job.reply.send((job.index, response));
        // Release the admission slot only after the reply: the limit
        // bounds admitted-but-unanswered requests, not just the queue.
        policy.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Condvar;

    const BASE: &str = "fun main() { let (a, b) = sram(0); sram(8) <- (a + b, a); 0 }";

    fn config(workers: usize) -> ServerConfig {
        ServerConfig {
            workers,
            compile: CompileConfig::builder().solver_threads(1).build(),
            ..ServerConfig::default()
        }
    }

    fn server(workers: usize) -> Server {
        Server::new(config(workers))
    }

    #[test]
    fn batch_responses_come_back_in_request_order() {
        let srv = server(4);
        let reqs: Vec<CompileRequest> = (0..16)
            .map(|i| {
                // Distinct programs so different workers race on
                // genuinely different compiles.
                let addr = 8 + 4 * (i % 4);
                CompileRequest::new(
                    1000 + i,
                    format!("fun main() {{ let (a, b) = sram(0); sram({addr}) <- (a + b, a); 0 }}"),
                )
            })
            .collect();
        let responses = srv.submit_batch(reqs);
        assert_eq!(responses.len(), 16);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, 1000 + i as u64);
            assert!(r.result.is_ok(), "request {i} failed");
        }
    }

    #[test]
    fn second_batch_hits_the_shared_cache() {
        let srv = server(2);
        let batch: Vec<CompileRequest> = (0..4).map(|i| CompileRequest::new(i, BASE)).collect();
        let first = srv.submit_batch(batch.clone());
        let second = srv.submit_batch(batch);
        let stats = srv.cache_stats();
        // Everything after the very first compile of BASE is a
        // whole-image hit (workers may race the first batch, so only
        // the lower bound is exact).
        assert!(stats.output_hits >= 4, "expected ≥4 image hits: {stats:?}");
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(a.artifact_eq(b));
        }
    }

    #[test]
    fn failures_are_responses_not_crashes() {
        let srv = server(2);
        let responses = srv.submit_batch(vec![
            CompileRequest::new(1, "fun main() { y }"),
            CompileRequest::new(2, BASE),
            CompileRequest::new(3, "fun main() { y }"),
        ]);
        assert_eq!(responses.len(), 3);
        let e1 = responses[0].result.as_ref().unwrap_err();
        let e3 = responses[2].result.as_ref().unwrap_err();
        assert_eq!(e1, e3, "cached failure should be returned verbatim");
        assert!(responses[1].result.is_ok());
    }

    #[test]
    fn empty_batch_is_fine() {
        let srv = server(1);
        assert!(srv.submit_batch(Vec::new()).is_empty());
    }

    #[test]
    fn panicking_compile_becomes_a_structured_error_not_a_hang() {
        // Sources containing "boom" panic the worker every time; the
        // batch must still come back complete, in order, with the
        // panics reported as Phase::Service errors.
        let hook: CompileHook = Arc::new(|session: &Compiler, src: &str| {
            assert!(!src.contains("boom"), "injected worker panic");
            session.compile(src)
        });
        let srv = Server::with_hook(
            ServerConfig {
                retries: 1,
                retry_backoff: Duration::from_micros(100),
                ..config(2)
            },
            nova_obs::Obs::noop(),
            hook,
        );
        let responses = srv.submit_batch(vec![
            CompileRequest::new(1, BASE),
            CompileRequest::new(2, "boom"),
            CompileRequest::new(3, BASE),
        ]);
        assert_eq!(responses.len(), 3);
        assert!(responses[0].result.is_ok());
        assert!(responses[2].result.is_ok());
        let e = responses[1].result.as_ref().unwrap_err();
        assert_eq!(e.phase, Phase::Service);
        assert_eq!(e.code, "E-PANIC");
        assert_eq!(responses[1].id, 2);
    }

    #[test]
    fn transient_panics_are_retried_to_success() {
        // Panic on the first two attempts, then compile normally: with
        // retries = 2 the request must succeed on the third attempt.
        let failures = Arc::new(AtomicU64::new(2));
        let hook: CompileHook = {
            let failures = Arc::clone(&failures);
            Arc::new(move |session: &Compiler, src: &str| {
                if failures
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    panic!("transient fault");
                }
                session.compile(src)
            })
        };
        let srv = Server::with_hook(
            ServerConfig {
                retries: 2,
                retry_backoff: Duration::from_micros(100),
                ..config(1)
            },
            nova_obs::Obs::noop(),
            hook,
        );
        let response = srv.submit(CompileRequest::new(7, BASE));
        assert!(
            response.result.is_ok(),
            "retries should mask transient panics"
        );
        assert_eq!(failures.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn expired_deadlines_answer_without_compiling() {
        // A zero deadline has always expired by dequeue time: every
        // request answers E-DEADLINE and the compile hook never runs.
        let hook: CompileHook = Arc::new(|_: &Compiler, _: &str| {
            panic!("deadline-expired request must not reach the compiler")
        });
        let srv = Server::with_hook(
            ServerConfig {
                deadline: Some(Duration::ZERO),
                ..config(2)
            },
            nova_obs::Obs::noop(),
            hook,
        );
        let responses = srv.submit_batch((0..4).map(|i| CompileRequest::new(i, BASE)).collect());
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            let e = r.result.as_ref().unwrap_err();
            assert_eq!(e.phase, Phase::Service, "request {i}: {e:?}");
            assert_eq!(e.code, "E-DEADLINE");
            assert_eq!(r.latency, Duration::ZERO);
        }
    }

    #[test]
    fn overload_sheds_the_tail_of_the_batch() {
        // One worker, blocked on a gate; admission limit 2. Submitting
        // five requests admits the first two (one on the worker, one
        // queued — both still unanswered) and sheds the other three
        // with immediate E-OVERLOAD responses.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let hook: CompileHook = {
            let gate = Arc::clone(&gate);
            Arc::new(move |session: &Compiler, src: &str| {
                let (lock, cvar) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
                drop(open);
                session.compile(src)
            })
        };
        let srv = Server::with_hook(
            ServerConfig {
                queue_limit: 2,
                ..config(1)
            },
            nova_obs::Obs::noop(),
            hook,
        );
        let srv = Arc::new(srv);
        let submitter = {
            let srv = Arc::clone(&srv);
            std::thread::spawn(move || {
                srv.submit_batch((0..5).map(|i| CompileRequest::new(i, BASE)).collect())
            })
        };
        // Give the submitter time to run its admission loop, then let
        // the worker drain the two admitted requests.
        std::thread::sleep(Duration::from_millis(50));
        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        let responses = submitter.join().unwrap();
        assert_eq!(responses.len(), 5);
        let shed: Vec<usize> = responses
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.result
                    .as_ref()
                    .err()
                    .is_some_and(|e| e.code == "E-OVERLOAD")
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(shed, vec![2, 3, 4], "limit 2 must shed exactly the tail");
        for i in [0, 1] {
            assert!(
                responses[i].result.is_ok(),
                "admitted request {i} must compile"
            );
        }
        // The shed slots freed up: a follow-up request is served again.
        let again = srv.submit(CompileRequest::new(9, BASE));
        assert!(again.result.is_ok());
    }
}
