//! A small recency-tracking map backing the session's bounded caches.
//!
//! Every phase cache of a [`crate::Compiler`] session is one [`LruMap`]
//! guarded by a mutex: lookups stamp the entry with a monotonic tick,
//! inserts charge an approximate byte weight, and when a
//! [`crate::CacheBudget`] caps the cache, insertion evicts the
//! least-recently-touched entries until the cache fits again. The entry
//! just inserted is exempt from its own eviction pass, so a compile can
//! always complete even under a budget smaller than one artifact.
//!
//! Eviction changes *retention*, never *content*: a re-compile after an
//! eviction recomputes the identical artifact (determinism is keyed by
//! content hashes, not by what happens to still be cached).

use crate::CacheBudget;
use std::collections::HashMap;

struct Entry<V> {
    val: V,
    /// Tick of the last lookup or insertion (larger = more recent).
    last: u64,
    /// Approximate retained bytes charged against the byte budget.
    weight: u64,
}

/// A hash map with per-entry recency and approximate byte accounting.
pub(crate) struct LruMap<V> {
    map: HashMap<u64, Entry<V>>,
    tick: u64,
    bytes: u64,
}

/// What one insertion evicted: `(entries, bytes)`.
pub(crate) type Evicted = (u64, u64);

impl<V> Default for LruMap<V> {
    fn default() -> Self {
        LruMap {
            map: HashMap::new(),
            tick: 0,
            bytes: 0,
        }
    }
}

impl<V> LruMap<V> {
    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.last = tick;
            &e.val
        })
    }

    /// Insert `val` under `key` charging `weight` bytes, then evict
    /// least-recently-used entries (never the one just inserted) until
    /// the cache fits `budget`. Returns how much was evicted.
    pub fn insert(&mut self, key: u64, val: V, weight: u64, budget: &CacheBudget) -> Evicted {
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                val,
                last: self.tick,
                weight,
            },
        ) {
            self.bytes -= old.weight;
        }
        self.bytes += weight;
        let mut evicted = (0, 0);
        while self.over(budget) {
            // O(n) victim scan: session caches hold at most a few
            // thousand entries, and the scan only runs while over budget.
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last)
                .map(|(k, _)| *k);
            let Some(v) = victim else { break };
            let e = self.map.remove(&v).expect("victim came from the map");
            self.bytes -= e.weight;
            evicted.0 += 1;
            evicted.1 += e.weight;
        }
        evicted
    }

    fn over(&self, budget: &CacheBudget) -> bool {
        (budget.max_entries > 0 && self.map.len() > budget.max_entries)
            || (budget.max_bytes > 0 && self.bytes > budget.max_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNBOUNDED: CacheBudget = CacheBudget {
        max_entries: 0,
        max_bytes: 0,
    };

    #[test]
    fn unbounded_never_evicts() {
        let mut m = LruMap::default();
        for k in 0..100u64 {
            assert_eq!(m.insert(k, k, 1 << 20, &UNBOUNDED), (0, 0));
        }
        assert_eq!(m.get(7), Some(&7));
    }

    #[test]
    fn entry_budget_evicts_the_least_recent() {
        let mut m = LruMap::default();
        let b = CacheBudget {
            max_entries: 2,
            max_bytes: 0,
        };
        m.insert(1, "a", 10, &b);
        m.insert(2, "b", 10, &b);
        m.get(1); // 2 is now the least recent
        assert_eq!(m.insert(3, "c", 10, &b), (1, 10));
        assert!(m.get(2).is_none());
        assert_eq!(m.get(1), Some(&"a"));
        assert_eq!(m.get(3), Some(&"c"));
    }

    #[test]
    fn byte_budget_evicts_until_it_fits() {
        let mut m = LruMap::default();
        let b = CacheBudget {
            max_entries: 0,
            max_bytes: 100,
        };
        m.insert(1, (), 40, &b);
        m.insert(2, (), 40, &b);
        // 90 bytes would overflow: both older entries go.
        assert_eq!(m.insert(3, (), 90, &b), (2, 80));
        assert!(m.get(1).is_none() && m.get(2).is_none());
        assert_eq!(m.get(3), Some(&()));
    }

    #[test]
    fn the_inserted_entry_is_never_its_own_victim() {
        let mut m = LruMap::default();
        let b = CacheBudget {
            max_entries: 1,
            max_bytes: 8,
        };
        // Larger than the whole byte budget: everything else is evicted
        // but the entry itself stays, so the cache still serves it.
        m.insert(1, (), 4, &b);
        assert_eq!(m.insert(2, (), 1 << 30, &b), (1, 4));
        assert_eq!(m.get(2), Some(&()));
    }

    #[test]
    fn reinserting_a_key_replaces_its_weight() {
        let mut m = LruMap::default();
        let b = CacheBudget {
            max_entries: 0,
            max_bytes: 100,
        };
        m.insert(1, (), 90, &b);
        m.insert(1, (), 10, &b);
        // 10 + 80 fits: the stale 90-byte charge must be gone.
        assert_eq!(m.insert(2, (), 80, &b), (0, 0));
    }
}
